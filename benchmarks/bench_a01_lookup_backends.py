"""A1 (ablation) — Algorithm 2's representative-instance lookup backend.

DESIGN choice: Algorithm 2 can resolve its step-(4) lookup either by
materializing the representative instance with Algorithm 1 (reads the
whole state once) or by Theorem 3.2's predetermined lossless-join
selections (a constant number of selections whose evaluation cost
depends on the probed fragment).  This ablation races the two backends
and the full-chase baseline across state sizes on the Example 6 scheme.
"""

import random

import pytest

from repro.core.maintenance import (
    ChaseRILookup,
    ExpressionRILookup,
    algebraic_insert,
)
from repro.state.consistency import maintain_by_chase
from repro.workloads.paper import example6_scheme
from repro.workloads.states import (
    conflicting_insert_candidate,
    dense_consistent_state,
)

SIZES = [16, 64, 256]


def _setup(n):
    rng = random.Random(n)
    scheme = example6_scheme()
    state = dense_consistent_state(scheme, n)
    name, values = conflicting_insert_candidate(scheme, rng, n)
    return state, name, values


@pytest.mark.parametrize("n", SIZES)
def test_chase_backed_lookup(benchmark, record, n):
    state, name, values = _setup(n)

    def run():
        lookup = ChaseRILookup(state)
        outcome = algebraic_insert(state, name, values, lookup=lookup)
        return outcome, lookup.tuples_retrieved

    outcome, retrieved = benchmark(run)
    record("A1", f"chase-lookup tuples at n={n}", retrieved)
    # The chase-backed lookup always reads the whole state.
    assert retrieved == state.total_tuples()


@pytest.mark.parametrize("n", SIZES)
def test_expression_backed_lookup(benchmark, record, n):
    state, name, values = _setup(n)

    def run():
        lookup = ExpressionRILookup(state)
        outcome = algebraic_insert(state, name, values, lookup=lookup)
        return outcome, lookup.tuples_retrieved, lookup.selections_issued

    outcome, retrieved, selections = benchmark(run)
    record(
        "A1",
        f"expression-lookup at n={n}",
        f"retrieved={retrieved} selections={selections}",
    )
    # Selections are single-tuple: retrieved tuples never exceed the
    # (scheme-bounded) number of selections.
    assert retrieved <= selections


@pytest.mark.parametrize("n", SIZES)
def test_full_chase_baseline(benchmark, n):
    state, name, values = _setup(n)
    benchmark(lambda: maintain_by_chase(state, name, values))


def test_backends_agree(benchmark, record):
    rng = random.Random(99)
    scheme = example6_scheme()
    state = dense_consistent_state(scheme, 32)
    candidates = [
        conflicting_insert_candidate(scheme, rng, 32) for _ in range(10)
    ]

    def sweep():
        agreements = 0
        for name, values in candidates:
            via_chase = algebraic_insert(
                state, name, values, lookup=ChaseRILookup(state)
            ).consistent
            via_expr = algebraic_insert(
                state, name, values, lookup=ExpressionRILookup(state)
            ).consistent
            baseline = maintain_by_chase(state, name, values).consistent
            agreements += via_chase == via_expr == baseline
        return agreements

    agreements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("A1", "backend agreement", f"{agreements}/10")
    assert agreements == 10
