"""E9 — Example 13 + Section 5.1: the key-equivalent partition.

Regenerates the Example 13 partition and measures KEP's scaling on
random composite schemes with a known block structure.
"""

import random

import pytest

from repro.core.key_equivalent import is_key_equivalent
from repro.core.reducible import key_equivalent_partition
from repro.workloads.paper import example13_kep
from repro.workloads.random_schemes import random_reducible_scheme

BLOCK_COUNTS = [2, 4, 8]


def test_example13_partition(benchmark, record):
    scheme = example13_kep()
    blocks = benchmark(lambda: key_equivalent_partition(scheme))
    found = sorted(
        tuple(sorted(m.name for m in block.relations)) for block in blocks
    )
    record("E9", "Example 13 KEP", found)
    assert found == [("R1", "R3", "R4"), ("R2", "R5", "R6", "R7"), ("R8",)]


@pytest.mark.parametrize("n_blocks", BLOCK_COUNTS)
def test_kep_scaling(benchmark, record, n_blocks):
    rng = random.Random(n_blocks)
    scheme, expected = random_reducible_scheme(
        rng, n_blocks=n_blocks, relations_per_block=3
    )
    blocks = benchmark(lambda: key_equivalent_partition(scheme))
    assert len(blocks) == n_blocks
    assert all(is_key_equivalent(block) for block in blocks)
    record(
        "E9",
        f"KEP blocks recovered at {n_blocks} blocks",
        f"{len(blocks)}/{len(expected)}",
    )
