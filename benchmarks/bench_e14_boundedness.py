"""E14 — boundedness made measurable (Section 2.5 definition).

Boundedness counts *fd-rule applications*: a scheme is bounded when any
single total tuple of the representative instance is derivable within a
scheme-dependent constant number of applications.  Two measurable
consequences are regenerated here:

* on the bounded Example 12 scheme, the number of applications the
  chase performs **per derived class** is a small constant — total
  applications grow only because the number of entities does;
* on Example 2's chain family, refuting the killer insert requires a
  number of applications that grows linearly with the chain — deriving
  *one* fact (the contradiction) costs Θ(n), the unboundedness
  signature (the necessity of every tuple is E2's half of the
  argument).
"""

import random

import pytest

from repro.state.consistency import chase_state
from repro.workloads.adversarial import (
    example2_chain_state,
    example2_killer_insert,
)
from repro.workloads.paper import example12_reducible
from repro.workloads.states import dense_consistent_state

SIZES = [8, 32, 128]


@pytest.mark.parametrize("n", SIZES)
def test_bounded_scheme_steps_per_class_flat(benchmark, record, n):
    scheme = example12_reducible()
    state = dense_consistent_state(scheme, n)
    result = benchmark(lambda: chase_state(state))
    # Every entity produces one or two merged classes; the applications
    # per entity are scheme-bounded.
    per_entity = result.steps / n
    record(
        "E14",
        f"bounded-scheme fd-applications per entity at n={n}",
        round(per_entity, 2),
    )
    # ~22 on this scheme (6 relations per entity merging pairwise);
    # the claim is flatness, bounded by a scheme constant.
    assert per_entity <= 30


@pytest.mark.parametrize("n", SIZES)
def test_unbounded_refutation_steps_grow(benchmark, record, n):
    state = example2_chain_state(n)
    name, values = example2_killer_insert(n)
    inserted = state.insert(name, values)
    result = benchmark(lambda: chase_state(inserted))
    assert not result.consistent
    record("E14", f"chain refutation fd-applications at n={n}", result.steps)
    # The contradiction is one derived fact, yet it needs the whole
    # chain's worth of applications.
    assert result.steps >= n


@pytest.mark.parametrize("n", [8, 32])
def test_per_tuple_derivation_length_flat_on_bounded(benchmark, record, n):
    """The definition, verbatim: the proof-producing chase reports the
    fd-rule applications each individual total tuple depends on; the
    maximum is a scheme constant on the bounded Example 12 scheme."""
    from repro.tableau.provenance import ProvenanceChase

    scheme = example12_reducible()
    state = dense_consistent_state(scheme, n)

    def run():
        tracked = ProvenanceChase(state.tableau(), scheme.fds)
        return tracked.max_derivation_length(scheme.universe)

    length = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E14", f"max per-tuple derivation at n={n}", length)
    assert length <= 12


@pytest.mark.parametrize("n", [8, 32])
def test_conflict_lineage_linear_on_chain(benchmark, record, n):
    from repro.tableau.provenance import ProvenanceChase

    state = example2_chain_state(n)
    name, values = example2_killer_insert(n)
    inserted = state.insert(name, values)

    def run():
        tracked = ProvenanceChase(inserted.tableau(), state.scheme.fds)
        assert not tracked.consistent
        return len(tracked.conflict_events)

    lineage = benchmark.pedantic(run, rounds=1, iterations=1)
    record("E14", f"conflict lineage at n={n}", lineage)
    assert lineage == 2 * n + 1


def test_refutation_step_growth_is_linear(benchmark, record):
    def sweep():
        steps = []
        for n in SIZES:
            state = example2_chain_state(n)
            name, values = example2_killer_insert(n)
            steps.append(chase_state(state.insert(name, values)).steps)
        return steps

    steps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E14", "chain refutation step series", dict(zip(SIZES, steps)))
    # Quadrupling n quadruples the applications (within slack).
    assert steps[1] >= 3 * steps[0]
    assert steps[2] >= 3 * steps[1]
