"""Shared benchmark helpers.

Each benchmark module regenerates one experiment from DESIGN.md's
per-experiment index.  Benchmarks both *measure* (via pytest-benchmark)
and *assert the paper's claim shape* (flat-vs-growing probe counts,
acceptance rates, agreement with baselines), so a green
``pytest benchmarks/ --benchmark-only`` run is itself a reproduction
check.  Measured series are also appended to ``benchmarks/results.txt``
for EXPERIMENTS.md.

A lightweight timing harness also records each benchmark test's
wall-clock seconds and merges them into ``BENCH_perf.json`` at the
repository root (under ``"tests"``), alongside the headline
optimized-vs-naive scenarios written by ``repro.bench`` (under
``"scenarios"`` — see ``make bench``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_durations: dict[str, float] = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Record every benchmark test's call-phase wall clock."""
    start = time.perf_counter()
    yield
    _durations[item.nodeid] = time.perf_counter() - start


def pytest_sessionfinish(session, exitstatus):
    """Merge the per-test timings into BENCH_perf.json, preserving the
    scenario records other writers put there."""
    if not _durations:
        return
    report: dict = {}
    if BENCH_JSON_PATH.exists():
        try:
            report = json.loads(BENCH_JSON_PATH.read_text())
        except (OSError, ValueError):
            report = {}
    tests = report.setdefault("tests", {})
    for nodeid, seconds in _durations.items():
        tests[nodeid] = round(seconds, 6)
    BENCH_JSON_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )


def record_series(experiment: str, label: str, series) -> None:
    """Append a measured series to the results file (idempotent per
    process: the file is truncated once per run)."""
    flag = f"_repro_results_truncated_{os.getpid()}"
    if not getattr(record_series, flag, False):
        RESULTS_PATH.write_text("")
        setattr(record_series, flag, True)
    with RESULTS_PATH.open("a") as handle:
        handle.write(f"{experiment:6s} {label}: {series}\n")


@pytest.fixture
def record():
    return record_series
