"""Shared benchmark helpers.

Each benchmark module regenerates one experiment from DESIGN.md's
per-experiment index.  Benchmarks both *measure* (via pytest-benchmark)
and *assert the paper's claim shape* (flat-vs-growing probe counts,
acceptance rates, agreement with baselines), so a green
``pytest benchmarks/ --benchmark-only`` run is itself a reproduction
check.  Measured series are also appended to ``benchmarks/results.txt``
for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"


def record_series(experiment: str, label: str, series) -> None:
    """Append a measured series to the results file (idempotent per
    process: the file is truncated once per run)."""
    flag = f"_repro_results_truncated_{os.getpid()}"
    if not getattr(record_series, flag, False):
        RESULTS_PATH.write_text("")
        setattr(record_series, flag, True)
    with RESULTS_PATH.open("a") as handle:
        handle.write(f"{experiment:6s} {label}: {series}\n")


@pytest.fixture
def record():
    return record_series
