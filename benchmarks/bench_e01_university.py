"""E1 — Example 1 + Section 5: the university scheme.

Paper claims regenerated here:

* R = {HRC, HTR, HTC, CSG, HSR} is neither independent nor γ-acyclic,
  yet Algorithm 6 accepts it and it is ctm;
* the introduction's merged scheme S is independent and embeds the same
  key dependencies;
* maintenance on R probes a number of tuples independent of state size.
"""

import pytest

from repro.core.ctm import InsertMaintainer, is_ctm
from repro.core.independence import is_independent
from repro.core.reducible import recognize_independence_reducible
from repro.hypergraph.acyclicity import is_gamma_acyclic
from repro.workloads.paper import example1_university, intro_scheme_s
from repro.workloads.states import dense_consistent_state, universe_tuple

SIZES = [32, 128, 512]


def test_classification_claims(benchmark, record):
    scheme = example1_university()

    def classify():
        result = recognize_independence_reducible(scheme)
        return (
            is_independent(scheme),
            is_gamma_acyclic([m.attributes for m in scheme.relations]),
            result.accepted,
            is_ctm(scheme, result),
        )

    independent, gamma, accepted, ctm = benchmark(classify)
    assert not independent          # "R is neither independent..."
    assert not gamma                # "...nor γ-acyclic"
    assert accepted                 # accepted by Algorithm 6
    assert ctm                      # "it is constant-time-maintainable"
    record("E1", "university (independent, γ-acyclic, accepted, ctm)",
           (independent, gamma, accepted, ctm))


def test_intro_s_scheme_is_independent(benchmark):
    s = intro_scheme_s()
    assert benchmark(lambda: is_independent(s))
    assert s.fds.equivalent_to(example1_university().fds)


@pytest.mark.parametrize("n", SIZES)
def test_maintenance_probe_counts_flat(benchmark, record, n):
    """Probes per insert on the university scheme must not grow with n."""
    scheme = example1_university()
    maintainer = InsertMaintainer(scheme)
    state = dense_consistent_state(scheme, n)
    full = universe_tuple(scheme, 0)
    values = {a: full[a] for a in scheme["R2"].attributes}

    outcome = benchmark(lambda: maintainer.insert(state, "R2", values))
    assert outcome.consistent
    record("E1", f"probes per insert at n={n}", outcome.tuples_examined)
    # ctm: the probe count is a small scheme-dependent constant.
    assert outcome.tuples_examined <= 16
