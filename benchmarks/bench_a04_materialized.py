"""A4 (ablation) — materialized vs. per-insert validation.

DESIGN choice: the materialized representative instance
(`core.materialized`) folds accepted inserts in incrementally instead
of re-deriving per insert.  This ablation replays an insert stream
three ways — Algorithm 5 per insert, the materialized view, and a full
Algorithm 1 rebuild per insert — checking agreement and measuring
throughput.
"""

import random

import pytest

from repro.core.key_equivalent import key_equivalent_chase
from repro.core.maintenance import StateIndex, ctm_insert
from repro.core.materialized import MaterializedRepInstance
from repro.workloads.scaling import both_way_chain
from repro.workloads.states import (
    dense_consistent_state,
    universe_tuple,
)

CHAIN = 6
STREAM = 40


def _stream(scheme, n_existing):
    """A mixed stream of fresh-entity inserts (consistent) and
    cross-bred ones (conflicting against the dense state)."""
    rng = random.Random(13)
    stream = []
    for i in range(STREAM):
        member = rng.choice(scheme.relations)
        if i % 3:
            full = universe_tuple(scheme, n_existing + i + 1)
            values = {a: full[a] for a in member.attributes}
        else:
            first = universe_tuple(scheme, rng.randrange(n_existing))
            second = universe_tuple(scheme, 10_000 + i)
            key = rng.choice(member.keys)
            values = {
                a: first[a] if a in key else second[a]
                for a in member.attributes
            }
        stream.append((member.name, values))
    return stream


@pytest.fixture(scope="module")
def setup():
    scheme = both_way_chain(CHAIN)
    state = dense_consistent_state(scheme, 64)
    return scheme, state, _stream(scheme, 64)


def test_materialized_stream(benchmark, record, setup):
    scheme, state, stream = setup

    def run():
        view = MaterializedRepInstance(state, check_scheme=False)
        accepted = 0
        for name, values in stream:
            if view.insert(name, values) is not None:
                accepted += 1
        return accepted

    accepted = benchmark(run)
    record("A4", "materialized stream accepted", f"{accepted}/{STREAM}")


def test_algorithm5_stream(benchmark, record, setup):
    scheme, state, stream = setup

    def run():
        current = state
        accepted = 0
        for name, values in stream:
            outcome = ctm_insert(
                current,
                name,
                values,
                index=StateIndex(current),
                check_scheme=False,
            )
            if outcome.consistent:
                accepted += 1
                current = outcome.state
        return accepted

    accepted = benchmark(run)
    record("A4", "algorithm-5 stream accepted", f"{accepted}/{STREAM}")


def test_rebuild_per_insert_stream(benchmark, setup):
    scheme, state, stream = setup

    def run():
        current = state
        accepted = 0
        for name, values in stream:
            candidate = current.insert(name, values)
            if key_equivalent_chase(candidate, check_scheme=False) is not None:
                accepted += 1
                current = candidate
        return accepted

    benchmark(run)


def test_all_three_agree(benchmark, record, setup):
    scheme, state, stream = setup

    def run():
        view = MaterializedRepInstance(state, check_scheme=False)
        current = state
        agreements = 0
        for name, values in stream:
            via_view = view.insert(name, values) is not None
            outcome = ctm_insert(
                current,
                name,
                values,
                index=StateIndex(current),
                check_scheme=False,
            )
            candidate = current.insert(name, values)
            via_rebuild = (
                key_equivalent_chase(candidate, check_scheme=False)
                is not None
            )
            agreements += via_view == outcome.consistent == via_rebuild
            if outcome.consistent:
                current = outcome.state
            else:
                # Keep the view aligned with the surviving state: the
                # rejected tuple was never folded in, nothing to undo.
                pass
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    record("A4", "three-way agreement", f"{agreements}/{STREAM}")
    assert agreements == STREAM
