"""A5 (ablation) — streaming architecture: per-block materialized views
vs per-insert validation.

DESIGN choice: for insert-heavy workloads on independence-reducible
schemes, :class:`BlockMaterializedViews` folds each accepted insert into
the owning block's representative instance instead of re-validating
against the stored relations every time.  This ablation streams a
registrar enrollment load through both paths at growing scale, checking
identical accept/reject decisions and measuring throughput.
"""

import random

import pytest

from repro.core.ctm import InsertMaintainer
from repro.core.views import BlockMaterializedViews
from repro.workloads.paper import example1_university
from repro.workloads.registrar import (
    enrollment_stream,
    generate_registrar_workload,
)

STUDENTS = [20, 60, 180]


def _setup(n_students):
    rng = random.Random(n_students)
    workload = generate_registrar_workload(
        rng, n_students=n_students, enrollments_per_student=2
    )
    base = workload.state()
    timetable_only = base
    for name in ("R4", "R5"):
        for values in list(base[name]):
            timetable_only = timetable_only.delete(name, values)
    stream = list(enrollment_stream(workload))
    return timetable_only, stream


@pytest.mark.parametrize("n_students", STUDENTS)
def test_block_views_stream(benchmark, record, n_students):
    base, stream = _setup(n_students)

    def run():
        views = BlockMaterializedViews(base)
        accepted = sum(views.insert(name, values) for name, values in stream)
        return accepted

    accepted = benchmark(run)
    record(
        "A5",
        f"views stream accepted at {n_students} students",
        f"{accepted}/{len(stream)}",
    )


@pytest.mark.parametrize("n_students", STUDENTS)
def test_maintainer_stream(benchmark, record, n_students):
    base, stream = _setup(n_students)
    maintainer = InsertMaintainer(example1_university())

    def run():
        state = base
        accepted = 0
        for name, values in stream:
            outcome = maintainer.insert(state, name, values)
            if outcome.consistent:
                accepted += 1
                state = outcome.state
        return accepted

    accepted = benchmark(run)
    record(
        "A5",
        f"maintainer stream accepted at {n_students} students",
        f"{accepted}/{len(stream)}",
    )


def test_decisions_agree(benchmark, record):
    base, stream = _setup(30)
    maintainer = InsertMaintainer(example1_university())

    def run():
        views = BlockMaterializedViews(base)
        state = base
        agreements = 0
        for name, values in stream:
            via_views = views.insert(name, values)
            outcome = maintainer.insert(state, name, values)
            agreements += via_views == outcome.consistent
            if outcome.consistent:
                state = outcome.state
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    record("A5", "views/maintainer agreement", f"{agreements}/{len(stream)}")
    assert agreements == len(stream)
