"""E10 — Algorithm 6 + Corollary 5.4: polynomial recognition.

Regenerates: recognition accepts exactly the definitional class (checked
against brute-force partition search on small fuzzed schemes) and scales
polynomially on growing scheme families, in contrast with the
Bell-number brute force.
"""

import random

import pytest

from repro.core.reducible import (
    find_reducible_partition_bruteforce,
    is_independence_reducible,
    recognize_independence_reducible,
)
from repro.workloads.random_schemes import (
    random_reducible_scheme,
    random_scheme,
)

BLOCK_COUNTS = [2, 4, 8]


def test_exactness_against_bruteforce(benchmark, record):
    rng = random.Random(1988)
    trials = 30
    schemes = [
        random_scheme(rng, n_attributes=5, n_relations=rng.randint(2, 4))
        for _ in range(trials)
    ]

    def sweep():
        return sum(
            is_independence_reducible(scheme)
            == (find_reducible_partition_bruteforce(scheme) is not None)
            for scheme in schemes
        )

    agreements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E10", "Algorithm 6 vs brute force", f"{agreements}/{trials}")
    assert agreements == trials


@pytest.mark.parametrize("n_blocks", BLOCK_COUNTS)
def test_recognition_latency(benchmark, record, n_blocks):
    rng = random.Random(n_blocks)
    scheme, _ = random_reducible_scheme(
        rng, n_blocks=n_blocks, relations_per_block=3
    )
    result = benchmark(lambda: recognize_independence_reducible(scheme))
    assert result.accepted
    record(
        "E10",
        f"relations recognized at {n_blocks} blocks",
        len(scheme.relations),
    )


@pytest.mark.parametrize("n_relations", [4, 6])
def test_bruteforce_latency(benchmark, n_relations):
    rng = random.Random(n_relations)
    scheme, _ = random_reducible_scheme(
        rng, n_blocks=2, relations_per_block=n_relations // 2
    )
    benchmark(lambda: find_reducible_partition_bruteforce(scheme))


@pytest.mark.parametrize("tiles", [1, 2, 4])
def test_recognition_latency_tiled_university(benchmark, record, tiles):
    """Deterministic scaling: each tile adds 5 relations / 3 blocks of
    the Example 1 shape; recognition must stay polynomial and keep
    accepting."""
    from repro.workloads.scaling import tiled_university

    scheme = tiled_university(tiles)
    result = benchmark(lambda: recognize_independence_reducible(scheme))
    assert result.accepted
    assert len(result.partition) == 3 * tiles
    record(
        "E10",
        f"tiled university tiles={tiles}",
        f"{len(scheme.relations)} relations, {3 * tiles} blocks",
    )
