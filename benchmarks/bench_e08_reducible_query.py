"""E8 — Examples 11/12 + Theorem 4.1: bounded query answering on
independence-reducible schemes.

Regenerates: the paper's [ACG] expression on Example 12; agreement of
block evaluation, full-expression evaluation and the chase baseline;
and the latency separation between block evaluation and re-chasing as
the state grows.
"""

import random

import pytest

from repro.core.query import total_projection_plan, total_projection_reducible
from repro.core.reducible import recognize_independence_reducible
from repro.state.consistency import total_projection
from repro.workloads.paper import example12_reducible
from repro.workloads.states import random_consistent_state

SIZES = [16, 64, 256]


def test_example12_plan(benchmark, record):
    plan = benchmark.pedantic(
        lambda: total_projection_plan(example12_reducible(), "ACG"),
        rounds=1,
        iterations=1,
    )
    record("E8", "[ACG] plan", str(plan.expression))
    assert str(plan.expression) == (
        "π_ACG((π_ACD(R1 ⋈ R2 ⋈ R4) ∪ π_ACD(R3 ⋈ R4)) ⋈ π_DG(R6))"
    )


@pytest.mark.parametrize("n", SIZES)
def test_methods_agree(benchmark, record, n):
    rng = random.Random(n)
    scheme = example12_reducible()
    state = random_consistent_state(scheme, rng, n_entities=n)
    recognition = recognize_independence_reducible(scheme)

    def run_all():
        return (
            total_projection(state, "ACG"),
            total_projection_reducible(state, "ACG", recognition),
            total_projection_reducible(
                state, "ACG", recognition, method="expression"
            ),
        )

    baseline, blocks, expression = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    record("E8", f"|[ACG]| at n={n}", len(baseline))
    assert blocks == baseline
    assert expression == baseline


@pytest.mark.parametrize("n", SIZES)
def test_block_evaluation_latency(benchmark, n):
    rng = random.Random(n)
    scheme = example12_reducible()
    state = random_consistent_state(scheme, rng, n_entities=n)
    recognition = recognize_independence_reducible(scheme)
    benchmark(
        lambda: total_projection_reducible(state, "ACG", recognition)
    )


@pytest.mark.parametrize("n", SIZES)
def test_chase_baseline_latency(benchmark, n):
    rng = random.Random(n)
    scheme = example12_reducible()
    state = random_consistent_state(scheme, rng, n_entities=n)
    benchmark(lambda: total_projection(state, "ACG"))
