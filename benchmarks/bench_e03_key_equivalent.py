"""E3 — Examples 3, 9, 10: key-equivalence recognition and ctm chains.

Regenerates: the triangle is key-equivalent but not independent and not
even α-acyclic (Example 3); single-attribute-key chains are split-free
and ctm (Example 9); recognition scales polynomially with chain length.
"""

import pytest

from repro.core.ctm import is_ctm
from repro.core.independence import is_independent
from repro.core.key_equivalent import is_key_equivalent
from repro.core.split import is_split_free
from repro.hypergraph.acyclicity import is_alpha_acyclic
from repro.workloads.paper import example3_triangle, example9_chain
from repro.workloads.scaling import both_way_chain

CHAIN_LENGTHS = [4, 16, 64]


def test_example3_classification(benchmark):
    scheme = example3_triangle()
    key_equivalent = benchmark(lambda: is_key_equivalent(scheme))
    assert key_equivalent
    assert not is_independent(scheme)
    assert not is_alpha_acyclic([m.attributes for m in scheme.relations])


def test_example9_split_free_and_ctm(benchmark):
    scheme = example9_chain()
    assert benchmark(lambda: is_split_free(scheme))
    assert is_ctm(scheme)


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_recognition_scales_on_chains(benchmark, record, length):
    scheme = both_way_chain(length)

    def classify():
        return is_key_equivalent(scheme) and is_split_free(scheme)

    result = benchmark(classify)
    assert result
    record("E3", f"chain length {length} key-equivalent+split-free", result)
