"""E11 — Theorems 5.2, 5.3, 5.4: the class containments.

Regenerates the acceptance rates the theorems predict: 100% of
cover-embedding BCNF independent schemes, 100% of γ-acyclic BCNF
schemes, and 100% of their augmentations are accepted by Algorithm 6 —
while arbitrary fuzzed schemes are accepted at a strictly intermediate
rate (the class is neither trivial nor universal).
"""

import random

from repro.core.reducible import is_independence_reducible
from repro.fd.normal_forms import database_scheme_is_bcnf
from repro.schema.operations import augment, subset_family
from repro.workloads.random_schemes import (
    random_berge_acyclic_scheme,
    random_independent_scheme,
    random_scheme,
)

TRIALS = 30


def test_independent_schemes_all_accepted(benchmark, record):
    rng = random.Random(53)
    schemes = [
        random_independent_scheme(rng, n_relations=rng.randint(2, 5))
        for _ in range(TRIALS)
    ]

    def sweep():
        return sum(is_independence_reducible(s) for s in schemes)

    accepted = benchmark(sweep)
    record("E11", "independent schemes accepted", f"{accepted}/{TRIALS}")
    assert accepted == TRIALS


def test_gamma_acyclic_bcnf_schemes_all_accepted(benchmark, record):
    rng = random.Random(52)
    schemes = []
    while len(schemes) < TRIALS:
        scheme = random_berge_acyclic_scheme(
            rng, n_relations=rng.randint(2, 6)
        )
        edges = [m.attributes for m in scheme.relations]
        if database_scheme_is_bcnf(edges, scheme.fds):
            schemes.append(scheme)

    def sweep():
        return sum(is_independence_reducible(s) for s in schemes)

    accepted = benchmark(sweep)
    record("E11", "γ-acyclic BCNF schemes accepted", f"{accepted}/{TRIALS}")
    assert accepted == TRIALS


def test_augmentations_all_accepted(benchmark, record):
    """Theorem 5.4: AUG of both families stays in the class."""
    rng = random.Random(54)

    def sweep():
        accepted = 0
        for trial in range(TRIALS):
            if trial % 2:
                scheme = random_independent_scheme(rng, n_relations=3)
            else:
                scheme = random_berge_acyclic_scheme(rng, n_relations=4)
                edges = [m.attributes for m in scheme.relations]
                if not database_scheme_is_bcnf(edges, scheme.fds):
                    accepted += 1  # skip non-BCNF draws neutrally
                    continue
            addition = rng.choice(subset_family(scheme))
            augmented = augment(scheme, [("AUGX", addition)])
            accepted += is_independence_reducible(augmented)
        return accepted

    accepted = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E11", "augmented schemes accepted", f"{accepted}/{TRIALS}")
    assert accepted == TRIALS


def test_arbitrary_schemes_partially_accepted(benchmark, record):
    """The class is proper: fuzzed schemes include both members and
    non-members."""
    rng = random.Random(55)
    schemes = [
        random_scheme(rng, n_attributes=6, n_relations=4) for _ in range(60)
    ]
    accepted = benchmark.pedantic(
        lambda: sum(is_independence_reducible(s) for s in schemes),
        rounds=1,
        iterations=1,
    )
    record("E11", "arbitrary schemes accepted", f"{accepted}/60")
    assert 0 < accepted < 60
