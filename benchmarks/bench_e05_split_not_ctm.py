"""E5 — Example 5 + Theorem 3.4: split key-equivalent schemes are not
ctm.

Regenerates the lower-bound shape: on the adversarial family the
paper's constant-seeing prober retrieves Θ(n) tuples (its σ_{B='b'}(R4)
probe matches the whole chain), while Algorithm 2 issues a constant
number of predetermined single-tuple selections — at the price of
evaluating joins whose cost grows with n.
"""

import pytest

from repro.core.maintenance import ExpressionRILookup, algebraic_insert
from repro.core.split import split_keys
from repro.workloads.adversarial import (
    example5_chain_state,
    example5_ctm_prober_tuples,
    example5_killer_insert,
)
from repro.workloads.paper import example4_split_scheme

SIZES = [8, 32, 128]


def test_scheme_is_split(benchmark, record):
    keys = benchmark.pedantic(
        lambda: split_keys(example4_split_scheme()), rounds=1, iterations=1
    )
    record("E5", "split keys", [sorted(k) for k in keys])
    assert keys == [frozenset("BC")]


@pytest.mark.parametrize("n", SIZES)
def test_prober_tuples_grow(benchmark, record, n):
    state = example5_chain_state(n)
    matched = benchmark.pedantic(
        lambda: example5_ctm_prober_tuples(state), rounds=1, iterations=1
    )
    record("E5", f"ctm-prober tuples matched at n={n}", matched)
    assert matched == n


def test_generic_theorem34_families(benchmark, record):
    """Theorem 3.4 beyond Example 5: the generic adversarial
    construction works for every split key of randomly generated split
    schemes — consistent base, inconsistent under one insert, and the
    fragment substate is necessary for the refutation."""
    import random

    from repro.core.split import split_keys as all_split_keys
    from repro.state.consistency import is_consistent
    from repro.workloads.adversarial import split_lower_bound_family
    from repro.workloads.random_schemes import random_key_equivalent_scheme

    rng = random.Random(3)
    schemes = [
        random_key_equivalent_scheme(rng, n_relations=4, composite_members=1)
        for _ in range(8)
    ]

    def sweep():
        verified = 0
        for scheme in schemes:
            for key in all_split_keys(scheme):
                family = split_lower_bound_family(scheme, key)
                inserted = family.state.insert(
                    family.insert_relation, family.insert_values
                )
                assert is_consistent(family.state)
                assert not is_consistent(inserted)
                verified += 1
        return verified

    verified = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E5", "generic Theorem 3.4 families verified", verified)
    assert verified >= 8


@pytest.mark.parametrize("n", SIZES)
def test_algorithm2_selections_flat(benchmark, record, n):
    state = example5_chain_state(n)
    name, values = example5_killer_insert()

    def run():
        lookup = ExpressionRILookup(state)
        outcome = algebraic_insert(state, name, values, lookup=lookup)
        return outcome.consistent, lookup.selections_issued

    consistent, selections = benchmark(run)
    assert not consistent
    record("E5", f"Algorithm-2 selections at n={n}", selections)
    # Selections are scheme-determined; the Example 5 scheme issues the
    # same number regardless of the chain length.
    assert selections <= 40
