"""E4 — Example 4 + Corollary 3.1(b): bounded total projections.

Regenerates: [AE] on the Example 4 scheme equals the union of lossless-
subset join projections (including the paper's converging branch
AB ⋈ AC ⋈ (BE ⋈ CE)); the expression is predetermined; evaluating it
beats re-chasing the state as the state grows, while both agree.
"""

import pytest

from repro.core.key_equivalent import (
    total_projection_expression,
    total_projection_key_equivalent,
)
from repro.state.consistency import total_projection
from repro.state.database_state import DatabaseState, tuples_from_rows
from repro.workloads.paper import example4_split_scheme

SIZES = [16, 64, 256]


def example4_state(n: int) -> DatabaseState:
    """n independent entities plus one 'assembled' entity whose AE-total
    tuple only exists through the converging join."""
    scheme = example4_split_scheme()
    rows_ab = [(f"a{i}", f"b{i}") for i in range(n)] + [("a", "b")]
    rows_ac = [(f"a{i}", f"c{i}") for i in range(n)] + [("a", "c")]
    rows_eb = [("e", "b")]
    rows_ec = [("e", "c")]
    return DatabaseState(
        scheme,
        {
            "R1": tuples_from_rows("AB", rows_ab),
            "R2": tuples_from_rows("AC", rows_ac),
            "R4": tuples_from_rows("EB", rows_eb),
            "R5": tuples_from_rows("EC", rows_ec),
        },
    )


def test_expression_shape(benchmark, record):
    expression = benchmark.pedantic(
        lambda: str(total_projection_expression(example4_split_scheme(), "AE")),
        rounds=1,
        iterations=1,
    )
    record("E4", "[AE] expression", expression)
    assert "π_AE(R3)" in expression
    assert "π_AE(R1 ⋈ R2 ⋈ R4 ⋈ R5)" in expression


@pytest.mark.parametrize("n", SIZES)
def test_expression_evaluation(benchmark, record, n):
    state = example4_state(n)
    result = benchmark(
        lambda: total_projection_key_equivalent(state, "AE")
    )
    assert ("a", "e") in result  # assembled through the converging join
    assert result == total_projection(state, "AE")
    record("E4", f"|[AE]| at n={n}", len(result))


@pytest.mark.parametrize("n", SIZES)
def test_chase_baseline(benchmark, n):
    state = example4_state(n)
    result = benchmark(lambda: total_projection(state, "AE"))
    assert ("a", "e") in result
