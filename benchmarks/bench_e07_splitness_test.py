"""E7 — Lemma 3.8: the efficient splitness test.

Regenerates: agreement between the chase-based test and the definitional
exhaustive witness search on random key-equivalent schemes, and the
polynomial scaling of the efficient test vs. the exponential search.
"""

import random

import pytest

from repro.core.split import find_split_witness, is_key_split
from repro.workloads.random_schemes import random_key_equivalent_scheme

SIZES = [3, 5, 7]


@pytest.mark.parametrize("n_relations", SIZES)
def test_lemma38_agreement(benchmark, record, n_relations):
    rng = random.Random(42 + n_relations)
    schemes = [
        random_key_equivalent_scheme(rng, n_relations=n_relations)
        for _ in range(10)
    ]

    def sweep():
        agreements = 0
        checks = 0
        for scheme in schemes:
            for key in scheme.all_keys():
                checks += 1
                efficient = is_key_split(scheme, key)
                definitional = find_split_witness(scheme, key) is not None
                agreements += efficient == definitional
        return agreements, checks

    agreements, checks = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        "E7",
        f"Lemma 3.8 agreement at {n_relations} relations",
        f"{agreements}/{checks}",
    )
    assert agreements == checks


@pytest.mark.parametrize("n_relations", SIZES)
def test_efficient_test_latency(benchmark, n_relations):
    rng = random.Random(7)
    scheme = random_key_equivalent_scheme(rng, n_relations=n_relations)

    def sweep():
        return [is_key_split(scheme, key) for key in scheme.all_keys()]

    benchmark(sweep)


@pytest.mark.parametrize("n_relations", SIZES)
def test_definitional_search_latency(benchmark, n_relations):
    rng = random.Random(7)
    scheme = random_key_equivalent_scheme(rng, n_relations=n_relations)

    def sweep():
        return [
            find_split_witness(scheme, key) is not None
            for key in scheme.all_keys()
        ]

    benchmark(sweep)
