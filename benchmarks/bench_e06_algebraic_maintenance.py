"""E6 — Examples 6, 7 + Theorems 3.1/3.2: Algorithm 2 solves the
maintenance problem for key-equivalent schemes.

Regenerates: the Example 6 and Example 7 rejections; agreement with the
full-chase baseline across a size sweep; and the cost separation —
Algorithm 2's expression probes vs. re-chasing everything.
"""

import random

import pytest

from repro.core.maintenance import (
    ChaseRILookup,
    ExpressionRILookup,
    algebraic_insert,
)
from repro.state.consistency import maintain_by_chase
from repro.workloads.paper import (
    example4_split_scheme,
    example6_scheme,
    example6_state,
)
from repro.workloads.states import (
    conflicting_insert_candidate,
    dense_consistent_state,
    random_consistent_state,
)

SIZES = [16, 64, 256]


def test_example6_walkthrough(benchmark):
    state = example6_state()
    insert = {"A": "a", "B": "b", "E": "e'"}
    outcome = benchmark(lambda: algebraic_insert(state, "R1", insert))
    assert not outcome.consistent
    assert not maintain_by_chase(state, "R1", insert).consistent


@pytest.mark.parametrize("n", SIZES)
def test_agreement_with_chase_over_sizes(benchmark, record, n):
    rng = random.Random(n)
    scheme = example6_scheme()
    state = random_consistent_state(scheme, rng, n_entities=n)
    trials = 8
    candidates = [
        conflicting_insert_candidate(scheme, rng, n) for _ in range(trials)
    ]

    def sweep():
        agreements = 0
        for name, values in candidates:
            expected = maintain_by_chase(state, name, values).consistent
            actual = algebraic_insert(
                state, name, values, lookup=ExpressionRILookup(state)
            ).consistent
            agreements += expected == actual
        return agreements

    agreements = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E6", f"agreement at n={n}", f"{agreements}/{trials}")
    assert agreements == trials


@pytest.mark.parametrize("n", SIZES)
def test_algorithm2_insert_latency(benchmark, n):
    rng = random.Random(n)
    scheme = example6_scheme()
    state = dense_consistent_state(scheme, n)
    name, values = conflicting_insert_candidate(scheme, rng, n)
    benchmark(
        lambda: algebraic_insert(
            state, name, values, lookup=ExpressionRILookup(state)
        )
    )


@pytest.mark.parametrize("n", SIZES)
def test_full_chase_insert_latency(benchmark, n):
    rng = random.Random(n)
    scheme = example6_scheme()
    state = dense_consistent_state(scheme, n)
    name, values = conflicting_insert_candidate(scheme, rng, n)
    benchmark(lambda: maintain_by_chase(state, name, values))
