"""A3 (ablation) — plan caching in the WeakInstanceEngine.

DESIGN choice: Theorem 4.1 plans depend only on the scheme, so the
engine caches them per target.  This ablation measures the repeated-
query speedup of the cache against rebuilding the plan each time, and
checks the cached plan answers identically.
"""

import random

import pytest

from repro.core.engine import WeakInstanceEngine
from repro.core.query import total_projection_plan
from repro.workloads.paper import example12_reducible
from repro.workloads.states import random_consistent_state

N = 128
REPEATS = 20


def _setup():
    scheme = example12_reducible()
    engine = WeakInstanceEngine(scheme)
    rng = random.Random(0)
    state = random_consistent_state(scheme, rng, n_entities=N)
    return scheme, engine, state


def test_repeated_queries_with_cache(benchmark, record):
    scheme, engine, state = _setup()

    def run():
        out = None
        for _ in range(REPEATS):
            engine.plan("ACG")
            out = engine.query(state, "ACG")
        return out

    result = benchmark(run)
    record("A3", "cached plan answers", len(result))


def test_repeated_plan_builds_without_cache(benchmark):
    scheme, engine, state = _setup()

    def run():
        plan = None
        for _ in range(REPEATS):
            plan = total_projection_plan(scheme, "ACG", engine.recognition)
        return plan

    benchmark(run)


def test_cache_answers_match_fresh_plans(benchmark, record):
    scheme, engine, state = _setup()

    def check():
        cached = engine.query(state, "ACG")
        plan = total_projection_plan(scheme, "ACG", engine.recognition)
        relation = plan.expression.evaluate(state)
        fresh = {
            tuple(row[a] for a in sorted("ACG")) for row in relation
        }
        return cached == fresh

    assert benchmark.pedantic(check, rounds=1, iterations=1)
    record("A3", "cache/fresh agreement", True)
