"""A2 (ablation) — lossless-subset enumeration strategy.

DESIGN choice: Corollary 3.1(b) expressions need *all* minimal lossless
subsets, which requires the exact (exponential) chase-based enumeration;
the rooted extension-join enumeration is polynomial but incomplete on
split schemes.  This ablation shows (a) the completeness gap is real —
on Example 4 the rooted plan loses answers — and (b) on split-free
schemes both enumerations coincide, so the cheap one is safe exactly
where Corollary 3.2(a) says it is.
"""

import random

import pytest

from repro.algebra.expressions import Project, RelationRef, join_all, union_all_exprs
from repro.core.split import is_split_free
from repro.schema.lossless import (
    extension_join_subsets_covering,
    minimal_lossless_subsets_covering,
)
from repro.state.consistency import total_projection
from repro.state.database_state import DatabaseState, tuples_from_rows
from repro.workloads.paper import example4_split_scheme
from repro.workloads.random_schemes import random_key_equivalent_scheme


def _evaluate_union(subsets, state, target):
    branches = [
        Project(
            join_all(
                [RelationRef(m.name, m.attributes) for m in subset]
            ),
            target,
        )
        for subset in subsets
    ]
    relation = union_all_exprs(branches).evaluate(state)
    ordered = sorted(target)
    return {tuple(row[a] for a in ordered) for row in relation}


def _example4_state():
    scheme = example4_split_scheme()
    return DatabaseState(
        scheme,
        {
            "R1": tuples_from_rows("AB", [("a", "b")]),
            "R2": tuples_from_rows("AC", [("a", "c")]),
            "R4": tuples_from_rows("EB", [("e", "b")]),
            "R5": tuples_from_rows("EC", [("e", "c")]),
        },
    )


def test_rooted_enumeration_loses_answers_on_split_scheme(benchmark, record):
    """The completeness gap: the converging subset is needed for [AE]."""
    scheme = example4_split_scheme()
    state = _example4_state()
    target = frozenset("AE")

    def run():
        exact = _evaluate_union(
            minimal_lossless_subsets_covering(scheme, target), state, target
        )
        rooted = _evaluate_union(
            extension_join_subsets_covering(scheme, target), state, target
        )
        return exact, rooted

    exact, rooted = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = total_projection(state, target)
    record(
        "A2",
        "[AE] answers exact vs rooted",
        f"{len(exact)} vs {len(rooted)} (chase: {len(baseline)})",
    )
    assert exact == baseline
    assert rooted < exact  # the rooted plan silently drops ('a','e')


def test_enumerations_coincide_on_split_free_schemes(benchmark, record):
    rng = random.Random(7)
    schemes = []
    while len(schemes) < 10:
        scheme = random_key_equivalent_scheme(rng, n_relations=4)
        if is_split_free(scheme):
            schemes.append(scheme)

    def sweep():
        matches = 0
        for scheme in schemes:
            target = scheme.universe
            exact = {
                frozenset(m.name for m in s)
                for s in minimal_lossless_subsets_covering(scheme, target)
            }
            rooted = {
                frozenset(m.name for m in s)
                for s in extension_join_subsets_covering(scheme, target)
            }
            # Rooted results may be non-minimal supersets; every exact
            # subset must be found, and every rooted one must contain an
            # exact one.
            complete = all(
                any(r <= e or e <= r for r in rooted) for e in exact
            )
            sound = all(any(e <= r for e in exact) for r in rooted)
            matches += complete and sound
        return matches

    matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("A2", "split-free agreement", f"{matches}/10")
    assert matches == 10


@pytest.mark.parametrize("n_relations", [3, 5, 7])
def test_exact_enumeration_latency(benchmark, n_relations):
    rng = random.Random(3)
    scheme = random_key_equivalent_scheme(rng, n_relations=n_relations)
    benchmark(
        lambda: minimal_lossless_subsets_covering(scheme, scheme.universe)
    )


@pytest.mark.parametrize("n_relations", [3, 5, 7])
def test_rooted_enumeration_latency(benchmark, n_relations):
    rng = random.Random(3)
    scheme = random_key_equivalent_scheme(rng, n_relations=n_relations)
    benchmark(
        lambda: extension_join_subsets_covering(scheme, scheme.universe)
    )
