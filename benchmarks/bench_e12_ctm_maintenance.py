"""E12 — Theorem 5.5 + Algorithm 5: ctm maintenance.

Regenerates the headline performance shape: on split-free
independence-reducible schemes the probes per insert are independent of
the state size (flat series), while the full-chase baseline's work grows
linearly; wall-clock timings of both are measured for the same inserts.
"""

import random

import pytest

from repro.core.ctm import InsertMaintainer
from repro.state.consistency import maintain_by_chase
from repro.workloads.paper import example1_university
from repro.workloads.states import dense_consistent_state, universe_tuple

SIZES = [32, 128, 512]


def _insert_for(scheme, n):
    """A fresh entity's R4 tuple: not yet stored, consistent to add."""
    full = universe_tuple(scheme, n + 1)
    member = scheme["R4"]
    return member.name, {a: full[a] for a in member.attributes}


@pytest.mark.parametrize("n", SIZES)
def test_ctm_probes_flat(benchmark, record, n):
    scheme = example1_university()
    maintainer = InsertMaintainer(scheme)
    state = dense_consistent_state(scheme, n)
    name, values = _insert_for(scheme, n)

    outcome = benchmark(lambda: maintainer.insert(state, name, values))
    assert outcome.consistent
    record("E12", f"ctm probes at n={n}", outcome.tuples_examined)
    assert outcome.tuples_examined <= 8


@pytest.mark.parametrize("n", SIZES)
def test_chase_examines_everything(benchmark, record, n):
    scheme = example1_university()
    state = dense_consistent_state(scheme, n)
    name, values = _insert_for(scheme, n)

    outcome = benchmark(lambda: maintain_by_chase(state, name, values))
    assert outcome.consistent
    record("E12", f"chase tuples at n={n}", outcome.tuples_examined)
    assert outcome.tuples_examined == state.total_tuples() + 1


def test_probe_series_is_flat(benchmark, record):
    """The claim in one assertion: the probe count is the same across a
    16x state growth."""
    scheme = example1_university()
    maintainer = InsertMaintainer(scheme)

    def sweep():
        probes = []
        for n in SIZES:
            name, values = _insert_for(scheme, n)
            state = dense_consistent_state(scheme, n)
            probes.append(
                maintainer.insert(state, name, values).tuples_examined
            )
        return probes

    probes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E12", "probe series over sizes", dict(zip(SIZES, probes)))
    assert len(set(probes)) == 1
