"""E13 — Theorem 4.3 / Corollary 4.2: closure under augmentation and
reduction.

Regenerates: every augmentation of a random independence-reducible
scheme by subsets of its members stays in the class; reduction preserves
membership; and the recognition cost of augmented schemes stays
polynomial.
"""

import random

import pytest

from repro.core.reducible import (
    is_independence_reducible,
    recognize_independence_reducible,
)
from repro.schema.operations import augment, reduce_scheme, subset_family
from repro.workloads.paper import example1_university
from repro.workloads.random_schemes import random_reducible_scheme

AUGMENTATION_COUNTS = [1, 4, 8]


def test_closure_rate(benchmark, record):
    rng = random.Random(43)
    trials = 25

    def sweep():
        preserved = 0
        for _ in range(trials):
            scheme, _ = random_reducible_scheme(
                rng, n_blocks=2, relations_per_block=2
            )
            addition = rng.choice(subset_family(scheme))
            augmented = augment(scheme, [("AUGX", addition)])
            preserved += is_independence_reducible(augmented)
        return preserved

    preserved = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E13", "augmentations preserved", f"{preserved}/{trials}")
    assert preserved == trials


def test_reduction_preserved(benchmark, record):
    rng = random.Random(44)
    trials = 25

    def sweep():
        preserved = 0
        for _ in range(trials):
            scheme, _ = random_reducible_scheme(
                rng, n_blocks=2, relations_per_block=2
            )
            addition = rng.choice(subset_family(scheme))
            augmented = augment(scheme, [("AUGX", addition)])
            preserved += is_independence_reducible(reduce_scheme(augmented))
        return preserved

    preserved = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("E13", "reductions preserved", f"{preserved}/{trials}")
    assert preserved == trials


@pytest.mark.parametrize("k", AUGMENTATION_COUNTS)
def test_recognition_latency_under_augmentation(benchmark, record, k):
    rng = random.Random(45)
    scheme = example1_university()
    subsets = subset_family(scheme)
    additions = [
        (f"AUG{i}", rng.choice(subsets)) for i in range(k)
    ]
    augmented = augment(scheme, additions)
    result = benchmark(lambda: recognize_independence_reducible(augmented))
    assert result.accepted
    record("E13", f"accepted with {k} augmentations", result.accepted)
