"""E2 — Example 2: {AB, BC, AC} with {A→C, B→C} is not
algebraic-maintainable.

The paper's adversarial chain forces any refutation of the killer
insert to examine Θ(n) tuples: dropping any single chain tuple makes
the updated state consistent.  We regenerate the construction, verify
the all-tuples-necessary property, and measure how full-chase
maintenance cost grows with the chain.
"""

import pytest

from repro.core.reducible import recognize_independence_reducible
from repro.state.consistency import is_consistent, maintain_by_chase
from repro.workloads.adversarial import (
    example2_chain_state,
    example2_killer_insert,
)
from repro.workloads.paper import example2_not_algebraic

SIZES = [8, 32, 128]


def test_rejected_by_recognition(benchmark):
    scheme = example2_not_algebraic()
    result = benchmark(lambda: recognize_independence_reducible(scheme))
    assert not result.accepted


@pytest.mark.parametrize("n", SIZES)
def test_chase_refutation_cost_grows(benchmark, record, n):
    state = example2_chain_state(n)
    name, values = example2_killer_insert(n)

    outcome = benchmark(lambda: maintain_by_chase(state, name, values))
    assert not outcome.consistent
    record("E2", f"tuples examined by chase at n={n}", outcome.tuples_examined)
    # The refutation reads the whole state: 2n chain tuples + anchor + insert.
    assert outcome.tuples_examined == state.total_tuples() + 1


@pytest.mark.parametrize("n", [4, 8])
def test_every_tuple_is_necessary(benchmark, record, n):
    """The lower-bound witness: each proper substate with the insert is
    consistent, so no sub-linear strategy can refute."""
    state = example2_chain_state(n)
    name, values = example2_killer_insert(n)
    inserted = state.insert(name, values)
    assert not is_consistent(inserted)

    def count_necessary():
        necessary = 0
        for relation_name, relation in state:
            for tuple_values in relation:
                if is_consistent(
                    inserted.delete(relation_name, tuple_values)
                ):
                    necessary += 1
        return necessary

    necessary = benchmark.pedantic(count_necessary, rounds=1, iterations=1)
    record("E2", f"necessary tuples at n={n}", necessary)
    assert necessary == state.total_tuples()
