"""Hypergraphs: connectivity, Bachman closure, unique minimal
connections and acyclicity degrees (paper, Section 2.4)."""

from repro.hypergraph.acyclicity import (
    find_beta_cycle,
    find_gamma_cycle,
    gyo_reduction,
    is_alpha_acyclic,
    is_beta_acyclic,
    is_gamma_acyclic,
)
from repro.hypergraph.bachman import bachman_closure
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.paths import (
    connected_components,
    family_union,
    find_path,
    is_connected_family,
)
from repro.hypergraph.umc import (
    has_umc_for_all_subsets,
    minimal_connected_covers,
    unique_minimal_connection,
)

__all__ = [
    "Hypergraph",
    "bachman_closure",
    "connected_components",
    "family_union",
    "find_beta_cycle",
    "find_gamma_cycle",
    "find_path",
    "gyo_reduction",
    "has_umc_for_all_subsets",
    "is_alpha_acyclic",
    "is_beta_acyclic",
    "is_connected_family",
    "is_gamma_acyclic",
    "minimal_connected_covers",
    "unique_minimal_connection",
]
