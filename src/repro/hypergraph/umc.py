"""Unique minimal connections (paper, Section 2.4).

A connected ``V = {V1,...,Vm} ⊆ Bachman(R)`` is a *unique minimal
connection* (u.m.c.) among ``X`` when it covers ``X`` and every
connected covering subset ``{W1,...,Wk}`` of ``Bachman(R)`` dominates it
— contains members ``W_i1 ⊇ V_1, ..., W_im ⊇ V_m``.

Theorem 2.1 (Fagin/Yannakakis, proven by Biskup et al.): a connected
database scheme is γ-acyclic iff it has a u.m.c. among every ``X ⊆ U``.
This module implements the definition directly (exponential, intended
for the small hypergraphs of tests that cross-validate the polynomial
γ-acyclicity test) by enumerating *minimal* connected covers: every
connected cover contains a minimal connected cover, and domination by a
subset lifts to its supersets, so checking domination against the
minimal covers decides the universal condition.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.foundations.attrs import AttrsLike, attrs
from repro.hypergraph.bachman import bachman_closure
from repro.hypergraph.paths import is_connected_family


def minimal_connected_covers(
    family: Sequence[frozenset[str]], target: frozenset[str]
) -> list[list[frozenset[str]]]:
    """All minimal connected subsets of ``family`` whose union covers
    ``target``.

    Grown by DFS from each member; a grown set is recorded when coverage
    is reached and the result list is filtered to inclusion-minimal
    entries.  Exponential in |family| by nature.
    """
    found: set[frozenset[int]] = set()
    visited: set[frozenset[int]] = set()

    def explore(chosen: frozenset[int], covered: frozenset[str]) -> None:
        if chosen in visited:
            return
        visited.add(chosen)
        if target <= covered:
            found.add(chosen)
            return
        for index, member in enumerate(family):
            if index in chosen:
                continue
            if member & covered:
                explore(chosen | {index}, covered | member)

    for index, member in enumerate(family):
        explore(frozenset({index}), member)

    minimal = [
        chosen
        for chosen in sorted(found, key=sorted)
        if not any(other < chosen for other in found)
    ]
    covers = [sorted(family[i] for i in sorted(chosen)) for chosen in minimal]
    return sorted(covers, key=lambda cover: [tuple(sorted(m)) for m in cover])


def _dominates(
    cover: Sequence[frozenset[str]], candidate: Sequence[frozenset[str]]
) -> bool:
    """True iff ``cover`` contains *distinct* members ``W_i1,...,W_im``
    with ``W_ij ⊇ V_j`` for the members of ``candidate``.

    The distinctness (an injective matching of candidate members to
    covering members) is essential: allowing one ``W`` to witness two
    blocks would declare a u.m.c. in hypergraphs such as
    ``{AB, BC, ABC}`` that have a γ-cycle, breaking Theorem 2.1.
    The matching is found by backtracking — candidate families are tiny.
    """

    def match(index: int, used: frozenset[int]) -> bool:
        if index == len(candidate):
            return True
        for position, w in enumerate(cover):
            if position not in used and candidate[index] <= w:
                if match(index + 1, used | {position}):
                    return True
        return False

    return match(0, frozenset())


def unique_minimal_connection(
    edges: Iterable[AttrsLike], target: AttrsLike
) -> Optional[list[frozenset[str]]]:
    """A u.m.c. among ``target`` over ``Bachman(edges)``, or None.

    The candidate pool is the set of minimal connected covers; a
    candidate is the u.m.c. when every minimal connected cover (hence
    every connected cover) dominates it.
    """
    target_set = attrs(target)
    if not target_set:
        return []
    family = bachman_closure(edges)
    covers = minimal_connected_covers(family, target_set)
    for candidate in covers:
        if not is_connected_family(candidate):
            continue
        if all(_dominates(cover, candidate) for cover in covers):
            return list(candidate)
    return None


def has_umc_for_all_subsets(
    edges: Sequence[AttrsLike], max_subset_size: Optional[int] = None
) -> bool:
    """Exhaustively check Theorem 2.1's right-hand side: a u.m.c. exists
    among every non-empty ``X ⊆ U`` (optionally capped in size).

    Exponential in |U|; for cross-validation on small hypergraphs.
    """
    from itertools import combinations

    edge_sets = [attrs(edge) for edge in edges]
    universe = sorted({node for edge in edge_sets for node in edge})
    limit = max_subset_size or len(universe)
    for size in range(1, limit + 1):
        for subset in combinations(universe, size):
            if unique_minimal_connection(edge_sets, frozenset(subset)) is None:
                return False
    return True
