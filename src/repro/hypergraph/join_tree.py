"""Join trees for α-acyclic hypergraphs.

A *join tree* of a hypergraph has the edges as nodes and satisfies the
running-intersection (connected-subtree) property: for every attribute,
the tree nodes containing it form a subtree.  A hypergraph admits a
join tree iff it is α-acyclic (Beeri–Fagin–Maier–Yannakakis), which is
the structural reason acyclic schemes answer joins efficiently — the
backdrop of the paper's γ-acyclicity results.

The construction is the GYO reduction with ear bookkeeping: an edge is
an *ear* when every node it shares with the rest of the hypergraph lies
inside a single witness edge; removing ears until one edge remains
yields the tree (ear–witness links), and failure certifies α-cyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs


@dataclass(frozen=True)
class JoinTree:
    """A join tree: the hypergraph's edges plus tree links between them.

    ``links`` are (child, parent) pairs in elimination order; the last
    surviving edge is the root.
    """

    edges: tuple[frozenset[str], ...]
    links: tuple[tuple[frozenset[str], frozenset[str]], ...]
    root: frozenset[str]

    def neighbors(self, edge: frozenset[str]) -> list[frozenset[str]]:
        """Tree neighbours of an edge."""
        out = []
        for child, parent in self.links:
            if child == edge:
                out.append(parent)
            elif parent == edge:
                out.append(child)
        return out

    def satisfies_running_intersection(self) -> bool:
        """Check the connected-subtree property for every attribute."""
        nodes = {node for edge in self.edges for node in edge}
        for node in sorted(nodes):
            holders = [edge for edge in self.edges if node in edge]
            if len(holders) <= 1:
                continue
            # BFS within the subgraph induced by the holders.
            seen = {holders[0]}
            frontier = [holders[0]]
            holder_set = set(holders)
            while frontier:
                current = frontier.pop()
                for neighbor in self.neighbors(current):
                    if neighbor in holder_set and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            if seen != holder_set:
                return False
        return True

    def render(self) -> str:
        lines = [f"join tree rooted at {fmt_attrs(self.root)}:"]
        for child, parent in reversed(self.links):
            lines.append(
                f"  {fmt_attrs(child)} — {fmt_attrs(parent)} "
                f"(on {fmt_attrs(child & parent)})"
            )
        return "\n".join(lines)


def build_join_tree(edges: Iterable[AttrsLike]) -> Optional[JoinTree]:
    """A join tree of the hypergraph, or None when it is α-cyclic.

    Duplicate edges collapse; an edge contained in another is attached
    directly to one containing it (it is trivially an ear).
    """
    unique: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    for edge in edges:
        edge_set = attrs(edge)
        if edge_set and edge_set not in seen:
            seen.add(edge_set)
            unique.append(edge_set)
    if not unique:
        return None
    remaining = list(unique)
    links: list[tuple[frozenset[str], frozenset[str]]] = []
    progressed = True
    while len(remaining) > 1 and progressed:
        progressed = False
        for edge in list(remaining):
            others = [other for other in remaining if other is not edge]
            shared = edge & frozenset().union(*others)
            witness = next(
                (other for other in others if shared <= other), None
            )
            if witness is not None:
                links.append((edge, witness))
                remaining.remove(edge)
                progressed = True
                break
    if len(remaining) > 1:
        return None
    return JoinTree(
        edges=tuple(unique), links=tuple(links), root=remaining[0]
    )
