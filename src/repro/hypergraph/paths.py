"""Paths and connectivity in hypergraphs (paper, Section 2.4).

A path between two nodes is a sequence of edges, consecutive ones
intersecting, that is minimal under subsequence; for *connectivity*
purposes plain edge-intersection reachability is equivalent and is what
is implemented here.  A family of sets is connected when the hypergraph
it induces is connected.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.foundations.attrs import AttrsLike, attrs, union_all


def connected_components(
    edges: Iterable[AttrsLike],
) -> list[list[frozenset[str]]]:
    """Partition a family of sets into intersection-connected components.

    Components are returned in a deterministic order; edges within a
    component keep their input order.
    """
    edge_sets = [attrs(edge) for edge in edges]
    unassigned = list(range(len(edge_sets)))
    components: list[list[frozenset[str]]] = []
    while unassigned:
        seed = unassigned.pop(0)
        component = [seed]
        covered = set(edge_sets[seed])
        grew = True
        while grew:
            grew = False
            for index in list(unassigned):
                if edge_sets[index] & covered:
                    component.append(index)
                    covered |= edge_sets[index]
                    unassigned.remove(index)
                    grew = True
        components.append([edge_sets[i] for i in sorted(component)])
    return components


def is_connected_family(edges: Sequence[AttrsLike]) -> bool:
    """True iff the family of sets is connected (paper, Section 2.4).

    The empty family is vacuously disconnected; a singleton is connected.
    """
    materialized = [attrs(edge) for edge in edges]
    if not materialized:
        return False
    return len(connected_components(materialized)) == 1


def find_path(
    edges: Sequence[AttrsLike], source: str, target: str
) -> Optional[list[frozenset[str]]]:
    """A shortest edge-path from a node to a node, or None.

    Shortest paths satisfy the paper's minimal-subsequence condition
    automatically.
    """
    edge_sets = [attrs(edge) for edge in edges]
    starts = [i for i, edge in enumerate(edge_sets) if source in edge]
    frontier = list(starts)
    predecessor: dict[int, Optional[int]] = {i: None for i in starts}
    while frontier:
        current = frontier.pop(0)
        if target in edge_sets[current]:
            path = [current]
            while predecessor[path[-1]] is not None:
                path.append(predecessor[path[-1]])  # type: ignore[arg-type]
            return [edge_sets[i] for i in reversed(path)]
        for index, edge in enumerate(edge_sets):
            if index not in predecessor and edge & edge_sets[current]:
                predecessor[index] = current
                frontier.append(index)
    return None


def family_union(edges: Iterable[AttrsLike]) -> frozenset[str]:
    """Union of a family of sets."""
    return union_all(attrs(edge) for edge in edges)
