"""Hypergraph acyclicity: α (GYO), β and γ (cycle search).

The paper's results need γ-acyclicity (Theorem 5.2: γ-acyclic
cover-embedding BCNF schemes are accepted by the recognition algorithm).
Following Fagin ("Degrees of acyclicity", JACM 1983):

* **α-acyclic** — the GYO reduction (delete isolated nodes, delete edges
  contained in other edges) empties the hypergraph.
* **β-cycle** — a sequence ``(S1, x1, S2, x2, ..., Sm, xm, S1)``, m ≥ 3,
  of distinct edges and distinct nodes with ``x_i ∈ S_i ∩ S_{i+1}`` and
  every ``x_i`` in *no other edge of the cycle*.  β-acyclic = no β-cycle
  (equivalently: every subset of edges is α-acyclic, a fact the test
  suite cross-validates).
* **γ-cycle** — like a β-cycle except the purity condition is waived for
  the last node ``x_m``.  γ-acyclic = no γ-cycle.  Theorem 2.1 links
  this to the existence of unique minimal connections, the second
  cross-validation used by the tests.

γ-acyclic ⟹ β-acyclic ⟹ α-acyclic; the inclusions are strict.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.foundations.attrs import AttrsLike, attrs


def _edge_sets(edges: Iterable[AttrsLike]) -> list[frozenset[str]]:
    unique: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    for edge in edges:
        edge_set = attrs(edge)
        if edge_set and edge_set not in seen:
            seen.add(edge_set)
            unique.append(edge_set)
    return unique


def gyo_reduction(edges: Iterable[AttrsLike]) -> list[frozenset[str]]:
    """Run the GYO reduction to fixpoint and return the residual edges.

    Rules: (1) delete a node occurring in exactly one edge; (2) delete an
    edge contained in another edge (including duplicates and edges
    emptied by rule 1).
    """
    working = [set(edge) for edge in _edge_sets(edges)]
    changed = True
    while changed:
        changed = False
        # Rule 1: remove nodes that occur in exactly one edge.
        occurrence: dict[str, int] = {}
        for edge in working:
            for node in edge:
                occurrence[node] = occurrence.get(node, 0) + 1
        for edge in working:
            lonely = {node for node in edge if occurrence[node] == 1}
            if lonely:
                edge -= lonely
                changed = True
        # Rule 2: remove empty edges and edges contained in another edge.
        survivors: list[set[str]] = []
        for index, edge in enumerate(working):
            if not edge:
                changed = True
                continue
            contained = any(
                (edge < other) or (edge == other and index > other_index)
                for other_index, other in enumerate(working)
                if other_index != index
            )
            if contained:
                changed = True
            else:
                survivors.append(edge)
        working = survivors
    return [frozenset(edge) for edge in working]


def is_alpha_acyclic(edges: Iterable[AttrsLike]) -> bool:
    """True iff the GYO reduction empties the hypergraph."""
    edge_sets = _edge_sets(edges)
    if not edge_sets:
        return True
    return len(gyo_reduction(edge_sets)) == 0


def _find_cycle(
    edges: Sequence[frozenset[str]], relax_last: bool
) -> Optional[list[tuple[frozenset[str], str]]]:
    """Search for a β-cycle (``relax_last=False``) or γ-cycle (True).

    Returns the cycle as ``[(S1, x1), ..., (Sm, xm)]`` or None.  DFS over
    alternating edge/node sequences with the purity condition checked
    incrementally; exponential in the worst case, which is acceptable at
    database-scheme sizes.
    """
    n = len(edges)

    def purity_holds(sequence: list[tuple[int, str]]) -> bool:
        # Check x_i ∉ S_j for j ∉ {i, i+1} over the cycle's edges, for
        # every i except (when relax_last) the last one.
        m = len(sequence)
        cycle_edges = [edges[index] for index, _ in sequence]
        for i, (_, node) in enumerate(sequence):
            if relax_last and i == m - 1:
                continue
            for j, edge in enumerate(cycle_edges):
                if j in (i, (i + 1) % m):
                    continue
                if node in edge:
                    return False
        return True

    def extend(sequence: list[tuple[int, str]], used_nodes: set[str]) -> Optional[
        list[tuple[int, str]]
    ]:
        last_node = sequence[-1][1]
        used_edges = {index for index, _ in sequence}
        # Try to close the cycle: the last node must lie in the first edge.
        if len(sequence) >= 3:
            first_index = sequence[0][0]
            if last_node in edges[first_index] and purity_holds(sequence):
                return sequence
        if len(sequence) >= n:
            return None
        for next_index in range(n):
            if next_index in used_edges:
                continue
            if last_node not in edges[next_index]:
                continue
            for next_node in sorted(edges[next_index]):
                if next_node in used_nodes:
                    continue
                result = extend(
                    sequence + [(next_index, next_node)],
                    used_nodes | {next_node},
                )
                if result is not None:
                    return result
        return None

    for start in range(n):
        for first_node in sorted(edges[start]):
            result = extend([(start, first_node)], {first_node})
            if result is not None:
                return [(edges[index], node) for index, node in result]
    return None


def find_beta_cycle(
    edges: Iterable[AttrsLike],
) -> Optional[list[tuple[frozenset[str], str]]]:
    """A β-cycle of the hypergraph, or None."""
    return _find_cycle(_edge_sets(edges), relax_last=False)


def find_gamma_cycle(
    edges: Iterable[AttrsLike],
) -> Optional[list[tuple[frozenset[str], str]]]:
    """A γ-cycle of the hypergraph, or None."""
    return _find_cycle(_edge_sets(edges), relax_last=True)


def is_beta_acyclic(edges: Iterable[AttrsLike]) -> bool:
    """True iff the hypergraph has no β-cycle."""
    return find_beta_cycle(edges) is None


def is_gamma_acyclic(edges: Iterable[AttrsLike]) -> bool:
    """True iff the hypergraph has no γ-cycle."""
    return find_gamma_cycle(edges) is None
