"""Hypergraphs for database schemes.

A hypergraph is a pair ``<V, E>`` of nodes and non-empty edges (paper,
Section 2.4, after Berge).  The hypergraph of a database scheme has the
universe as nodes and the relation schemes as edges.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, union_all
from repro.foundations.errors import SchemaError


class Hypergraph:
    """An immutable hypergraph: a node set and a family of edges.

    Duplicate edges collapse (edges form a set family, as in the paper's
    definition of a database scheme's hypergraph).
    """

    __slots__ = ("nodes", "edges")

    def __init__(
        self,
        edges: Iterable[AttrsLike],
        nodes: Optional[AttrsLike] = None,
    ) -> None:
        edge_sets = []
        seen: set[frozenset[str]] = set()
        for edge in edges:
            edge_set = attrs(edge)
            if not edge_set:
                raise SchemaError("hypergraph edges must be non-empty")
            if edge_set not in seen:
                seen.add(edge_set)
                edge_sets.append(edge_set)
        node_set = attrs(nodes) if nodes is not None else union_all(edge_sets)
        if not union_all(edge_sets) <= node_set:
            raise SchemaError("edges mention nodes outside the node set")
        object.__setattr__(self, "nodes", node_set)
        object.__setattr__(
            self,
            "edges",
            tuple(sorted(edge_sets, key=lambda e: tuple(sorted(e)))),
        )

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("Hypergraph is immutable")

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self.nodes == other.nodes and set(self.edges) == set(other.edges)

    def __hash__(self) -> int:
        return hash((self.nodes, frozenset(self.edges)))

    def subhypergraph(self, edges: Iterable[AttrsLike]) -> "Hypergraph":
        """The subhypergraph on a subset of this hypergraph's edges."""
        chosen = [attrs(edge) for edge in edges]
        missing = [edge for edge in chosen if edge not in set(self.edges)]
        if missing:
            raise SchemaError(
                f"not edges of this hypergraph: {[fmt_attrs(e) for e in missing]}"
            )
        return Hypergraph(chosen)

    def edges_containing(self, node: str) -> list[frozenset[str]]:
        """All edges containing a given node."""
        return [edge for edge in self.edges if node in edge]

    def __repr__(self) -> str:
        return (
            "Hypergraph(["
            + ", ".join(fmt_attrs(edge) for edge in self.edges)
            + "])"
        )
