"""Bachman closure (paper, Section 2.4).

``Bachman(E)`` is the closure of a family of sets under pairwise
intersection: every member of ``E`` is in it, and the intersection of
any two members is in it.  Empty intersections are dropped — hypergraph
edges are non-empty, and the unique-minimal-connection machinery only
ever quantifies over non-empty blocks.

The closure can be exponentially larger than ``E``; it is used by the
u.m.c. cross-validation of the γ-acyclicity tests on small inputs.
"""

from __future__ import annotations

from typing import Iterable

from repro.foundations.attrs import AttrsLike, attrs


def _canonical(member: frozenset[str]) -> tuple[int, tuple[str, ...]]:
    """Total order on attribute sets: size, then lexicographic."""
    return (len(member), tuple(sorted(member)))


def bachman_closure(edges: Iterable[AttrsLike]) -> list[frozenset[str]]:
    """Close a family of sets under non-empty pairwise intersections.

    The result is sorted (by size, then lexicographically) for
    determinism.
    """
    closure: set[frozenset[str]] = {attrs(edge) for edge in edges}
    closure.discard(frozenset())
    frontier = sorted(closure, key=_canonical)
    while frontier:
        new_member = frontier.pop()
        additions = []
        for member in sorted(closure, key=_canonical):
            intersection = member & new_member
            if intersection and intersection not in closure:
                additions.append(intersection)
        for addition in additions:
            closure.add(addition)
            frontier.append(addition)
    return sorted(closure, key=_canonical)
