"""Foundational helpers shared by every subsystem: attribute sets, the
library's exception hierarchy, and the bounded LRU cache behind the
engine's memo layers."""

from repro.foundations.attrs import (
    Attrs,
    AttrsLike,
    EMPTY,
    attrs,
    fmt_attrs,
    incomparable,
    is_subset,
    sorted_attrs,
    union_all,
)
from repro.foundations.cache import MISSING, CacheInfo, LRUCache
from repro.foundations.errors import (
    ChaseError,
    DependencyError,
    InconsistentStateError,
    NotApplicableError,
    ReproError,
    SchemaError,
    StateError,
)

__all__ = [
    "Attrs",
    "AttrsLike",
    "EMPTY",
    "attrs",
    "fmt_attrs",
    "incomparable",
    "is_subset",
    "sorted_attrs",
    "union_all",
    "CacheInfo",
    "ChaseError",
    "MISSING",
    "DependencyError",
    "LRUCache",
    "InconsistentStateError",
    "NotApplicableError",
    "ReproError",
    "SchemaError",
    "StateError",
]
