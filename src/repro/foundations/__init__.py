"""Foundational helpers shared by every subsystem: attribute sets and the
library's exception hierarchy."""

from repro.foundations.attrs import (
    Attrs,
    AttrsLike,
    EMPTY,
    attrs,
    fmt_attrs,
    incomparable,
    is_subset,
    sorted_attrs,
    union_all,
)
from repro.foundations.errors import (
    ChaseError,
    DependencyError,
    InconsistentStateError,
    NotApplicableError,
    ReproError,
    SchemaError,
    StateError,
)

__all__ = [
    "Attrs",
    "AttrsLike",
    "EMPTY",
    "attrs",
    "fmt_attrs",
    "incomparable",
    "is_subset",
    "sorted_attrs",
    "union_all",
    "ChaseError",
    "DependencyError",
    "InconsistentStateError",
    "NotApplicableError",
    "ReproError",
    "SchemaError",
    "StateError",
]
