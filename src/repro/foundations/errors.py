"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An ill-formed relation scheme, database scheme or key declaration."""


class DependencyError(ReproError):
    """An ill-formed functional dependency or dependency set."""


class StateError(ReproError):
    """An ill-formed relation, tuple or database state."""


class InconsistentStateError(StateError):
    """A database state admits no weak instance with respect to its
    dependencies (the chase of its state tableau finds a contradiction)."""


class ChaseError(ReproError):
    """An internal error while chasing a tableau."""


class NotApplicableError(ReproError):
    """An algorithm was invoked on an input outside its stated domain
    (e.g. Algorithm 5 on a scheme that is not split-free)."""


class CompileError(ReproError):
    """An expression cannot be flattened into columnar kernels (e.g. it
    embeds a literal relation); callers fall back to the interpreted
    ``Expression.evaluate`` walk."""


class ServiceError(ReproError):
    """A failure in the durable serving layer (``repro.service``)."""


class WALError(ServiceError):
    """A write-ahead log could not be read or written.

    Torn tails (a final record cut short by a crash) are *not* errors —
    recovery tolerates and repairs them; this is raised for corruption
    in the interior of the log, sequence-number regressions, or I/O
    failures."""


class StoreError(ServiceError):
    """A durable store directory is missing, malformed, or already in
    use in a way the operation cannot tolerate."""
