"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An ill-formed relation scheme, database scheme or key declaration."""


class DependencyError(ReproError):
    """An ill-formed functional dependency or dependency set."""


class StateError(ReproError):
    """An ill-formed relation, tuple or database state."""


class InconsistentStateError(StateError):
    """A database state admits no weak instance with respect to its
    dependencies (the chase of its state tableau finds a contradiction)."""


class ChaseError(ReproError):
    """An internal error while chasing a tableau."""


class NotApplicableError(ReproError):
    """An algorithm was invoked on an input outside its stated domain
    (e.g. Algorithm 5 on a scheme that is not split-free)."""
