"""A small bounded LRU cache shared by the engine's memo layers.

The engine caches two kinds of derived objects: query plans per target
attribute set and chase results per state identity.  Both want the same
shape — a dict with least-recently-used eviction and cheap hit/miss
accounting — so it lives here once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


class _Missing:
    """The type of :data:`MISSING` (its repr keeps diagnostics readable)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<MISSING>"


#: Sentinel for :meth:`LRUCache.get`'s ``default``: a memo layer whose
#: values may legitimately be ``None`` (or any other default-looking
#: value) passes ``cache.get(key, MISSING)`` and tests ``is MISSING``,
#: so a cached ``None`` is a *hit* returning ``None`` — not a miss that
#: recomputes the entry forever.
MISSING: Any = _Missing()


@dataclass(frozen=True)
class CacheInfo:
    """A point-in-time snapshot of one cache's accounting."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} size={self.size}/{self.maxsize}"
        )


class LRUCache:
    """A mapping bounded to ``maxsize`` entries with LRU eviction.

    ``get`` refreshes recency and counts hits/misses; ``put`` inserts or
    refreshes and evicts the least recently used entry past the bound.
    Thread-safe: the serving layer lets reader threads consult the
    engine's memo layers concurrently, so every operation holds a lock
    (uncontended acquisition is cheap next to what the cache memoizes).
    """

    __slots__ = ("maxsize", "_data", "_hits", "_misses", "_evictions", "_lock")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("an LRU cache needs room for at least one entry")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """The cached value, or ``default`` on a miss.

        Presence is tested with a sentinel, never by comparing the
        stored value: an entry whose value *is* the default (``None``
        included) still counts and returns as a hit.  Callers that
        memoize possibly-``None`` values should pass
        :data:`MISSING` as the default and test ``is MISSING``.
        """
        with self._lock:
            value = self._data.get(key, MISSING)
            if value is MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            data = self._data
            if key in data:
                data[key] = value
                data.move_to_end(key)
                return
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )
