"""Attribute sets.

The paper fixes a finite universe ``U = {A1, ..., An}`` of attributes
(Section 2.1).  We represent an attribute as a non-empty string and an
attribute *set* as a ``frozenset`` of such strings.  Throughout the library
attribute sets are immutable; helpers in this module parse the compact
notation used in the paper (``"ABC"`` for ``{A, B, C}``) and render sets
back in a deterministic order.

Two spellings are accepted when parsing:

* a string — split into single-character attributes (``"HRC"`` becomes
  ``{"H", "R", "C"}``); multi-character names must be passed via an
  iterable instead;
* any iterable of attribute names (each a non-empty string).

All public functions in the library funnel user input through
:func:`attrs`, so the rest of the code can assume well-formed frozensets.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from repro.foundations.errors import SchemaError

#: Type accepted wherever an attribute set is expected.
AttrsLike = Union[str, Iterable[str]]

#: Canonical attribute-set type.
Attrs = frozenset

EMPTY: frozenset[str] = frozenset()


def attrs(spec: AttrsLike) -> frozenset[str]:
    """Parse an attribute-set specification into a frozenset of names.

    >>> sorted(attrs("HRC"))
    ['C', 'H', 'R']
    >>> sorted(attrs(["hour", "room"]))
    ['hour', 'room']

    Raises :class:`SchemaError` on empty attribute names.
    """
    if isinstance(spec, str):
        names: Iterable[str] = spec
    elif isinstance(spec, (frozenset, set, list, tuple)):
        names = spec
    else:
        names = list(spec)
    result = frozenset(names)
    for name in result:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"invalid attribute name: {name!r}")
    return result


def sorted_attrs(attribute_set: Iterable[str]) -> list[str]:
    """The attributes of ``attribute_set`` in canonical (sorted) order.

    Sorting keeps every rendering, tuple layout and iteration order in the
    library deterministic, which matters both for reproducible benchmarks
    and for golden-output tests.
    """
    return sorted(attribute_set)


def fmt_attrs(attribute_set: Iterable[str]) -> str:
    """Render an attribute set in the paper's compact notation.

    Single-character attributes are concatenated (``"CHR"``); longer names
    are joined with commas so the rendering stays unambiguous.
    """
    names = sorted_attrs(attribute_set)
    if not names:
        return "∅"
    if all(len(name) == 1 for name in names):
        return "".join(names)
    return ",".join(names)


def is_subset(left: Iterable[str], right: Iterable[str]) -> bool:
    """True iff ``left`` ⊆ ``right`` (accepting any iterables)."""
    return frozenset(left) <= frozenset(right)


def incomparable(left: Iterable[str], right: Iterable[str]) -> bool:
    """True iff neither set contains the other (paper, Section 2.1)."""
    left_set, right_set = frozenset(left), frozenset(right)
    return not (left_set <= right_set) and not (right_set <= left_set)


def union_all(sets: Iterable[Iterable[str]]) -> frozenset[str]:
    """Union of a family of attribute sets."""
    out: set[str] = set()
    for member in sets:
        out.update(member)
    return frozenset(out)
