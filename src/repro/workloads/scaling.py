"""Deterministic scaling families for the benchmarks.

Unlike the random generators, these produce *parametric* schemes whose
classification is known exactly at every size, so benchmark sweeps
measure pure scaling without sampling noise.
"""

from __future__ import annotations

from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme


def both_way_chain(length: int, prefix: str = "N") -> DatabaseScheme:
    """``Ri(Ai Ai+1)`` with both attributes keys — Example 9 scaled.

    Key-equivalent, split-free, γ-acyclic and ctm at every length.
    """
    if length < 1:
        raise ValueError("chain length must be positive")
    members = []
    for index in range(length):
        left, right = f"{prefix}{index}", f"{prefix}{index + 1}"
        members.append(
            RelationScheme(f"R{index + 1}", [left, right], [[left], [right]])
        )
    return DatabaseScheme(members)


def tiled_university(tiles: int) -> DatabaseScheme:
    """``tiles`` disjoint copies of Example 1's university scheme.

    Each tile contributes three key-equivalent blocks, so the scheme is
    independence-reducible with ``3 × tiles`` blocks and remains ctm;
    recognition and maintenance sweeps use it to scale the number of
    blocks without changing their shape.
    """
    if tiles < 1:
        raise ValueError("need at least one tile")
    members = []
    for tile in range(tiles):
        def attr(name: str) -> str:
            return f"{name}{tile}"

        h, r, c, t, s, g = (attr(x) for x in "HRCTSG")
        members.extend(
            [
                RelationScheme(f"T{tile}R1", [h, r, c], [[h, r]]),
                RelationScheme(
                    f"T{tile}R2", [h, t, r], [[h, t], [h, r]]
                ),
                RelationScheme(f"T{tile}R3", [h, t, c], [[h, t]]),
                RelationScheme(f"T{tile}R4", [c, s, g], [[c, s]]),
                RelationScheme(f"T{tile}R5", [h, s, r], [[h, s]]),
            ]
        )
    return DatabaseScheme(members)


def keyed_star(arms: int, prefix: str = "K") -> DatabaseScheme:
    """A hub relation whose key is referenced by ``arms`` satellite
    relations — a lookup-table constellation.

    Independent (each satellite's key contains a private attribute),
    BCNF and cover-embedding at every size; used to scale the
    independence test.
    """
    if arms < 1:
        raise ValueError("need at least one arm")
    hub_key = f"{prefix}0"
    members = [
        RelationScheme("HUB", [hub_key, f"{prefix}V"], [[hub_key]])
    ]
    for arm in range(1, arms + 1):
        key = f"{prefix}{arm}"
        payload = f"{prefix}{arm}P"
        members.append(
            RelationScheme(
                f"ARM{arm}", [key, payload, hub_key], [[key]]
            )
        )
    return DatabaseScheme(members)
