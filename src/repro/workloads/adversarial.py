"""Adversarial state families for the paper's lower-bound arguments.

* :func:`example2_chain_state` — Example 2's construction: refuting an
  insertion on ``{AB, BC, AC}`` with ``{A→C, B→C}`` requires examining
  every tuple of a chain whose length is the state size, so the scheme
  is not algebraic-maintainable.
* :func:`example5_chain_state` — Example 5's construction: on the split
  key-equivalent scheme, a ctm-style prober that may only follow
  constants it has already seen must issue ``σ_{B='b'}(R4)``, which
  matches a number of tuples that grows with the state, while
  Algorithm 2's predetermined expressions issue a constant number of
  single-tuple selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.split import find_split_witness
from repro.foundations.errors import NotApplicableError
from repro.schema.database_scheme import DatabaseScheme
from repro.state.database_state import DatabaseState, tuples_from_rows
from repro.workloads.paper import example2_not_algebraic, example4_split_scheme


def example2_chain_state(chain_length: int) -> DatabaseState:
    """Example 2's consistent chain state.

    ``r3 = {(a0, c0)}`` anchors the c-value; ``r1`` is the chain
    ``(a_i, b_i), (a_{i+1}, b_i)`` linking every ``a_i`` and ``b_i`` to
    ``a0`` under ``{A→C, B→C}``.  Inserting ``(a_n, c1)`` into ``r3``
    is inconsistent, but every proper substate containing the inserted
    tuple is consistent — the refutation needs the whole chain.
    """
    scheme = example2_not_algebraic()
    chain = []
    for index in range(chain_length):
        chain.append((f"a{index}", f"b{index}"))
        chain.append((f"a{index + 1}", f"b{index}"))
    return DatabaseState(
        scheme,
        {
            "R1": tuples_from_rows("AB", chain),
            "R3": tuples_from_rows("AC", [("a0", "c0")]),
        },
    )


def example2_killer_insert(chain_length: int) -> tuple[str, dict[str, Hashable]]:
    """The insertion that is inconsistent only because of the full chain."""
    return "R3", {"A": f"a{chain_length}", "C": "c1"}


def example5_chain_state(chain_length: int) -> DatabaseState:
    """Example 5's state: ``r1={(a,b)}``, ``r2={(a,c)}``,
    ``r4={(e_i, b) : 1 ≤ i ≤ n}``, ``r5={(e1, c)}``."""
    scheme = example4_split_scheme()
    return DatabaseState(
        scheme,
        {
            "R1": tuples_from_rows("AB", [("a", "b")]),
            "R2": tuples_from_rows("AC", [("a", "c")]),
            "R4": tuples_from_rows(
                "EB", [(f"e{i}", "b") for i in range(1, chain_length + 1)]
            ),
            "R5": tuples_from_rows("EC", [("e1", "c")]),
        },
    )


def example5_killer_insert() -> tuple[str, dict[str, Hashable]]:
    """Inserting ``(a, e)`` into ``r3``: inconsistent because the
    representative-instance tuple for ``a`` already carries ``E = e1``
    — assembled across ``R1 ⋈ R2 ⋈ (R4 ⋈ R5)``."""
    return "R3", {"A": "a", "E": "e"}


@dataclass(frozen=True)
class SplitLowerBoundFamily:
    """The Theorem 3.4 construction for one split key.

    ``state`` is the consistent base state ``s = s_l ∪ s'_q``;
    inserting ``(insert_relation, insert_values)`` (the proof's tuple
    ``u``) makes it inconsistent, and the inconsistency genuinely needs
    the fragment substate ``s_l``: dropping all of ``s_l`` restores
    consistency (Lemma 3.7(b)/(c)).  ``fragment_relations`` names the
    relations carrying ``s_l``.
    """

    key: frozenset[str]
    state: DatabaseState
    insert_relation: str
    insert_values: dict[str, Hashable]
    fragment_relations: tuple[str, ...]


def split_lower_bound_family(
    scheme: DatabaseScheme, key: frozenset[str]
) -> SplitLowerBoundFamily:
    """Instantiate Theorem 3.4's lower-bound states for a split key.

    Follows the proof: take a split witness for ``key`` — a computation
    whose schemes jointly cover the key although none contains it — and
    populate it with one fragment tuple ``t_l`` (the substate ``s_l``).
    Then, from a scheme ``S_q ⊇ key``, walk a closure computation that
    avoids ``U_l − key`` as long as possible; populate it with a tuple
    ``t_q`` agreeing with ``t_l`` exactly on ``key`` (the substate
    ``s'_q``).  The tuple ``u`` on the first computation step touching
    ``U_l − key`` conflicts through the key dependency, but only once
    both substates are in view.

    Raises :class:`NotApplicableError` when the key is not split in the
    scheme.
    """
    witness = find_split_witness(scheme, key)
    if witness is None:
        raise NotApplicableError(
            f"key {sorted(key)} is not split in {scheme}"
        )
    fragment_members = (witness.start,) + witness.computation
    fragment_attrs = frozenset().union(
        *(member.attributes for member in fragment_members)
    )

    # t_l: unique constants over the fragment union.
    t_l = {a: f"l_{a.lower()}" for a in fragment_attrs}
    relations: dict[str, list[dict[str, Hashable]]] = {}
    for member in fragment_members:
        relations.setdefault(member.name, []).append(
            {a: t_l[a] for a in member.attributes}
        )

    # S_q: a scheme containing the key (exists — the key is declared).
    anchor = next(
        member
        for member in scheme.relations
        if key <= member.attributes and member.declares_key(key)
    )
    forbidden = fragment_attrs - key

    # Walk a closure computation from S_q absorbing only schemes that
    # avoid the fragment's non-key attributes; when stuck, the next
    # absorbable scheme touches them and becomes u's scheme.  The
    # proof's p = 0 case: when S_q itself touches them, u lives on S_q
    # directly and s'_q is empty.
    closure = set(anchor.attributes)
    chain = [anchor] if not anchor.attributes & forbidden else []
    bridge = anchor if anchor.attributes & forbidden else None
    while bridge is None:
        progressed = False
        for member in scheme.relations:
            if member in chain or member.attributes <= closure:
                continue
            if not any(k <= closure for k in member.keys):
                continue
            if member.attributes & forbidden:
                bridge = member
                break
            closure |= member.attributes
            chain.append(member)
            progressed = True
        if bridge is None and not progressed:
            raise NotApplicableError(
                "could not reach the fragment attributes from the "
                "key-holding scheme; the scheme is not key-equivalent"
            )

    # t_q: agrees with t_l on the key, fresh elsewhere (over the chain
    # and the bridge scheme).
    chain_attrs = frozenset().union(
        *(m.attributes for m in chain), frozenset()
    )
    t_q = {
        a: t_l[a] if a in key else f"q_{a.lower()}"
        for a in chain_attrs | bridge.attributes
    }
    for member in chain:
        relations.setdefault(member.name, []).append(
            {a: t_q[a] for a in member.attributes}
        )

    state = DatabaseState(scheme, relations)
    return SplitLowerBoundFamily(
        key=key,
        state=state,
        insert_relation=bridge.name,
        insert_values={a: t_q[a] for a in bridge.attributes},
        fragment_relations=tuple(
            sorted({member.name for member in fragment_members})
        ),
    )


def example5_ctm_prober_tuples(state: DatabaseState) -> int:
    """The number of tuples the paper's hypothetical ctm prober retrieves
    on Example 5's state: having seen only ``{a, b, c, e}``, its next
    probe is ``σ_{B='b'}(R4)`` (or symmetrically ``σ_{C='c'}(R5)``),
    and the better of the two still grows with the chain by a symmetric
    construction; we report the ``σ_{B='b'}(R4)`` count the paper
    analyzes."""
    return sum(1 for values in state["R4"] if values["B"] == "b")
