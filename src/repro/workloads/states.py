"""Random consistent-state generators.

Consistency is guaranteed *by construction*: a state built by projecting
full universe tuples onto the relation schemes always has those universe
tuples as a weak instance, provided the universe tuples themselves
satisfy the fds — which they do when distinct universe tuples never
agree on any attribute (every left-hand side disagrees, so every fd is
vacuous) or when they are generated through the fd-respecting entity
recycler below.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from repro.schema.database_scheme import DatabaseScheme
from repro.state.database_state import DatabaseState


def universe_tuple(
    scheme: DatabaseScheme, index: int
) -> dict[str, Hashable]:
    """The ``index``-th synthetic universe tuple: value ``a{index}`` for
    attribute ``A`` and so on — distinct across indexes, so any family
    of these satisfies every fd."""
    return {a: f"{a.lower()}{index}" for a in scheme.universe}


def random_consistent_state(
    scheme: DatabaseScheme,
    rng: random.Random,
    n_entities: int = 10,
    presence_probability: float = 0.7,
    ensure_nonempty: bool = True,
) -> DatabaseState:
    """A random consistent state: project ``n_entities`` universe tuples
    onto each relation scheme, keeping each projection independently
    with ``presence_probability``.

    The union of the universe tuples is a weak instance, so the state is
    consistent for any constraint set; partial presence makes the
    representative instance genuinely partial, exercising extension
    joins and total projections.
    """
    relations: dict[str, list[dict[str, Hashable]]] = {
        name: [] for name in scheme.names
    }
    for index in range(n_entities):
        full = universe_tuple(scheme, index)
        placed = False
        for member in scheme.relations:
            if rng.random() < presence_probability:
                relations[member.name].append(
                    {a: full[a] for a in member.attributes}
                )
                placed = True
        if ensure_nonempty and not placed:
            member = rng.choice(scheme.relations)
            relations[member.name].append(
                {a: full[a] for a in member.attributes}
            )
    return DatabaseState(scheme, relations)


def dense_consistent_state(
    scheme: DatabaseScheme, n_entities: int
) -> DatabaseState:
    """Every universe tuple projected onto every relation — the largest
    consistent state over ``n_entities`` synthetic entities; used by the
    benchmarks for size sweeps."""
    relations = {
        member.name: [
            {a: universe_tuple(scheme, index)[a] for a in member.attributes}
            for index in range(n_entities)
        ]
        for member in scheme.relations
    }
    return DatabaseState(scheme, relations)


def consistent_insert_candidate(
    scheme: DatabaseScheme,
    rng: random.Random,
    n_entities: int,
    relation_name: Optional[str] = None,
) -> tuple[str, dict[str, Hashable]]:
    """An insertion that is consistent with any state built from the
    first ``n_entities`` universe tuples: a projection of an existing
    universe tuple (an entity re-join) — the common update pattern."""
    member = (
        scheme[relation_name]
        if relation_name is not None
        else rng.choice(scheme.relations)
    )
    full = universe_tuple(scheme, rng.randrange(n_entities))
    return member.name, {a: full[a] for a in member.attributes}


def conflicting_insert_candidate(
    scheme: DatabaseScheme,
    rng: random.Random,
    n_entities: int,
    relation_name: Optional[str] = None,
) -> tuple[str, dict[str, Hashable]]:
    """An insertion built by cross-breeding two universe tuples: it keeps
    entity ``i``'s values on one declared key but entity ``j``'s values
    elsewhere, so against a dense state it violates the key dependency
    whenever the relation has attributes beyond that key."""
    member = (
        scheme[relation_name]
        if relation_name is not None
        else rng.choice(
            [m for m in scheme.relations if not m.is_all_key()]
            or list(scheme.relations)
        )
    )
    first = universe_tuple(scheme, rng.randrange(n_entities))
    second = universe_tuple(scheme, n_entities + rng.randrange(n_entities))
    key = rng.choice(member.keys)
    values = {
        a: first[a] if a in key else second[a] for a in member.attributes
    }
    return member.name, values
