"""A realistic registrar workload over Example 1's university scheme.

Generates coherent timetables — courses assigned to (hour, room,
teacher) slots, students enrolled into courses they can attend — so the
benchmark and scenario tests exercise the maintenance and query paths
with data that joins the way real registrar data would, rather than
with synthetic disjoint entities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.state.database_state import DatabaseState
from repro.workloads.paper import example1_university


@dataclass(frozen=True)
class Offering:
    """One scheduled course offering."""

    course: str
    hour: str
    room: str
    teacher: str


@dataclass(frozen=True)
class Enrollment:
    """One student sitting one offering (with a grade)."""

    student: str
    offering: Offering
    grade: str


@dataclass
class RegistrarWorkload:
    """A generated timetable plus enrollments, and its database state."""

    offerings: list[Offering]
    enrollments: list[Enrollment]

    def state(self) -> DatabaseState:
        """Materialize as a state on the university scheme."""
        scheme = example1_university()
        r1, r2, r3, r4, r5 = [], [], [], [], []
        for offering in self.offerings:
            r1.append(
                {"H": offering.hour, "R": offering.room, "C": offering.course}
            )
            r2.append(
                {"H": offering.hour, "T": offering.teacher, "R": offering.room}
            )
            r3.append(
                {"H": offering.hour, "T": offering.teacher, "C": offering.course}
            )
        for enrollment in self.enrollments:
            r4.append(
                {
                    "C": enrollment.offering.course,
                    "S": enrollment.student,
                    "G": enrollment.grade,
                }
            )
            r5.append(
                {
                    "H": enrollment.offering.hour,
                    "S": enrollment.student,
                    "R": enrollment.offering.room,
                }
            )
        return DatabaseState(
            scheme, {"R1": r1, "R2": r2, "R3": r3, "R4": r4, "R5": r5}
        )


def generate_registrar_workload(
    rng: random.Random,
    n_courses: int = 8,
    n_rooms: int = 4,
    n_teachers: int = 4,
    n_hours: int = 5,
    n_students: int = 20,
    enrollments_per_student: int = 2,
) -> RegistrarWorkload:
    """Generate a conflict-free timetable and consistent enrollments.

    Invariants enforced during generation (matching the scheme's keys):
    one course per (hour, room); one room and one course per
    (hour, teacher); one grade per (course, student); one room per
    (hour, student) — a student never sits two offerings at one hour.
    """
    hours = [f"h{i}" for i in range(n_hours)]
    rooms = [f"room{i}" for i in range(n_rooms)]
    teachers = [f"prof{i}" for i in range(n_teachers)]
    grades = ["A", "B", "C"]

    free_slots = [(h, r) for h in hours for r in rooms]
    rng.shuffle(free_slots)
    teacher_busy: set[tuple[str, str]] = set()
    offerings: list[Offering] = []
    for index in range(n_courses):
        while free_slots:
            hour, room = free_slots.pop()
            candidates = [
                t for t in teachers if (hour, t) not in teacher_busy
            ]
            if candidates:
                teacher = rng.choice(candidates)
                teacher_busy.add((hour, teacher))
                offerings.append(
                    Offering(f"crs{index}", hour, room, teacher)
                )
                break
        else:
            break  # timetable full

    enrollments: list[Enrollment] = []
    for student_index in range(n_students):
        student = f"stud{student_index}"
        busy_hours: set[str] = set()
        available = [o for o in offerings]
        rng.shuffle(available)
        taken = 0
        for offering in available:
            if taken >= enrollments_per_student:
                break
            if offering.hour in busy_hours:
                continue
            busy_hours.add(offering.hour)
            enrollments.append(
                Enrollment(student, offering, rng.choice(grades))
            )
            taken += 1
    return RegistrarWorkload(offerings=offerings, enrollments=enrollments)


def enrollment_stream(
    workload: RegistrarWorkload,
) -> Iterator[tuple[str, dict[str, Hashable]]]:
    """The enrollment tuples as an insert stream (R4 then R5 per
    student), for replaying through a maintainer."""
    for enrollment in workload.enrollments:
        yield (
            "R4",
            {
                "C": enrollment.offering.course,
                "S": enrollment.student,
                "G": enrollment.grade,
            },
        )
        yield (
            "R5",
            {
                "H": enrollment.offering.hour,
                "S": enrollment.student,
                "R": enrollment.offering.room,
            },
        )
