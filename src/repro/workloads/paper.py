"""The paper's worked examples as executable fixtures.

Every database scheme the paper discusses (Examples 1-13 plus the
introduction's S scheme) is encoded here with exactly the keys its
stated fd set induces; the test suite asserts each example's claimed
classification and, where the paper works a state through an algorithm,
the exact outcome.
"""

from __future__ import annotations

from repro.schema.database_scheme import DatabaseScheme
from repro.state.database_state import DatabaseState, tuples_from_rows


def example1_university() -> DatabaseScheme:
    """Example 1: the university scheme — neither independent nor
    γ-acyclic, yet bounded and ctm.  C=course, T=teacher, H=hour,
    R=room, S=student, G=grade."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("HRC", ["HR"]),
            "R2": ("HTR", ["HT", "HR"]),
            "R3": ("HTC", ["HT"]),
            "R4": ("CSG", ["CS"]),
            "R5": ("HSR", ["HS"]),
        }
    )


def intro_scheme_s() -> DatabaseScheme:
    """The introduction's S scheme: the university scheme's first block
    merged into one relation; independent by Sagiv's results."""
    return DatabaseScheme.from_spec(
        {
            "S1": ("HRCT", ["HR", "HT"]),
            "S2": ("CSG", ["CS"]),
            "S3": ("HSR", ["HS"]),
        }
    )


def example2_not_algebraic() -> DatabaseScheme:
    """Example 2: ``{AB, BC, AC}`` with ``{A→C, B→C}`` — not
    algebraic-maintainable (refuting an insert can require the whole
    state)."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AB", None),  # all-key
            "R2": ("BC", ["B"]),
            "R3": ("AC", ["A"]),
        }
    )


def example3_triangle() -> DatabaseScheme:
    """Example 3: the fully key-connected triangle — key-equivalent but
    neither independent nor γ-acyclic (not even α-acyclic)."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AB", ["A", "B"]),
            "R2": ("BC", ["B", "C"]),
            "R3": ("AC", ["A", "C"]),
        }
    )


def example4_split_scheme() -> DatabaseScheme:
    """Examples 4, 5 and 7 share this scheme: key-equivalent, bounded,
    algebraic-maintainable — but the key BC is split, so not ctm."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AB", ["A"]),
            "R2": ("AC", ["A"]),
            "R3": ("AE", ["A", "E"]),
            "R4": ("EB", ["E"]),
            "R5": ("EC", ["E"]),
            "R6": ("BCD", ["BC", "D"]),
            "R7": ("DA", ["D", "A"]),
        }
    )


# The same scheme under the names the later examples use.
example5_scheme = example4_split_scheme
example7_scheme = example4_split_scheme


def example5_state(chain_length: int = 3) -> DatabaseState:
    """The Example 5/7 state: r1={(a,b)}, r2={(a,c)},
    r3=∅, r4={(e_i, b)}, r5={(e1, c)}."""
    scheme = example4_split_scheme()
    return DatabaseState(
        scheme,
        {
            "R1": tuples_from_rows("AB", [("a", "b")]),
            "R2": tuples_from_rows("AC", [("a", "c")]),
            "R4": tuples_from_rows(
                "EB", [(f"e{i}", "b") for i in range(1, chain_length + 1)]
            ),
            "R5": tuples_from_rows("EC", [("e1", "c")]),
        },
    )


def example6_scheme() -> DatabaseScheme:
    """Example 6: key-equivalent scheme with keys {A, B, E, CD}."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("ABE", ["A", "B", "E"]),
            "R2": ("AC", ["A"]),
            "R3": ("AD", ["A"]),
            "R4": ("BC", ["B"]),
            "R5": ("BD", ["B"]),
            "R6": ("CDE", ["CD", "E"]),
        }
    )


def example6_state() -> DatabaseState:
    """The Example 6 state: r2={(a,c)}, r5={(b,d)}, r6={(c,d,e)}."""
    scheme = example6_scheme()
    return DatabaseState(
        scheme,
        {
            "R2": tuples_from_rows("AC", [("a", "c")]),
            "R5": tuples_from_rows("BD", [("b", "d")]),
            "R6": tuples_from_rows("CDE", [("c", "d", "e")]),
        },
    )


def example8_split() -> DatabaseScheme:
    """Example 8: the key BC is split in R1+, R2+ and R5+ (but R3 and R4
    are split-free)."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AC", ["A"]),
            "R2": ("AB", ["A"]),
            "R3": ("ABC", ["A", "BC"]),
            "R4": ("BCD", ["BC", "D"]),
            "R5": ("AD", ["A", "D"]),
        }
    )


def example9_chain() -> DatabaseScheme:
    """Example 9: a chain with single-attribute keys both ways —
    split-free."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AB", ["A", "B"]),
            "R2": ("BC", ["B", "C"]),
            "R3": ("CD", ["C", "D"]),
            "R4": ("DE", ["D", "E"]),
        }
    )


def example10_scheme() -> DatabaseScheme:
    """Example 10: the split-free key-equivalent triangle used to walk
    through Algorithm 5."""
    return DatabaseScheme.from_spec(
        {
            "S1": ("AB", ["A", "B"]),
            "S2": ("BC", ["B", "C"]),
            "S3": ("AC", ["A", "C"]),
        }
    )


def example10_state() -> DatabaseState:
    """s1={(a,b)}, s2={(b,c)}, s3=∅."""
    scheme = example10_scheme()
    return DatabaseState(
        scheme,
        {
            "S1": tuples_from_rows("AB", [("a", "b")]),
            "S2": tuples_from_rows("BC", [("b", "c")]),
        },
    )


def example11_reducible() -> DatabaseScheme:
    """Example 11: independence-reducible with partition
    {{R1,R2,R3,R4}, {R5,R6}} and induced scheme {ABCD, DEFG}."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AB", ["A", "B"]),
            "R2": ("BC", ["B", "C"]),
            "R3": ("AC", ["A", "C"]),
            "R4": ("AD", ["A"]),
            "R5": ("DEF", ["D"]),
            "R6": ("DEG", ["D"]),
        }
    )


def example12_reducible() -> DatabaseScheme:
    """Example 12: like Example 11 but with the one-directional triangle
    ``A→B, B→C, C→A``; used for the ACG-total projection walk-through."""
    return DatabaseScheme.from_spec(
        {
            # F = {A→B, B→C, C→A, A→D, D→EFG}; the declared keys are the
            # full candidate-key sets that fd set induces (e.g. B→C→A
            # makes B a key of AB as well).
            "R1": ("AB", ["A", "B"]),
            "R2": ("BC", ["B", "C"]),
            "R3": ("AC", ["A", "C"]),
            "R4": ("AD", ["A"]),
            "R5": ("DEF", ["D"]),
            "R6": ("DEG", ["D"]),
        }
    )


def example12_state() -> DatabaseState:
    """A small state on the Example 12 scheme exercising the ACG-total
    projection across both blocks."""
    scheme = example12_reducible()
    return DatabaseState(
        scheme,
        {
            "R1": tuples_from_rows("AB", [("a", "b")]),
            "R2": tuples_from_rows("BC", [("b", "c")]),
            "R4": tuples_from_rows("AD", [("a", "d")]),
            "R6": tuples_from_rows("DEG", [("d", "e", "g")]),
        },
    )


def example13_kep() -> DatabaseScheme:
    """Example 13: KEP partitions this scheme into
    {{R8}, {R1,R3,R4}, {R2,R5,R6,R7}}."""
    return DatabaseScheme.from_spec(
        {
            "R1": ("AB", None),  # all-key
            "R2": ("CD", None),  # all-key
            "R3": ("ABC", ["AB"]),
            "R4": ("ABD", ["AB"]),
            "R5": ("CDE", ["CD", "E"]),
            "R6": ("EA", ["E"]),
            "R7": ("EF", ["E"]),
            "R8": ("FB", ["F"]),
        }
    )


#: All paper schemes by label, for parametrized tests.
ALL_SCHEMES = {
    "example1": example1_university,
    "intro_s": intro_scheme_s,
    "example2": example2_not_algebraic,
    "example3": example3_triangle,
    "example4": example4_split_scheme,
    "example6": example6_scheme,
    "example8": example8_split,
    "example9": example9_chain,
    "example10": example10_scheme,
    "example11": example11_reducible,
    "example12": example12_reducible,
    "example13": example13_kep,
}
