"""Random database-scheme generators.

Constructive families with known classifications (used as oracles by
tests and as scalable workloads by the benchmarks):

* :func:`random_key_equivalent_scheme` — a key-linked ring of relation
  schemes; key-equivalent by construction.
* :func:`random_independent_scheme` — relations whose keys each contain
  a private attribute, so the uniqueness condition holds trivially;
  cover-embedding BCNF independent by construction.
* :func:`random_reducible_scheme` — a tree of key-equivalent blocks in
  which each parent embeds its child block's key; independence-reducible
  by construction, with a known partition.
* :func:`random_berge_acyclic_scheme` — an edge-tree hypergraph (edges
  glued at single fresh nodes); Berge- hence γ-acyclic by construction.
* :func:`random_scheme` — unconstrained fuzzing input.

All generators take a ``random.Random`` so workloads are reproducible.
"""

from __future__ import annotations

import random
from itertools import count, islice
from typing import Iterator

from repro.schema.database_scheme import DatabaseScheme
from repro.schema.operations import normalize_keys
from repro.schema.relation_scheme import RelationScheme


def _attr_names(prefix: str = "") -> Iterator[str]:
    """An endless supply of attribute names: A, B, ..., Z, A1, B1, ..."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for suffix in count():
        for letter in letters:
            yield f"{prefix}{letter}{suffix if suffix else ''}"


def random_scheme(
    rng: random.Random,
    n_attributes: int = 6,
    n_relations: int = 4,
    max_width: int = 4,
    key_probability: float = 0.7,
) -> DatabaseScheme:
    """An unconstrained random scheme: random attribute sets with random
    declared keys, normalized to full candidate-key sets.

    No classification is guaranteed; this is fuzzing input for the
    equivalence tests (recognition vs. brute force, LSAT vs. WSAT).
    """
    names = list(islice(_attr_names(), n_attributes))
    members = []
    for index in range(n_relations):
        width = rng.randint(1, min(max_width, n_attributes))
        attributes = frozenset(rng.sample(names, width))
        keys = None
        if rng.random() < key_probability:
            key_width = rng.randint(1, width)
            keys = [frozenset(rng.sample(sorted(attributes), key_width))]
        members.append(RelationScheme(f"R{index + 1}", attributes, keys))
    # Ensure unique attribute coverage is harmless; names may repeat
    # attribute sets, which DatabaseScheme permits (distinct names).
    return normalize_keys(DatabaseScheme(members))


def random_key_equivalent_scheme(
    rng: random.Random,
    n_relations: int = 4,
    extra_attributes: int = 2,
    extra_links: int = 1,
    composite_members: int = 0,
    prefix: str = "",
) -> DatabaseScheme:
    """A key-equivalent scheme: a ring of relations, each holding its own
    single-attribute key plus the next relation's key, with optional
    private attributes and extra cross-links.

    Every member's closure walks the whole ring, so the scheme is
    key-equivalent by construction.

    ``composite_members`` additionally appends relations with a
    *composite* key over two non-adjacent ring-key attributes (plus a
    fresh equivalent key) — the Example 4 pattern.  Since no other
    member contains both attributes, such keys are typically *split*,
    making this the generator for Theorem 3.4 workloads; with
    ``composite_members=0`` every key is a single attribute and the
    scheme is always split-free.
    """
    supply = _attr_names(prefix)
    key_attrs = [next(supply) for _ in range(n_relations)]
    extras = [next(supply) for _ in range(extra_attributes)]
    members = []
    for index in range(n_relations):
        attributes = {key_attrs[index], key_attrs[(index + 1) % n_relations]}
        for extra in extras:
            if rng.random() < 0.4:
                attributes.add(extra)
        for _ in range(extra_links):
            if rng.random() < 0.3:
                attributes.add(rng.choice(key_attrs))
        members.append(
            RelationScheme(
                f"{prefix}R{index + 1}",
                frozenset(attributes),
                [frozenset({key_attrs[index]})],
            )
        )
    for gadget in range(composite_members):
        # The Example 4 gadget: two fresh "halves" p, q that are carried
        # as payload by two different ring members (so they are
        # determined but determine nothing individually), a composite
        # relation M(p q d) with keys {pq, d}, and a link relation tying
        # d back into the ring so M stays key-equivalent.  The key pq is
        # split: the two halves are only assembled across fragments.
        half_p, half_q, back = next(supply), next(supply), next(supply)
        host_p = rng.randrange(n_relations)
        host_q = (host_p + rng.randrange(1, n_relations)) % n_relations
        augmented = []
        for index, member in enumerate(members[:n_relations]):
            attributes = set(member.attributes)
            if index == host_p:
                attributes.add(half_p)
            if index == host_q:
                attributes.add(half_q)
            augmented.append(
                RelationScheme(member.name, frozenset(attributes), member.keys)
            )
        members[:n_relations] = augmented
        pair = frozenset({half_p, half_q})
        members.append(
            RelationScheme(
                f"{prefix}C{gadget + 1}",
                pair | {back},
                [pair, frozenset({back})],
            )
        )
        members.append(
            RelationScheme(
                f"{prefix}L{gadget + 1}",
                frozenset({back, key_attrs[host_p]}),
                [frozenset({back}), frozenset({key_attrs[host_p]})],
            )
        )
    return normalize_keys(DatabaseScheme(members))


def random_independent_scheme(
    rng: random.Random,
    n_relations: int = 4,
    max_payload: int = 3,
    shared_pool: int = 2,
) -> DatabaseScheme:
    """A cover-embedding BCNF independent scheme.

    Each relation's key contains a private attribute occurring nowhere
    else, so no other relation's closure can ever complete one of its
    key dependencies: the uniqueness condition holds by construction.
    Payload attributes may be shared across relations.
    """
    supply = _attr_names()
    shared = [next(supply) for _ in range(shared_pool)]
    members = []
    for index in range(n_relations):
        private_key = next(supply)
        payload = {next(supply) for _ in range(rng.randint(1, max_payload))}
        for attribute in shared:
            if rng.random() < 0.5:
                payload.add(attribute)
        key = {private_key}
        if shared and rng.random() < 0.3:
            key.add(rng.choice(shared))
        members.append(
            RelationScheme(
                f"R{index + 1}",
                frozenset(key | payload),
                [frozenset(key)],
            )
        )
    return normalize_keys(DatabaseScheme(members))


def random_reducible_scheme(
    rng: random.Random,
    n_blocks: int = 3,
    relations_per_block: int = 3,
) -> tuple[DatabaseScheme, list[list[str]]]:
    """An independence-reducible scheme with a known partition.

    Blocks are key-equivalent rings over disjoint attributes; each
    non-root block's designated key is additionally embedded into one
    relation of its parent block (a foreign key), which keeps the
    induced scheme independent: a block's non-key attributes are private
    to the block, so no foreign closure completes its key dependencies.

    Returns the scheme and the expected partition (lists of relation
    names), for use as a recognition oracle.
    """
    blocks: list[DatabaseScheme] = []
    for block_index in range(n_blocks):
        blocks.append(
            random_key_equivalent_scheme(
                rng,
                n_relations=relations_per_block,
                extra_attributes=1,
                prefix=f"B{block_index}",
            )
        )
    members: list[RelationScheme] = []
    expected: list[list[str]] = []
    for block_index, block in enumerate(blocks):
        block_members = list(block.relations)
        if block_index > 0:
            parent = blocks[rng.randrange(block_index)]
            parent_host = rng.choice(range(len(parent.relations)))
            foreign_key = min(
                block.all_keys(), key=lambda key: tuple(sorted(key))
            )
            host = [m for m in members if m.name == parent.relations[parent_host].name]
            if host:
                target = host[0]
                members.remove(target)
                members.append(
                    RelationScheme(
                        target.name,
                        target.attributes | foreign_key,
                        target.keys,
                    )
                )
        members.extend(block_members)
        expected.append([member.name for member in block_members])
    return DatabaseScheme(members), expected


def random_berge_acyclic_scheme(
    rng: random.Random,
    n_relations: int = 5,
    max_width: int = 3,
    all_key_probability: float = 0.5,
) -> DatabaseScheme:
    """A Berge-acyclic (hence γ-acyclic) cover-embedding scheme: an
    edge-tree where each new relation shares exactly one attribute with
    one earlier relation and the rest are fresh.

    Keys are either the whole scheme (all-key) or the shared linking
    attribute, keeping BCNF easy to satisfy; callers that require BCNF
    should still filter with :func:`repro.fd.database_scheme_is_bcnf`.
    """
    supply = _attr_names()
    first_width = rng.randint(1, max_width)
    first_attrs = frozenset(next(supply) for _ in range(first_width))
    members = [RelationScheme("R1", first_attrs)]
    for index in range(1, n_relations):
        anchor = rng.choice(members)
        link = rng.choice(sorted(anchor.attributes))
        fresh = {next(supply) for _ in range(rng.randint(1, max_width - 1) if max_width > 1 else 0)}
        attributes = frozenset({link} | fresh)
        if fresh and rng.random() > all_key_probability:
            keys = [frozenset({link})]
        else:
            keys = None
        members.append(RelationScheme(f"R{index + 1}", attributes, keys))
    return normalize_keys(DatabaseScheme(members))
