"""Command-line interface.

Subcommands::

    python -m repro analyze SCHEME.json
        Classify a scheme (BCNF, acyclicity, independence,
        key-equivalent partition, reducibility, ctm).

    python -m repro explain SCHEME.json --target ACG
        Print the predetermined total-projection plan for [X].

    python -m repro check SCHEME.json STATE.json
        Report local and global consistency of a state.

    python -m repro query SCHEME.json STATE.json --target ACG
        Evaluate the X-total projection.

    python -m repro insert SCHEME.json STATE.json \
            --relation R1 --values H=9am,R=DC128,C=CS445 [--out NEW.json]
        Validate one insertion; write the updated state when accepted.

    python -m repro synthesize --fds "A->B, B->C" [--universe ABCD] \
            [--out SCHEME.json]
        Synthesize a cover-embedding 3NF scheme from fds.

    python -m repro serve [SCHEME.json] [--store DIR] [--script FILE]
        Run the session server over a line protocol (stdin or a script
        file).  With --store, every accepted update is WAL-logged and
        the store recovers on restart; without, the server is
        in-memory.  `help` lists the protocol's commands.

    python -m repro replay --store DIR [--json] [--out STATE.json]
        Recover a durable store (snapshot + WAL replay, torn-tail
        repair) and report what recovery did.

    python -m repro insert SCHEME.json STATE.json --relation R1 ...
    python -m repro insert --store DIR --relation R1 --values ...
        Validate one insertion; with --store the outcome is durable
        (accepted updates hit the WAL, rejections are logged as
        diagnostics).

    python -m repro stats SCHEME.json STATE.json --target ACG [--repeat N]
    python -m repro stats --store DIR [--target ACG]
        Run a traced workload (chase + queries, or store recovery) and
        report per-stage span latency histograms (p50/p95/p99) with
        their counters; --json and --prometheus select the format.

``serve``, ``insert``, ``query`` and ``stats`` accept ``--trace
FILE.jsonl`` to append a slow-operation log: one JSON object per span
at or above ``--slow-ms`` milliseconds (default 0 = log every span),
each carrying the span name, its duration and its counters.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.report import analyze_scheme
from repro.core.engine import WeakInstanceEngine
from repro.fd.fdset import FDSet
from repro.foundations.attrs import attrs, fmt_attrs
from repro.foundations.errors import ReproError
from repro.io import (
    dump_scheme,
    dump_state,
    load_scheme,
    load_state,
    scheme_to_dict,
    state_to_dict,
)
from repro.obs.exposition import prometheus_text
from repro.obs.spans import Tracer, tracing
from repro.schema.synthesis import synthesize_3nf
from repro.state.consistency import is_consistent, is_locally_consistent


def _tracer_from_args(args: argparse.Namespace) -> Optional[Tracer]:
    """The slow-op tracer the ``--trace``/``--slow-ms`` flags ask for
    (``None`` when ``--trace`` was not given)."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return None
    threshold = getattr(args, "slow_ms", 0.0) / 1000.0
    return Tracer(slow_log=trace_path, slow_threshold=threshold)


def _add_trace_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace",
        help="append a slow-operation JSONL log to this file",
    )
    subparser.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        dest="slow_ms",
        help="only log spans at least this many milliseconds long "
        "(default 0 = every span)",
    )


def _parse_values(text: str) -> dict[str, str]:
    """Parse ``A=a,B=b`` tuple notation."""
    values: dict[str, str] = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "=" not in piece:
            raise argparse.ArgumentTypeError(
                f"expected ATTR=value, got {piece!r}"
            )
        attribute, _, value = piece.partition("=")
        values[attribute.strip()] = value.strip()
    if not values:
        raise argparse.ArgumentTypeError("no values given")
    return values


def _cmd_analyze(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    report = analyze_scheme(scheme)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    engine = WeakInstanceEngine(scheme)
    try:
        print(engine.explain(args.target))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    state = load_state(scheme, args.state)
    local = is_locally_consistent(state)
    globally = is_consistent(state)
    print(f"locally consistent:  {local}")
    print(f"globally consistent: {globally}")
    if local and not globally:
        print(
            "note: the state is in LSAT − WSAT; this scheme does not "
            "enforce global consistency locally"
        )
    return 0 if globally else 2


def _compiled(args: argparse.Namespace) -> bool:
    """Whether the engine runs the columnar kernels (default) or the
    ``--no-compile`` escape hatch forced the interpreted walk."""
    return not getattr(args, "no_compile", False)


def _cmd_query(args: argparse.Namespace) -> int:
    tracer = _tracer_from_args(args)
    try:
        with tracing(tracer):
            scheme = load_scheme(args.scheme)
            state = load_state(scheme, args.state)
            engine = WeakInstanceEngine(scheme, compiled=_compiled(args))
            target = attrs(args.target)
            rows = engine.query(state, target)
        ordered = sorted(target)
        print("\t".join(ordered))
        for row in sorted(rows):
            print("\t".join(str(value) for value in row))
        return 0
    finally:
        if tracer is not None:
            tracer.close()


def _print_rejection(relation_name: str, outcome) -> None:
    """The satellite diagnostic: a rejected insert explains itself with
    the full MaintenanceOutcome rendering, not a bare exit code."""
    print(
        f"REJECTED: inserting into {relation_name} would make the "
        "state inconsistent"
    )
    print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))


def _open_or_create_store(args: argparse.Namespace):
    """Open the store at ``args.store``, creating it from the scheme
    positional when the directory is not a store yet."""
    from pathlib import Path

    from repro.foundations.errors import StoreError
    from repro.service.store import SCHEME_FILE, DurableStore

    store_dir = Path(args.store)
    fsync_every = getattr(args, "fsync_every", 1)
    workers = getattr(args, "workers", 1)
    compiled = _compiled(args)
    if (store_dir / SCHEME_FILE).exists():
        return DurableStore.open(
            store_dir,
            fsync_every=fsync_every,
            workers=workers,
            compiled=compiled,
        )
    scheme_path = getattr(args, "scheme", None)
    if not scheme_path:
        raise StoreError(
            f"{store_dir} is not a store yet; pass a scheme file to "
            "create it"
        )
    return DurableStore.create(
        store_dir,
        load_scheme(scheme_path),
        fsync_every=fsync_every,
        workers=workers,
        compiled=compiled,
    )


def _cmd_insert(args: argparse.Namespace) -> int:
    tracer = _tracer_from_args(args)
    try:
        with tracing(tracer):
            return _run_insert(args)
    finally:
        if tracer is not None:
            tracer.close()


def _run_insert(args: argparse.Namespace) -> int:
    if args.store:
        store = _open_or_create_store(args)
        try:
            outcome = store.insert(args.relation, args.values)
            if not outcome.consistent:
                _print_rejection(args.relation, outcome)
                print(
                    "(rejection logged durably in "
                    f"{store.directory / 'wal'})"
                )
                return 2
            print(
                f"accepted at seq {store.last_seq} "
                f"(examined {outcome.tuples_examined} stored tuples); "
                f"persisted in {store.directory}"
            )
            if args.out:
                dump_state(outcome.state, args.out)
                print(f"updated state written to {args.out}")
            return 0
        finally:
            store.close()
    if not args.scheme or not args.state:
        print(
            "error: insert needs SCHEME.json and STATE.json, or --store DIR",
            file=sys.stderr,
        )
        return 1
    scheme = load_scheme(args.scheme)
    state = load_state(scheme, args.state)
    engine = WeakInstanceEngine(scheme, compiled=_compiled(args))
    outcome = engine.insert(state, args.relation, args.values)
    if not outcome.consistent:
        _print_rejection(args.relation, outcome)
        return 2
    print(
        f"accepted (examined {outcome.tuples_examined} stored tuples)"
    )
    if args.out:
        dump_state(outcome.state, args.out)
        print(f"updated state written to {args.out}")
    else:
        print(json.dumps(state_to_dict(outcome.state), sort_keys=True))
    return 0


SERVE_HELP = """\
commands:
  session NAME                switch to (or open) the named session
  insert REL A=a,B=b,...      validate + apply one insertion
  delete REL A=a,B=b,...      apply one deletion
  query ATTRS                 evaluate the total projection [ATTRS]
  state                       print the committed state as JSON
  metrics                     print server + engine-cache counters
  stats                       print span histograms + counters as JSON
  prometheus                  print the Prometheus text exposition
  snapshot                    force a snapshot + WAL reset (durable only)
  sessions                    list the open sessions
  help                        this text
  exit                        stop serving"""


def _serve_loop(server, lines, echo: bool = False, read_replicas=None) -> int:
    """Drive the server over the line protocol.  Returns an exit code;
    protocol errors are reported per line, not fatal.  With
    ``read_replicas`` (a :class:`~repro.service.replica.ReplicaSet`),
    ``query`` is offloaded to a caught-up follower — read-your-writes
    is preserved by the replica set's sequence floor."""
    session = server.session("default")
    for raw in lines:
        line = raw.strip()
        if echo and line:
            print(f"> {line}")
        if not line or line.startswith("#"):
            continue
        command, _, rest = line.partition(" ")
        rest = rest.strip()
        try:
            if command in ("exit", "quit"):
                break
            elif command == "help":
                print(SERVE_HELP)
            elif command == "session":
                if not rest:
                    raise ReproError("session needs a name")
                session = server.session(rest)
                print(f"session {rest}")
            elif command == "sessions":
                print(", ".join(server.session_names()))
            elif command == "insert":
                relation_name, _, spec = rest.partition(" ")
                outcome = session.insert(relation_name, _parse_values(spec))
                if outcome.consistent:
                    print(f"accepted ({outcome.tuples_examined} examined)")
                else:
                    _print_rejection(relation_name, outcome)
            elif command == "delete":
                relation_name, _, spec = rest.partition(" ")
                session.delete(relation_name, _parse_values(spec))
                print("deleted")
            elif command == "query":
                target = attrs(rest)
                if read_replicas is not None:
                    rows = read_replicas.query(target)
                else:
                    rows = session.query(target)
                print("\t".join(sorted(target)))
                for row in sorted(rows):
                    print("\t".join(str(value) for value in row))
            elif command == "state":
                print(
                    json.dumps(state_to_dict(session.state()), sort_keys=True)
                )
            elif command == "metrics":
                print(
                    json.dumps(
                        server.metrics_snapshot(), indent=2, sort_keys=True
                    )
                )
            elif command == "stats":
                print(json.dumps(server.stats(), indent=2, sort_keys=True))
            elif command == "prometheus":
                print(server.prometheus(), end="")
            elif command == "snapshot":
                server.snapshot()
                print("snapshot written")
            else:
                print(f"error: unknown command {command!r} (try `help`)")
        except (ReproError, argparse.ArgumentTypeError) as error:
            print(f"error: {error}")
    return 0


def _install_shutdown_handlers() -> dict:
    """Route SIGTERM/SIGINT into :class:`KeyboardInterrupt` so ``serve``
    tears down stores (and shard worker processes) cleanly under a
    supervisor, not just on a keyboard ^C.  Returns the previous
    handlers — restore them in a ``finally``, because the tests drive
    ``_cmd_serve`` in-process and must not leak handlers.  A no-op off
    the main thread, where handlers cannot be installed."""
    import signal as signal_mod

    def _handle(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous: dict = {}
    for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
        try:
            previous[signum] = signal_mod.signal(signum, _handle)
        except ValueError:  # not the main thread
            pass
    return previous


def _restore_shutdown_handlers(previous: dict) -> None:
    import signal as signal_mod

    for signum, handler in previous.items():
        signal_mod.signal(signum, handler)


def _serve_lines(
    server: object, args: argparse.Namespace, read_replicas=None
) -> int:
    """Run the line protocol with supervised-shutdown semantics."""
    previous = _install_shutdown_handlers()
    try:
        if args.script:
            with open(args.script) as handle:
                return _serve_loop(
                    server, handle, echo=True, read_replicas=read_replicas
                )
        return _serve_loop(server, sys.stdin, read_replicas=read_replicas)
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0
    finally:
        _restore_shutdown_handlers(previous)


def _serve_frontend_blocking(router: object, args: argparse.Namespace) -> int:
    """Run the asyncio front door until SIGTERM/SIGINT."""
    import asyncio
    import signal as signal_mod

    from repro.shard.frontend import serve_frontend

    async def _run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # platform or non-main-thread limitation
        await serve_frontend(
            router,
            host=args.host,
            port=args.port,
            stop=stop,
            announce=True,
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    print("shutting down")
    return 0


def _cmd_serve_sharded(
    args: argparse.Namespace, tracer: Optional[Tracer]
) -> int:
    from pathlib import Path

    from repro.shard.router import SHARD_FILE, ShardRouter

    shards = args.shards if args.shards is not None else 1
    if args.store:
        directory = Path(args.store)
        if (directory / SHARD_FILE).exists():
            router = ShardRouter.open(
                directory,
                args.shards,
                fsync_every=args.fsync_every,
                compiled=_compiled(args),
                tracer=tracer,
            )
            print(
                f"serving sharded store {directory} "
                f"({router.shards} shard(s))"
            )
        else:
            if not args.scheme:
                print(
                    "error: creating a sharded store needs a scheme file",
                    file=sys.stderr,
                )
                return 1
            router = ShardRouter.create(
                directory,
                load_scheme(args.scheme),
                shards,
                fsync_every=args.fsync_every,
                compiled=_compiled(args),
                tracer=tracer,
            )
            print(
                f"created sharded store {directory} "
                f"({router.shards} shard(s))"
            )
    else:
        if not args.scheme:
            print(
                "error: serve needs a scheme file or --store DIR",
                file=sys.stderr,
            )
            return 1
        router = ShardRouter.in_memory(
            load_scheme(args.scheme),
            shards,
            tracer=tracer,
            compiled=_compiled(args),
        )
        print(
            f"serving in-memory, {router.shards} shard(s) "
            "(no --store: nothing will be persisted)"
        )
    try:
        if args.port is not None:
            return _serve_frontend_blocking(router, args)
        return _serve_lines(router, args)
    finally:
        router.close()
        if tracer is not None:
            tracer.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.server import SchemeServer

    tracer = _tracer_from_args(args)
    # --shards / --port, or a directory already laid out as a sharded
    # store, select the sharded serving tier.
    if (
        getattr(args, "shards", None) is not None
        or getattr(args, "port", None) is not None
        or (args.store and (Path(args.store) / "shard.json").exists())
    ):
        if getattr(args, "replicas", None):
            print(
                "error: --replicas follows the durable (non-sharded) "
                "serving path; drop --shards/--port to use it",
                file=sys.stderr,
            )
            return 1
        return _cmd_serve_sharded(args, tracer)
    replicas = getattr(args, "replicas", None)
    if replicas is not None and not args.store:
        print(
            "error: --replicas needs --store DIR (followers replay the "
            "store's WAL segments)",
            file=sys.stderr,
        )
        return 1
    store = None
    if args.store:
        store = _open_or_create_store(args)
        server = SchemeServer(store=store, tracer=tracer)
        print(
            f"serving {store.directory} "
            f"(seq {store.last_seq}, recovery: replayed "
            f"{store.recovery.replayed}, "
            f"{store.recovery.discarded_bytes} byte(s) repaired)"
        )
    else:
        if not args.scheme:
            print(
                "error: serve needs a scheme file or --store DIR",
                file=sys.stderr,
            )
            return 1
        server = SchemeServer(
            scheme=load_scheme(args.scheme),
            tracer=tracer,
            workers=getattr(args, "workers", 1),
            compiled=_compiled(args),
        )
        print("serving in-memory (no --store: nothing will be persisted)")
    replica_set = None
    try:
        if replicas:
            from repro.service.replica import ReplicaSet

            replica_set = ReplicaSet(
                store, replicas, compiled=_compiled(args)
            )
            print(
                f"shipping WAL segments to {replicas} follower "
                f"process(es) under {store.directory / 'replicas'}, "
                "offloading reads to caught-up followers"
            )
        return _serve_lines(server, args, read_replicas=replica_set)
    finally:
        if replica_set is not None:
            replica_set.close()
        server.close()
        if tracer is not None:
            tracer.close()


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.service.store import DurableStore

    store = DurableStore.open(args.store)
    try:
        report = store.recovery
        if args.json:
            payload = report.to_dict()
            payload["last_seq"] = store.last_seq
            payload["tuples"] = store.state.total_tuples()
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.describe())
            print(
                f"store is at seq {store.last_seq} with "
                f"{store.state.total_tuples()} stored tuple(s)"
            )
        if args.out:
            dump_state(store.state, args.out)
            print(f"recovered state written to {args.out}")
        return 0
    finally:
        store.close()


def _cmd_recover(args: argparse.Namespace) -> int:
    """Point-in-time recovery: open the store as of a sequence number
    and report (or export) exactly the state the first N records built."""
    from repro.service.store import DurableStore

    store = DurableStore.open(args.store, as_of_seq=args.as_of)
    try:
        report = store.recovery
        if args.json:
            payload = report.to_dict()
            payload["last_seq"] = store.last_seq
            payload["tuples"] = store.state.total_tuples()
            payload["read_only"] = store.read_only
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.describe())
            print(
                f"state as of seq {store.last_seq}: "
                f"{store.state.total_tuples()} stored tuple(s) "
                "(read-only — the live log continues past this point)"
            )
        if args.out:
            dump_state(store.state, args.out)
            print(f"point-in-time state written to {args.out}")
        return 0
    finally:
        store.close()


def _render_span_table(summaries: dict) -> str:
    """Fixed-width ``span  count  p50  p95  p99  max`` lines (times in
    milliseconds), sorted by span name."""
    if not summaries:
        return "(no spans recorded)"
    header = f"{'span':<20} {'count':>7} {'p50ms':>10} {'p95ms':>10} {'p99ms':>10} {'maxms':>10}"
    lines = [header]
    for name in sorted(summaries):
        summary = summaries[name]
        lines.append(
            f"{name:<20} {int(summary['count']):>7} "
            f"{summary['p50'] * 1000:>10.3f} "
            f"{summary['p95'] * 1000:>10.3f} "
            f"{summary['p99'] * 1000:>10.3f} "
            f"{summary['max'] * 1000:>10.3f}"
        )
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> int:
    """Trace a real workload and report the per-stage histograms."""
    slow_tracer = _tracer_from_args(args)
    tracer = slow_tracer if slow_tracer is not None else Tracer()
    metrics: dict = {}
    try:
        with tracing(tracer):
            if args.store:
                from pathlib import Path

                if (Path(args.store) / "shard.json").exists():
                    # Sharded store: aggregate over the per-shard
                    # registries (worker series carry a shard label).
                    from repro.shard.router import ShardRouter

                    router = ShardRouter.open(
                        args.store,
                        compiled=_compiled(args),
                        tracer=tracer,
                    )
                    try:
                        if args.target:
                            for _ in range(args.repeat):
                                router.query(args.target)
                        if args.prometheus:
                            print(router.prometheus(), end="")
                            return 0
                        metrics = router.metrics_snapshot()
                    finally:
                        router.close()
                else:
                    store = _open_or_create_store(args)
                    try:
                        if args.target:
                            for _ in range(args.repeat):
                                store.query(args.target)
                        metrics = store.metrics_snapshot()
                    finally:
                        store.close()
            else:
                if not args.scheme or not args.state:
                    print(
                        "error: stats needs SCHEME.json and STATE.json, "
                        "or --store DIR",
                        file=sys.stderr,
                    )
                    return 1
                scheme = load_scheme(args.scheme)
                state = load_state(scheme, args.state)
                engine = WeakInstanceEngine(
                    scheme, compiled=_compiled(args)
                )
                if args.target:
                    for _ in range(args.repeat):
                        engine.query(state, args.target)
                else:
                    engine.representative(state)
                for cache_name, info in engine.cache_info().items():
                    metrics[f"cache.{cache_name}.hits"] = info.hits
                    metrics[f"cache.{cache_name}.misses"] = info.misses
                if "read" in engine.cache_info():
                    info = engine.cache_info()["read"]
                    probes = info.hits + info.misses
                    metrics["cache.read.hit_rate"] = (
                        info.hits / probes if probes else 0.0
                    )
        if args.prometheus:
            counters = dict(metrics)
            counters.update(tracer.counter_snapshot())
            # A rate is a level, not a monotone count: gauge it.
            gauges = {
                name: counters.pop(name)
                for name in list(counters)
                if name.endswith(".hit_rate")
            }
            print(
                prometheus_text(
                    counters=counters,
                    gauges=gauges,
                    histograms=tracer.histograms(),
                ),
                end="",
            )
        elif args.json:
            report = {
                "spans": tracer.span_summaries(),
                "counters": tracer.counter_snapshot(),
                "metrics": metrics,
            }
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(_render_span_table(tracer.span_summaries()))
            counters = dict(metrics)
            counters.update(tracer.counter_snapshot())
            if counters:
                print()
                for name in sorted(counters):
                    print(f"{name} = {counters[name]:g}")
        return 0
    finally:
        tracer.close()


def _cmd_keys(args: argparse.Namespace) -> int:
    from repro.fd.armstrong import explain_key

    scheme = load_scheme(args.scheme)
    for member in scheme.relations:
        rendered = ", ".join(fmt_attrs(key) for key in member.keys)
        print(f"{member.name}({fmt_attrs(member.attributes)}): keys {rendered}")
        if args.explain:
            for key in member.keys:
                if key == member.attributes:
                    print("   (all-key: nothing to derive)")
                    continue
                derivation = explain_key(member.attributes, key, scheme.fds)
                for line in derivation.render().splitlines():
                    print("   " + line)
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.reducible import recognize_independence_reducible

    scheme = load_scheme(args.scheme)
    result = recognize_independence_reducible(scheme)
    print(result.describe())
    return 0 if result.accepted else 2


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.schema.decompose import decompose_bcnf

    fds = FDSet(args.fds)
    if args.bcnf:
        universe = args.universe if args.universe else fds.attributes
        scheme = decompose_bcnf(universe, fds)
    else:
        scheme = synthesize_3nf(
            fds, universe=args.universe if args.universe else None
        )
    if args.out:
        dump_scheme(scheme, args.out)
        print(f"scheme written to {args.out}")
    else:
        print(json.dumps(scheme_to_dict(scheme), indent=2, sort_keys=True))
    print(f"# embedded key dependencies: {scheme.fds}", file=sys.stderr)
    return 0


#: Directories `repro lint` sweeps by default (tests stay out: fixture
#: files seed deliberate violations).
LINT_DEFAULT_DIRS = ("src", "scripts", "benchmarks", "examples")

#: The configured project rules are src-specific: their maps name
#: ``src/``-relative entry points, so firing them on ``scripts/`` or
#: ``benchmarks/`` would only ever produce noise.
LINT_RULE_PATHS = {
    "span-hygiene": ("src/",),
    "cache-invalidation": ("src/",),
}


def _changed_python_files(root):
    """Root-relative ``.py`` files touched since HEAD (tracked diffs
    plus untracked files), for ``repro lint --changed``.  Confined to
    the default lint directories so a changed-scoped run agrees with
    the full sweep on every file it visits (``tests/`` fixtures seed
    deliberate violations and must stay out of both)."""
    import subprocess

    names: set = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        result = subprocess.run(
            command, cwd=root, capture_output=True, text=True, check=True
        )
        names.update(line.strip() for line in result.stdout.splitlines())
    paths = []
    for name in sorted(names):
        if not name.split("/", 1)[0] in LINT_DEFAULT_DIRS:
            continue
        path = root / name
        if path.suffix == ".py" and path.is_file():
            paths.append(path)
    return paths


def _restrict_to_displays(config, displays):
    """Drop config entries whose file is outside the scanned set, so a
    ``--changed`` run doesn't report every unscanned entry point as
    vanished.  Works for both SpanConfig and InvalidationConfig."""
    import dataclasses

    def keep(key: str) -> bool:
        # Config keys carry module suffixes ("core/engine.py"), not
        # full root-relative paths.
        suffix = key.split("::", 1)[0]
        return any(display.endswith(suffix) for display in displays)

    changes = {
        "required": {k: v for k, v in config.required.items() if keep(k)},
        "exempt": {k: v for k, v in config.exempt.items() if keep(k)},
    }
    if hasattr(config, "surface"):
        changes["surface"] = tuple(s for s in config.surface if keep(s))
        changes["catalogue"] = None  # partial scans can't prove span orphans
    return dataclasses.replace(config, **changes)


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import baseline as baseline_mod
    from repro.analysis import (
        ALL_RULES,
        default_config,
        default_invalidation_config,
        lint_paths,
        render_json,
        render_text,
    )

    root = Path(args.root)
    rules = (
        tuple(rule.strip() for rule in args.rules.split(",") if rule.strip())
        if args.rules
        else ALL_RULES
    )
    span_config = default_config(root)
    invalidation_config = default_invalidation_config()

    if args.changed:
        if args.paths:
            print(
                "error: --changed and explicit paths are mutually "
                "exclusive",
                file=sys.stderr,
            )
            return 1
        try:
            paths = _changed_python_files(root)
        except Exception as error:  # git missing or not a checkout
            print(f"error: --changed needs git ({error})", file=sys.stderr)
            return 1
        if not paths:
            print("no changed python files to lint")
            return 0
        displays = set()
        for path in paths:
            try:
                displays.add(
                    path.resolve().relative_to(root.resolve()).as_posix()
                )
            except ValueError:
                displays.add(path.as_posix())
        span_config = _restrict_to_displays(span_config, displays)
        invalidation_config = _restrict_to_displays(
            invalidation_config, displays
        )
    elif args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [
            root / name
            for name in LINT_DEFAULT_DIRS
            if (root / name).is_dir()
        ]

    try:
        findings = lint_paths(
            paths,
            root=root,
            rules=rules,
            span_config=span_config,
            invalidation_config=invalidation_config,
            rule_paths=LINT_RULE_PATHS,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.write_baseline:
        baseline_path = Path(args.baseline or root / "lint-baseline.json")
        baseline_mod.save(baseline_path, findings)
        print(
            f"baseline written to {baseline_path} "
            f"({len(findings)} finding(s) recorded)"
        )
        return 0

    suppressed = 0
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            allowed = baseline_mod.load(baseline_path)
            findings, suppressed = baseline_mod.apply(findings, allowed)
        else:
            print(
                f"warning: baseline {baseline_path} not found; "
                "reporting all findings",
                file=sys.stderr,
            )

    if args.json:
        print(render_json(findings, suppressed=suppressed))
    else:
        print(render_text(findings))
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
    return 1 if findings else 0


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    """Bench the sharded tier and merge into ``BENCH_perf.json``."""
    from pathlib import Path

    from repro import bench as bench_mod

    counts = tuple(
        int(part) for part in str(args.shards).split(",") if part.strip()
    )
    if not counts:
        print("error: --shards needs at least one count", file=sys.stderr)
        return 1
    scenarios = bench_mod.run_shard_scenarios(
        shard_counts=counts,
        rounds=args.rounds,
        fsync_every=args.fsync_every,
        seed_rows=args.seed_rows,
        repeats=args.repeats,
    )
    path = (
        Path(args.out)
        if args.out
        else bench_mod._repo_root() / bench_mod.BENCH_PATH_NAME
    )
    bench_mod.write_report(scenarios, path)
    bench_mod._print_scenarios(scenarios)
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Independence-reducible database schemes "
            "(Chan & Hernández, PODS 1988)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="classify a scheme")
    analyze.add_argument("scheme", help="scheme JSON file")
    analyze.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    analyze.set_defaults(func=_cmd_analyze)

    explain = commands.add_parser(
        "explain", help="show the predetermined plan for a total projection"
    )
    explain.add_argument("scheme", help="scheme JSON file")
    explain.add_argument("--target", required=True, help="attributes, e.g. ACG")
    explain.set_defaults(func=_cmd_explain)

    check = commands.add_parser("check", help="check a state's consistency")
    check.add_argument("scheme", help="scheme JSON file")
    check.add_argument("state", help="state JSON file")
    check.set_defaults(func=_cmd_check)

    query = commands.add_parser("query", help="evaluate a total projection")
    query.add_argument("scheme", help="scheme JSON file")
    query.add_argument("state", help="state JSON file")
    query.add_argument("--target", required=True, help="attributes, e.g. ACG")
    query.add_argument(
        "--no-compile",
        action="store_true",
        dest="no_compile",
        help="disable the compiled columnar kernels (interpreted "
        "expression evaluation only)",
    )
    _add_trace_flags(query)
    query.set_defaults(func=_cmd_query)

    insert = commands.add_parser("insert", help="validate one insertion")
    insert.add_argument(
        "scheme", nargs="?", help="scheme JSON file (omit with --store)"
    )
    insert.add_argument(
        "state", nargs="?", help="state JSON file (omit with --store)"
    )
    insert.add_argument("--relation", required=True)
    insert.add_argument(
        "--values", required=True, type=_parse_values, help="A=a,B=b,..."
    )
    insert.add_argument("--out", help="write the updated state here")
    insert.add_argument(
        "--store",
        help="persist through a durable store directory instead of "
        "STATE.json (created from SCHEME.json when missing)",
    )
    insert.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker pool size for block-parallel batches "
        "(default 1 = serial)",
    )
    insert.add_argument(
        "--no-compile",
        action="store_true",
        dest="no_compile",
        help="disable the compiled columnar kernels (interpreted "
        "expression evaluation only)",
    )
    _add_trace_flags(insert)
    insert.set_defaults(func=_cmd_insert)

    serve = commands.add_parser(
        "serve", help="run the session server over a line protocol"
    )
    serve.add_argument(
        "scheme",
        nargs="?",
        help="scheme JSON file (required unless --store names an "
        "existing store)",
    )
    serve.add_argument("--store", help="durable store directory")
    serve.add_argument(
        "--script",
        help="read protocol commands from this file instead of stdin",
    )
    serve.add_argument(
        "--fsync-every",
        type=int,
        default=1,
        dest="fsync_every",
        help="batch WAL fsyncs (default 1 = strict durability)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker pool size for block-parallel batches "
        "(default 1 = serial)",
    )
    serve.add_argument(
        "--no-compile",
        action="store_true",
        dest="no_compile",
        help="disable the compiled columnar kernels (interpreted "
        "expression evaluation only)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through the sharded tier with this many worker "
        "processes (clamped to the scheme's block count; omit to "
        "reuse a sharded store's stored count)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="ship WAL segments to this many follower processes "
        "(durable non-sharded serving only; needs --store)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve the asyncio frame protocol on this TCP port "
        "(0 picks a free one) instead of the stdin line protocol",
    )
    _add_trace_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    shard_bench = commands.add_parser(
        "shard-bench",
        help="bench the sharded serving tier at several shard counts",
    )
    shard_bench.add_argument(
        "--shards",
        default="1,4,8",
        help="comma-separated shard counts to bench (default 1,4,8)",
    )
    shard_bench.add_argument(
        "--rounds",
        type=int,
        default=4,
        help="mixed-workload rounds per shard count (default 4)",
    )
    shard_bench.add_argument(
        "--seed-rows",
        type=int,
        default=240,
        dest="seed_rows",
        help="untimed rows seeded per tile before timing (default 240)",
    )
    shard_bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed cycles per shard count; best is reported (default 3)",
    )
    shard_bench.add_argument(
        "--fsync-every",
        type=int,
        default=32,
        dest="fsync_every",
        help="WAL fsync batching during the bench (default 32)",
    )
    shard_bench.add_argument(
        "--out",
        help="report path (default: BENCH_perf.json at the repo root)",
    )
    shard_bench.set_defaults(func=_cmd_shard_bench)

    stats = commands.add_parser(
        "stats",
        help="trace a workload and report per-stage latency histograms",
    )
    stats.add_argument(
        "scheme", nargs="?", help="scheme JSON file (omit with --store)"
    )
    stats.add_argument(
        "state", nargs="?", help="state JSON file (omit with --store)"
    )
    stats.add_argument(
        "--store", help="trace recovery + queries of this store directory"
    )
    stats.add_argument(
        "--target",
        help="attributes to query, e.g. ACG (default: chase only)",
    )
    stats.add_argument(
        "--repeat",
        type=int,
        default=5,
        help="how many traced queries to run (default 5)",
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="Prometheus text exposition instead of the table",
    )
    stats.add_argument(
        "--no-compile",
        action="store_true",
        dest="no_compile",
        help="disable the compiled columnar kernels (interpreted "
        "expression evaluation only)",
    )
    _add_trace_flags(stats)
    stats.set_defaults(func=_cmd_stats)

    replay = commands.add_parser(
        "replay", help="recover a durable store and report what happened"
    )
    replay.add_argument("--store", required=True, help="store directory")
    replay.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    replay.add_argument("--out", help="write the recovered state here")
    replay.set_defaults(func=_cmd_replay)

    recover = commands.add_parser(
        "recover",
        help="point-in-time recovery: rebuild the state as of a "
        "sequence number",
    )
    recover.add_argument("--store", required=True, help="store directory")
    recover.add_argument(
        "--as-of",
        type=int,
        required=True,
        dest="as_of",
        help="stop the replay after this sequence number",
    )
    recover.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    recover.add_argument(
        "--out", help="write the point-in-time state here"
    )
    recover.set_defaults(func=_cmd_recover)

    keys = commands.add_parser(
        "keys", help="list (and optionally derive) every declared key"
    )
    keys.add_argument("scheme", help="scheme JSON file")
    keys.add_argument(
        "--explain",
        action="store_true",
        help="print an Armstrong derivation for each key",
    )
    keys.set_defaults(func=_cmd_keys)

    partition = commands.add_parser(
        "partition",
        help="show the key-equivalent partition and the Algorithm 6 verdict",
    )
    partition.add_argument("scheme", help="scheme JSON file")
    partition.set_defaults(func=_cmd_partition)

    synthesize = commands.add_parser(
        "synthesize", help="3NF-synthesize a scheme from fds"
    )
    synthesize.add_argument(
        "--fds", required=True, help='arrow notation, e.g. "A->B, B->C"'
    )
    synthesize.add_argument("--universe", default=None)
    synthesize.add_argument(
        "--bcnf",
        action="store_true",
        help="lossless BCNF decomposition instead of 3NF synthesis "
        "(may lose dependency preservation)",
    )
    synthesize.add_argument("--out", help="write the scheme here")
    synthesize.set_defaults(func=_cmd_synthesize)

    from repro.analysis import RULE_CODES

    lint = commands.add_parser(
        "lint",
        help="run the invariant linter (lock/async/fork discipline, "
        "determinism, resource safety, span hygiene, lock order, "
        "cache invalidation)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src/, "
        "scripts/, benchmarks/ and examples/ trees under <root>)",
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only python files touched since HEAD (git diff plus "
        "untracked); project-rule maps are narrowed to the scanned "
        "files so partial runs stay noise-free",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repo root: findings are reported relative to it and the "
        "span catalogue is read from <root>/docs/ARCHITECTURE.md",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--baseline",
        help="suppress findings recorded in this baseline file; only "
        "new findings fail the run",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file "
        "(--baseline, default <root>/lint-baseline.json) and exit 0",
    )
    lint.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all). "
        + " ".join(
            f"{rule}: {summary}." for rule, summary in RULE_CODES.items()
        ),
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
