"""Command-line interface.

Subcommands::

    python -m repro analyze SCHEME.json
        Classify a scheme (BCNF, acyclicity, independence,
        key-equivalent partition, reducibility, ctm).

    python -m repro explain SCHEME.json --target ACG
        Print the predetermined total-projection plan for [X].

    python -m repro check SCHEME.json STATE.json
        Report local and global consistency of a state.

    python -m repro query SCHEME.json STATE.json --target ACG
        Evaluate the X-total projection.

    python -m repro insert SCHEME.json STATE.json \
            --relation R1 --values H=9am,R=DC128,C=CS445 [--out NEW.json]
        Validate one insertion; write the updated state when accepted.

    python -m repro synthesize --fds "A->B, B->C" [--universe ABCD] \
            [--out SCHEME.json]
        Synthesize a cover-embedding 3NF scheme from fds.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.report import analyze_scheme
from repro.core.engine import WeakInstanceEngine
from repro.fd.fdset import FDSet
from repro.foundations.attrs import attrs, fmt_attrs
from repro.foundations.errors import ReproError
from repro.io import (
    dump_scheme,
    dump_state,
    load_scheme,
    load_state,
    scheme_to_dict,
    state_to_dict,
)
from repro.schema.synthesis import synthesize_3nf
from repro.state.consistency import is_consistent, is_locally_consistent


def _parse_values(text: str) -> dict[str, str]:
    """Parse ``A=a,B=b`` tuple notation."""
    values: dict[str, str] = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "=" not in piece:
            raise argparse.ArgumentTypeError(
                f"expected ATTR=value, got {piece!r}"
            )
        attribute, _, value = piece.partition("=")
        values[attribute.strip()] = value.strip()
    if not values:
        raise argparse.ArgumentTypeError("no values given")
    return values


def _cmd_analyze(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    report = analyze_scheme(scheme)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    engine = WeakInstanceEngine(scheme)
    try:
        print(engine.explain(args.target))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    state = load_state(scheme, args.state)
    local = is_locally_consistent(state)
    globally = is_consistent(state)
    print(f"locally consistent:  {local}")
    print(f"globally consistent: {globally}")
    if local and not globally:
        print(
            "note: the state is in LSAT − WSAT; this scheme does not "
            "enforce global consistency locally"
        )
    return 0 if globally else 2


def _cmd_query(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    state = load_state(scheme, args.state)
    engine = WeakInstanceEngine(scheme)
    target = attrs(args.target)
    rows = engine.query(state, target)
    ordered = sorted(target)
    print("\t".join(ordered))
    for row in sorted(rows):
        print("\t".join(str(value) for value in row))
    return 0


def _cmd_insert(args: argparse.Namespace) -> int:
    scheme = load_scheme(args.scheme)
    state = load_state(scheme, args.state)
    engine = WeakInstanceEngine(scheme)
    outcome = engine.insert(state, args.relation, args.values)
    if not outcome.consistent:
        print(
            f"REJECTED: inserting into {args.relation} would make the "
            f"state inconsistent (examined {outcome.tuples_examined} "
            "stored tuples)"
        )
        return 2
    print(
        f"accepted (examined {outcome.tuples_examined} stored tuples)"
    )
    if args.out:
        dump_state(outcome.state, args.out)
        print(f"updated state written to {args.out}")
    else:
        print(json.dumps(state_to_dict(outcome.state), sort_keys=True))
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    from repro.fd.armstrong import explain_key

    scheme = load_scheme(args.scheme)
    for member in scheme.relations:
        rendered = ", ".join(fmt_attrs(key) for key in member.keys)
        print(f"{member.name}({fmt_attrs(member.attributes)}): keys {rendered}")
        if args.explain:
            for key in member.keys:
                if key == member.attributes:
                    print("   (all-key: nothing to derive)")
                    continue
                derivation = explain_key(member.attributes, key, scheme.fds)
                for line in derivation.render().splitlines():
                    print("   " + line)
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.reducible import recognize_independence_reducible

    scheme = load_scheme(args.scheme)
    result = recognize_independence_reducible(scheme)
    print(result.describe())
    return 0 if result.accepted else 2


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.schema.decompose import decompose_bcnf

    fds = FDSet(args.fds)
    if args.bcnf:
        universe = args.universe if args.universe else fds.attributes
        scheme = decompose_bcnf(universe, fds)
    else:
        scheme = synthesize_3nf(
            fds, universe=args.universe if args.universe else None
        )
    if args.out:
        dump_scheme(scheme, args.out)
        print(f"scheme written to {args.out}")
    else:
        print(json.dumps(scheme_to_dict(scheme), indent=2, sort_keys=True))
    print(f"# embedded key dependencies: {scheme.fds}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Independence-reducible database schemes "
            "(Chan & Hernández, PODS 1988)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="classify a scheme")
    analyze.add_argument("scheme", help="scheme JSON file")
    analyze.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    analyze.set_defaults(func=_cmd_analyze)

    explain = commands.add_parser(
        "explain", help="show the predetermined plan for a total projection"
    )
    explain.add_argument("scheme", help="scheme JSON file")
    explain.add_argument("--target", required=True, help="attributes, e.g. ACG")
    explain.set_defaults(func=_cmd_explain)

    check = commands.add_parser("check", help="check a state's consistency")
    check.add_argument("scheme", help="scheme JSON file")
    check.add_argument("state", help="state JSON file")
    check.set_defaults(func=_cmd_check)

    query = commands.add_parser("query", help="evaluate a total projection")
    query.add_argument("scheme", help="scheme JSON file")
    query.add_argument("state", help="state JSON file")
    query.add_argument("--target", required=True, help="attributes, e.g. ACG")
    query.set_defaults(func=_cmd_query)

    insert = commands.add_parser("insert", help="validate one insertion")
    insert.add_argument("scheme", help="scheme JSON file")
    insert.add_argument("state", help="state JSON file")
    insert.add_argument("--relation", required=True)
    insert.add_argument(
        "--values", required=True, type=_parse_values, help="A=a,B=b,..."
    )
    insert.add_argument("--out", help="write the updated state here")
    insert.set_defaults(func=_cmd_insert)

    keys = commands.add_parser(
        "keys", help="list (and optionally derive) every declared key"
    )
    keys.add_argument("scheme", help="scheme JSON file")
    keys.add_argument(
        "--explain",
        action="store_true",
        help="print an Armstrong derivation for each key",
    )
    keys.set_defaults(func=_cmd_keys)

    partition = commands.add_parser(
        "partition",
        help="show the key-equivalent partition and the Algorithm 6 verdict",
    )
    partition.add_argument("scheme", help="scheme JSON file")
    partition.set_defaults(func=_cmd_partition)

    synthesize = commands.add_parser(
        "synthesize", help="3NF-synthesize a scheme from fds"
    )
    synthesize.add_argument(
        "--fds", required=True, help='arrow notation, e.g. "A->B, B->C"'
    )
    synthesize.add_argument("--universe", default=None)
    synthesize.add_argument(
        "--bcnf",
        action="store_true",
        help="lossless BCNF decomposition instead of 3NF synthesis "
        "(may lose dependency preservation)",
    )
    synthesize.add_argument("--out", help="write the scheme here")
    synthesize.set_defaults(func=_cmd_synthesize)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
