"""The durable serving layer: WAL, snapshots, recovery, sessions.

The paper guarantees that bounded / ctm schemes answer queries by
predetermined expressions and validate insertions in constant time —
properties a long-lived serving process exploits directly.  This
package turns :class:`~repro.core.engine.WeakInstanceEngine` into a
restartable server:

* :mod:`repro.service.wal` — segmented append-only JSONL write-ahead
  log with CRC-32 checksums, batched fsync, sealed-segment rolling and
  torn-tail repair;
* :mod:`repro.service.store` — :class:`DurableStore`: scheme + WAL +
  atomic snapshots, crash recovery by replaying validated updates,
  segment compaction, point-in-time recovery (``as_of_seq``);
* :mod:`repro.service.server` — :class:`SchemeServer`: named sessions,
  single-writer lock, lock-free snapshot reads;
* :mod:`repro.service.replica` — :class:`WalShipper` streaming sealed
  segments (plus the tailed active one) to :class:`FollowerStore`
  processes that replay incrementally and can be promoted on failover;
* :mod:`repro.service.metrics` — thread-safe operation counters.
"""

from repro.service.metrics import MetricsRegistry
from repro.service.replica import FollowerStore, ReplicaSet, WalShipper
from repro.service.server import SchemeServer, Session
from repro.service.store import DurableStore, RecoveryReport
from repro.service.wal import (
    WalRecord,
    WalScan,
    WriteAheadLog,
    iter_wal,
    record_crc,
    replayable,
    scan_wal,
    segment_paths,
)

__all__ = [
    "DurableStore",
    "FollowerStore",
    "MetricsRegistry",
    "RecoveryReport",
    "ReplicaSet",
    "SchemeServer",
    "Session",
    "WalRecord",
    "WalScan",
    "WalShipper",
    "WriteAheadLog",
    "iter_wal",
    "record_crc",
    "replayable",
    "scan_wal",
    "segment_paths",
]
