"""The durable serving layer: WAL, snapshots, recovery, sessions.

The paper guarantees that bounded / ctm schemes answer queries by
predetermined expressions and validate insertions in constant time —
properties a long-lived serving process exploits directly.  This
package turns :class:`~repro.core.engine.WeakInstanceEngine` into a
restartable server:

* :mod:`repro.service.wal` — append-only JSONL write-ahead log with
  CRC-32 checksums, batched fsync and torn-tail repair;
* :mod:`repro.service.store` — :class:`DurableStore`: scheme + WAL +
  atomic snapshots, crash recovery by replaying validated updates,
  automatic compaction;
* :mod:`repro.service.server` — :class:`SchemeServer`: named sessions,
  single-writer lock, lock-free snapshot reads;
* :mod:`repro.service.metrics` — thread-safe operation counters.
"""

from repro.service.metrics import MetricsRegistry
from repro.service.server import SchemeServer, Session
from repro.service.store import DurableStore, RecoveryReport
from repro.service.wal import (
    WalRecord,
    WalScan,
    WriteAheadLog,
    record_crc,
    replayable,
    scan_wal,
)

__all__ = [
    "DurableStore",
    "MetricsRegistry",
    "RecoveryReport",
    "SchemeServer",
    "Session",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "record_crc",
    "replayable",
    "scan_wal",
]
