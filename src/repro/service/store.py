"""A crash-recoverable store binding a scheme, a WAL and snapshots.

A :class:`DurableStore` lives in one directory::

    store/
      scheme.json     the DatabaseScheme (written once at create time)
      snapshot.json   {"seq": N, "state": {...}} — the state after the
                      first N accepted updates (atomic replace)
      wal/            segmented log of accepted updates N+1, N+2, ...
        wal.000007.jsonl   sealed (immutable) segments, plus durable
        wal.000008.jsonl   ``reject`` diagnostics; the highest index
                           is the active segment (see repro.service.wal)

Every mutation is validated by the scheme's
:class:`~repro.core.engine.WeakInstanceEngine` *before* it is logged:
the WAL only ever contains updates the weak-instance model accepted, so
replay re-applies them without re-deriving the decision from scratch —
each replayed insert re-validates (the engine is the authority) and, by
determinism, re-accepts.  Rejected insertions are logged too, as
``reject`` records carrying the full
:meth:`~repro.state.consistency.MaintenanceOutcome.to_dict` diagnosis,
so repair tooling can later inspect *why* a tuple was refused; replay
skips them and they can never resurrect the refused tuple.

Recovery = load ``snapshot.json`` (consistency-checked through the
engine's memoized chase), stream-replay the WAL's intact prefix, repair
any torn tail.  Compaction = write a new snapshot at the current
sequence, then delete the sealed segments it covers; it triggers
automatically once the log outgrows the snapshot by ``compact_factor``.
Passing ``as_of_seq=N`` to :meth:`DurableStore.open` stops replay after
record ``N`` — point-in-time recovery — and the store opens read-only.

A store is single-writer by construction — it performs no internal
locking.  :class:`repro.service.server.SchemeServer` provides the
thread-safe front end; :mod:`repro.service.replica` ships sealed
segments to read-only followers.

Stores created before segmentation kept a single ``wal.jsonl`` file;
:meth:`DurableStore.open` migrates it into ``wal/`` as the first
segment, so old directories keep recovering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Mapping, Optional, Sequence, Union

from repro.core.engine import BatchOutcome, Update, WeakInstanceEngine
from repro.foundations.attrs import AttrsLike
from repro.foundations.errors import StoreError, WALError
from repro.io import (
    dump_json_atomic,
    dump_scheme,
    load_json,
    load_scheme,
    state_to_dict,
)
from repro.obs.spans import span
from repro.schema.database_scheme import DatabaseScheme
from repro.service.metrics import MetricsRegistry
from repro.service.wal import (
    DEFAULT_SEGMENT_BYTES,
    WalRecord,
    WriteAheadLog,
    segment_name,
)
from repro.state.consistency import MaintenanceOutcome
from repro.state.database_state import DatabaseState

PathLike = Union[str, Path]

SCHEME_FILE = "scheme.json"
SNAPSHOT_FILE = "snapshot.json"
#: Directory of WAL segments inside the store.
WAL_DIR = "wal"
#: Pre-segmentation single-file log name (migrated on open).
LEGACY_WAL_FILE = "wal.jsonl"

#: Never compact while the WAL is smaller than this many bytes — tiny
#: stores would otherwise snapshot on every write.
MIN_COMPACT_BYTES = 4096


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DurableStore.open` did to reach a servable state."""

    snapshot_seq: int
    replayed: int
    rejects_in_log: int
    discarded_bytes: int
    stale_log: bool
    seconds: float
    #: Whole pre-snapshot segments deleted during recovery.
    stale_segments: int = 0
    #: Point-in-time bound the replay stopped at (``None`` = full).
    as_of_seq: Optional[int] = None

    def to_dict(self) -> dict[str, object]:
        report: dict[str, object] = {
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "rejects_in_log": self.rejects_in_log,
            "discarded_bytes": self.discarded_bytes,
            "stale_log": self.stale_log,
            "stale_segments": self.stale_segments,
            "seconds": round(self.seconds, 6),
        }
        if self.as_of_seq is not None:
            report["as_of_seq"] = self.as_of_seq
        return report

    def describe(self) -> str:
        lines = [
            f"snapshot at seq {self.snapshot_seq}",
            f"replayed {self.replayed} update(s) from the WAL",
            f"{self.rejects_in_log} durable reject diagnostic(s) in the log",
        ]
        if self.as_of_seq is not None:
            lines.append(
                f"stopped at seq {self.as_of_seq} (point-in-time recovery; "
                "store is read-only)"
            )
        if self.discarded_bytes:
            lines.append(
                f"repaired a torn tail ({self.discarded_bytes} byte(s) "
                "discarded)"
            )
        if self.stale_log:
            lines.append(
                f"discarded {self.stale_segments} pre-snapshot (stale) "
                "WAL segment(s)"
            )
        lines.append(f"recovery took {self.seconds:.4f}s")
        return "\n".join(lines)


class DurableStore:
    """One engine-validated state made durable in a directory.

    Construct with :meth:`create` (new directory) or :meth:`open`
    (recover an existing one); both accept ``fsync_every`` to batch
    WAL fsyncs and ``compact_factor`` / ``auto_compact`` to tune the
    snapshot policy.
    """

    def __init__(
        self,
        directory: Path,
        scheme: DatabaseScheme,
        engine: WeakInstanceEngine,
        state: DatabaseState,
        wal: WriteAheadLog,
        recovery: RecoveryReport,
        compact_factor: float,
        auto_compact: bool,
        metrics: Optional[MetricsRegistry] = None,
        as_of_seq: Optional[int] = None,
    ) -> None:
        self.directory = directory
        self.scheme = scheme
        self.engine = engine
        self._state = state
        self._wal = wal
        self.recovery = recovery
        self.compact_factor = compact_factor
        self.auto_compact = auto_compact
        self._as_of_seq = as_of_seq
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.increment("store.recoveries")
        self.metrics.increment("store.replayed_records", recovery.replayed)
        self._snapshot_bytes = (directory / SNAPSHOT_FILE).stat().st_size

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: PathLike,
        scheme: DatabaseScheme,
        *,
        fsync_every: int = 1,
        compact_factor: float = 4.0,
        auto_compact: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        parallel_backend: str = "thread",
        compiled: bool = True,
        read_cache: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "DurableStore":
        """Initialise a fresh store directory (must not already hold
        one) and return it opened."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / SCHEME_FILE).exists():
            raise StoreError(f"{directory} already contains a store")
        dump_scheme(scheme, directory / SCHEME_FILE)
        dump_json_atomic(
            {"seq": 0, "state": state_to_dict(DatabaseState(scheme))},
            directory / SNAPSHOT_FILE,
        )
        return cls.open(
            directory,
            fsync_every=fsync_every,
            compact_factor=compact_factor,
            auto_compact=auto_compact,
            metrics=metrics,
            workers=workers,
            parallel_backend=parallel_backend,
            compiled=compiled,
            read_cache=read_cache,
            segment_bytes=segment_bytes,
        )

    @classmethod
    def open(
        cls,
        directory: PathLike,
        *,
        fsync_every: int = 1,
        compact_factor: float = 4.0,
        auto_compact: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        parallel_backend: str = "thread",
        compiled: bool = True,
        read_cache: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        as_of_seq: Optional[int] = None,
    ) -> "DurableStore":
        """Recover the store at ``directory``: snapshot + WAL replay.

        ``workers`` sizes the engine's block-task executor; the default
        of 1 keeps every code path single-threaded.  Replay itself is
        sequential either way, but each replayed insert extends the
        engine's delta-chase basis instead of re-chasing the whole
        state, so recovery cost follows the log's cascades, not
        (log length) x (state size).

        ``as_of_seq=N`` is point-in-time recovery: replay stops after
        the record with sequence ``N`` and the store opens *read-only*
        — the log still holds records past ``N``, and accepting new
        writes would fork it.  ``N`` must be at or past the snapshot
        sequence (earlier states were compacted away) and at or before
        the log's last record."""
        started = time.perf_counter()
        directory = Path(directory)
        with span("store.recovery") as sp:
            scheme_path = directory / SCHEME_FILE
            if not scheme_path.exists():
                raise StoreError(f"{directory} does not contain a store")
            scheme = load_scheme(scheme_path)
            engine = WeakInstanceEngine(
                scheme,
                workers=workers,
                parallel_backend=parallel_backend,
                compiled=compiled,
                read_cache=read_cache,
            )

            snapshot_path = directory / SNAPSHOT_FILE
            if snapshot_path.exists():
                snapshot = load_json(snapshot_path)
                if (
                    not isinstance(snapshot, dict)
                    or not isinstance(snapshot.get("seq"), int)
                    or not isinstance(snapshot.get("state"), dict)
                ):
                    raise StoreError(f"{snapshot_path} is malformed")
                snapshot_seq = snapshot["seq"]
                # engine.load chases (memoized) — a corrupt snapshot that
                # somehow passed JSON parsing still cannot serve queries.
                state = engine.load(snapshot["state"])
            else:
                snapshot_seq = 0
                state = engine.empty_state()
                dump_json_atomic(
                    {"seq": 0, "state": state_to_dict(state)}, snapshot_path
                )

            if as_of_seq is not None and as_of_seq < snapshot_seq:
                raise StoreError(
                    f"cannot recover as of seq {as_of_seq}: the snapshot "
                    f"already compacted everything up to {snapshot_seq}"
                )

            _migrate_legacy_wal(directory)
            try:
                wal = WriteAheadLog(
                    directory / WAL_DIR,
                    base_seq=snapshot_seq,
                    fsync_every=fsync_every,
                    flexible=True,
                    segment_bytes=segment_bytes,
                )
            except WALError as error:
                raise StoreError(
                    f"cannot recover {directory}: {error}"
                ) from error
            recovered = wal.recovered
            if (
                recovered.first_seq is not None
                and recovered.first_seq > snapshot_seq + 1
            ):
                raise StoreError(
                    f"WAL starts at seq {recovered.first_seq} but the "
                    f"snapshot ends at {snapshot_seq}: records are missing"
                )
            # Stream the replay: records come off disk one line at a
            # time, so recovery memory is bounded by one record no
            # matter how large the log grew.
            replayed = 0
            rejects = 0
            for record in wal.records(after_seq=snapshot_seq):
                if as_of_seq is not None and record.seq > as_of_seq:
                    break
                if record.op == "reject":
                    rejects += 1
                    continue
                state = _apply_record(engine, state, record)
                replayed += 1
            if as_of_seq is not None and wal.last_seq < as_of_seq:
                raise StoreError(
                    f"cannot recover as of seq {as_of_seq}: the log ends "
                    f"at seq {wal.last_seq}"
                )
            # Segments every record of which the snapshot covers were
            # deleted by the WAL's own recovery (a crash beat the
            # compaction); surface that as the stale-log flag.
            stale_log = recovered.stale_segments > 0
            report = RecoveryReport(
                snapshot_seq=snapshot_seq,
                replayed=replayed,
                rejects_in_log=rejects,
                discarded_bytes=recovered.discarded_bytes,
                stale_log=stale_log,
                seconds=time.perf_counter() - started,
                stale_segments=recovered.stale_segments,
                as_of_seq=as_of_seq,
            )
            if sp:
                sp.add("replayed", replayed)
                sp.add("discarded_bytes", recovered.discarded_bytes)
                sp.add("stale_logs", 1 if stale_log else 0)
        return cls(
            directory=directory,
            scheme=scheme,
            engine=engine,
            state=state,
            wal=wal,
            recovery=report,
            compact_factor=compact_factor,
            auto_compact=auto_compact,
            metrics=metrics,
            as_of_seq=as_of_seq,
        )

    # -- introspection --------------------------------------------------------
    @property
    def state(self) -> DatabaseState:
        """The current (immutable) state — safe to hand to readers."""
        return self._state

    @property
    def last_seq(self) -> int:
        """The sequence the served state reflects — the WAL's last
        record, or the ``as_of_seq`` bound for a point-in-time open."""
        if self._as_of_seq is not None:
            return self._as_of_seq
        return self._wal.last_seq

    @property
    def read_only(self) -> bool:
        """True for a point-in-time (``as_of_seq``) open: the log holds
        records past the served state, so writes would fork it."""
        return self._as_of_seq is not None

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying segmented log.  Read-mostly: replication
        tails its segment files; only the store itself appends."""
        return self._wal

    @property
    def wal_bytes(self) -> int:
        return self._wal.size_bytes

    @property
    def closed(self) -> bool:
        return self._wal.closed

    def _require_writable(self) -> None:
        if self._as_of_seq is not None:
            raise StoreError(
                f"store was opened read-only as of seq {self._as_of_seq}; "
                "writing would fork the log it was recovered from"
            )

    # -- updates --------------------------------------------------------------
    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> MaintenanceOutcome:
        """Validate one insertion; log and apply it when accepted, log a
        durable ``reject`` diagnostic when refused."""
        self._require_writable()
        with span("store.insert") as sp:
            outcome = self.engine.insert(self._state, relation_name, values)
            if outcome.consistent:
                assert outcome.state is not None
                self._wal.append("insert", relation_name, values)
                self._state = outcome.state
                self.metrics.increment("ops.insert")
                self._after_write()
            else:
                self._wal.append(
                    "reject",
                    relation_name,
                    values,
                    extra={"outcome": outcome.to_dict()},
                )
                self.metrics.increment("ops.insert")
                self.metrics.increment("store.rejects")
                self._after_write()
            if sp:
                sp.add("accepted", 1 if outcome.consistent else 0)
                sp.add("rejected", 0 if outcome.consistent else 1)
            return outcome

    def delete(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> DatabaseState:
        """Log and apply one deletion (always consistency-preserving)."""
        self._require_writable()
        with span("store.delete"):
            updated = self.engine.delete(self._state, relation_name, values)
            self._wal.append("delete", relation_name, values)
            self._state = updated
            self.metrics.increment("ops.delete")
            self._after_write()
            return updated

    def apply_batch(self, updates: Sequence[Update]) -> BatchOutcome:
        """Atomic batch: either every update is validated, logged and
        applied, or none is and the rejection is logged as a diagnostic."""
        self._require_writable()
        with span("store.batch") as sp:
            outcome = self.engine.apply_batch(self._state, updates)
            if outcome:
                assert outcome.state is not None
                for operation, relation_name, values in updates:
                    self._wal.append(operation, relation_name, values)
                self._state = outcome.state
                self.metrics.increment("ops.batch")
                self.metrics.increment("ops.batch_updates", len(updates))
            else:
                assert outcome.failed_index is not None
                _, relation_name, values = updates[outcome.failed_index]
                self._wal.append(
                    "reject",
                    relation_name,
                    values,
                    extra={"outcome": outcome.to_dict()},
                )
                self.metrics.increment("ops.batch")
                self.metrics.increment("store.rejects")
            self._after_write()
            if sp:
                sp.add("updates", len(updates))
                sp.add("applied", outcome.applied)
            return outcome

    def commit_batch(
        self, updates: Sequence[Update], state: DatabaseState
    ) -> None:
        """Log an already-validated batch and publish its result state.

        The sharded two-phase commit path: the worker validated the
        slice during *prepare* (through the same block kernels the
        engine uses), so by commit time there is nothing left to check
        — only the WAL append and the state swap remain.  Counter and
        span accounting match :meth:`apply_batch`'s committed branch.
        """
        self._require_writable()
        with span("store.batch") as sp:
            for operation, relation_name, values in updates:
                self._wal.append(operation, relation_name, values)
            self._state = state
            self.metrics.increment("ops.batch")
            self.metrics.increment("ops.batch_updates", len(updates))
            self._after_write()
            if sp:
                sp.add("updates", len(updates))
                sp.add("applied", len(updates))

    def log_reject(
        self,
        relation_name: str,
        values: Mapping[str, Hashable],
        outcome: Mapping[str, object],
    ) -> None:
        """Durably record a batch rejection without applying anything.

        The sharded abort path for the shard that owns the refused
        tuple: the record is byte-compatible with the ``reject`` entry
        :meth:`apply_batch` writes, so WAL auditing tools see the same
        diagnostic whether the batch ran sharded or single-process."""
        self._require_writable()
        with span("store.batch") as sp:
            self._wal.append(
                "reject",
                relation_name,
                values,
                extra={"outcome": dict(outcome)},
            )
            self.metrics.increment("ops.batch")
            self.metrics.increment("store.rejects")
            self._after_write()
            if sp:
                sp.add("updates", 0)
                sp.add("applied", 0)

    # -- queries --------------------------------------------------------------
    def query(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        """``[X]`` over the current state via the engine's cheapest
        correct route."""
        with span("store.query"):
            self.metrics.increment("ops.query")
            return self.engine.query(self._state, attributes)

    def metrics_snapshot(self) -> dict[str, Union[int, float]]:
        """Store counters merged with the engine's cache accounting
        (the read cache additionally reports its derived hit rate)."""
        merged = self.metrics.snapshot()
        for cache_name, info in self.engine.cache_info().items():
            merged[f"cache.{cache_name}.hits"] = info.hits
            merged[f"cache.{cache_name}.misses"] = info.misses
            merged[f"cache.{cache_name}.evictions"] = info.evictions
            if cache_name == "read":
                probes = info.hits + info.misses
                merged["cache.read.hit_rate"] = (
                    info.hits / probes if probes else 0.0
                )
        return merged

    # -- durability -----------------------------------------------------------
    def sync(self) -> None:
        """Force any batched WAL appends to disk now."""
        self._wal.sync()

    def snapshot(self) -> Path:
        """Write a snapshot at the current sequence and compact the WAL.

        Order matters for crash safety: the snapshot replaces
        atomically *first*; only then are the sealed segments it covers
        deleted.  A crash in between leaves stale segments that
        recovery recognises by their sequence numbers and discards.
        Nothing is ever truncated in place — the active segment rolls,
        so a follower mid-way through a sealed file never sees its
        bytes change."""
        self._require_writable()
        with span("store.snapshot") as sp:
            self._wal.sync()
            seq = self._wal.last_seq
            path = self.directory / SNAPSHOT_FILE
            dump_json_atomic(
                {"seq": seq, "state": state_to_dict(self._state)}, path
            )
            compacted = self._wal.compact(seq)
            self._snapshot_bytes = path.stat().st_size
            self.metrics.increment("store.snapshots")
            self.metrics.increment("store.compacted_segments", compacted)
            if sp:
                sp.add("snapshot_bytes", self._snapshot_bytes)
                sp.add("compacted_segments", compacted)
            return path

    def _after_write(self) -> None:
        self.metrics.set_gauge("wal.bytes", self._wal.size_bytes)
        self.metrics.set_gauge("store.seq", self._wal.last_seq)
        if self.auto_compact:
            self.maybe_compact()

    def maybe_compact(self) -> bool:
        """Snapshot + segment compaction when the WAL has outgrown the
        snapshot by ``compact_factor`` (and is past the absolute
        minimum size)."""
        threshold = max(
            MIN_COMPACT_BYTES, self.compact_factor * self._snapshot_bytes
        )
        if self._wal.size_bytes <= threshold:
            return False
        self.snapshot()
        self.metrics.set_gauge("wal.bytes", self._wal.size_bytes)
        return True

    def close(self) -> None:
        """Flush the WAL and release the engine's executor.

        The engine close sits in a ``finally``: a WAL close that fails
        (its final fsync, say) must not leak the executor threads."""
        try:
            self._wal.close()
        finally:
            self.engine.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()


def _migrate_legacy_wal(directory: Path) -> None:
    """Move a pre-segmentation single-file ``wal.jsonl`` into the
    segment directory as segment 1, so stores written before the
    format change keep recovering.  A no-op once migrated (or for a
    fresh store)."""
    legacy = directory / LEGACY_WAL_FILE
    if not legacy.exists():
        return
    wal_dir = directory / WAL_DIR
    wal_dir.mkdir(parents=True, exist_ok=True)
    target = wal_dir / segment_name(1)
    if target.exists():
        raise StoreError(
            f"{directory} holds both a legacy {LEGACY_WAL_FILE} and a "
            f"segmented log — refusing to guess which one is current"
        )
    legacy.rename(target)


def _apply_record(
    engine: WeakInstanceEngine, state: DatabaseState, record: WalRecord
) -> DatabaseState:
    """Re-apply one logged update during recovery.

    Inserts go back through engine validation; every logged insert was
    accepted before it was logged, so determinism makes re-acceptance a
    consistency check, not a decision."""
    values = record.values or {}
    if record.op == "insert":
        outcome = engine.insert(state, record.relation, values)
        if not outcome.consistent or outcome.state is None:
            raise StoreError(
                f"WAL record seq {record.seq} was accepted before the "
                "crash but fails validation on replay — the store "
                "directory is inconsistent"
            )
        return outcome.state
    if record.op == "delete":
        return engine.delete(state, record.relation, values)
    raise StoreError(f"cannot replay WAL op {record.op!r}")
