"""A crash-recoverable store binding a scheme, a WAL and snapshots.

A :class:`DurableStore` lives in one directory::

    store/
      scheme.json     the DatabaseScheme (written once at create time)
      snapshot.json   {"seq": N, "state": {...}} — the state after the
                      first N accepted updates (atomic replace)
      wal.jsonl       accepted updates N+1, N+2, ... plus durable
                      ``reject`` diagnostics (see repro.service.wal)

Every mutation is validated by the scheme's
:class:`~repro.core.engine.WeakInstanceEngine` *before* it is logged:
the WAL only ever contains updates the weak-instance model accepted, so
replay re-applies them without re-deriving the decision from scratch —
each replayed insert re-validates (the engine is the authority) and, by
determinism, re-accepts.  Rejected insertions are logged too, as
``reject`` records carrying the full
:meth:`~repro.state.consistency.MaintenanceOutcome.to_dict` diagnosis,
so repair tooling can later inspect *why* a tuple was refused; replay
skips them and they can never resurrect the refused tuple.

Recovery = load ``snapshot.json`` (consistency-checked through the
engine's memoized chase), replay the WAL's intact prefix, repair any
torn tail.  Compaction = write a new snapshot at the current sequence,
then reset the WAL; it triggers automatically once the log outgrows the
snapshot by ``compact_factor``.

A store is single-writer by construction — it performs no internal
locking.  :class:`repro.service.server.SchemeServer` provides the
thread-safe front end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Mapping, Optional, Sequence, Union

from repro.core.engine import BatchOutcome, Update, WeakInstanceEngine
from repro.foundations.attrs import AttrsLike
from repro.foundations.errors import StoreError
from repro.io import (
    dump_json_atomic,
    dump_scheme,
    load_json,
    load_scheme,
    state_to_dict,
)
from repro.obs.spans import span
from repro.schema.database_scheme import DatabaseScheme
from repro.service.metrics import MetricsRegistry
from repro.service.wal import WalRecord, WriteAheadLog, replayable
from repro.state.consistency import MaintenanceOutcome
from repro.state.database_state import DatabaseState

PathLike = Union[str, Path]

SCHEME_FILE = "scheme.json"
SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.jsonl"

#: Never compact while the WAL is smaller than this many bytes — tiny
#: stores would otherwise snapshot on every write.
MIN_COMPACT_BYTES = 4096


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DurableStore.open` did to reach a servable state."""

    snapshot_seq: int
    replayed: int
    rejects_in_log: int
    discarded_bytes: int
    stale_log: bool
    seconds: float

    def to_dict(self) -> dict[str, object]:
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "rejects_in_log": self.rejects_in_log,
            "discarded_bytes": self.discarded_bytes,
            "stale_log": self.stale_log,
            "seconds": round(self.seconds, 6),
        }

    def describe(self) -> str:
        lines = [
            f"snapshot at seq {self.snapshot_seq}",
            f"replayed {self.replayed} update(s) from the WAL",
            f"{self.rejects_in_log} durable reject diagnostic(s) in the log",
        ]
        if self.discarded_bytes:
            lines.append(
                f"repaired a torn tail ({self.discarded_bytes} byte(s) "
                "discarded)"
            )
        if self.stale_log:
            lines.append("discarded a pre-snapshot (stale) WAL")
        lines.append(f"recovery took {self.seconds:.4f}s")
        return "\n".join(lines)


class DurableStore:
    """One engine-validated state made durable in a directory.

    Construct with :meth:`create` (new directory) or :meth:`open`
    (recover an existing one); both accept ``fsync_every`` to batch
    WAL fsyncs and ``compact_factor`` / ``auto_compact`` to tune the
    snapshot policy.
    """

    def __init__(
        self,
        directory: Path,
        scheme: DatabaseScheme,
        engine: WeakInstanceEngine,
        state: DatabaseState,
        wal: WriteAheadLog,
        recovery: RecoveryReport,
        compact_factor: float,
        auto_compact: bool,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = directory
        self.scheme = scheme
        self.engine = engine
        self._state = state
        self._wal = wal
        self.recovery = recovery
        self.compact_factor = compact_factor
        self.auto_compact = auto_compact
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.increment("store.recoveries")
        self.metrics.increment("store.replayed_records", recovery.replayed)
        self._snapshot_bytes = (directory / SNAPSHOT_FILE).stat().st_size

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: PathLike,
        scheme: DatabaseScheme,
        *,
        fsync_every: int = 1,
        compact_factor: float = 4.0,
        auto_compact: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        parallel_backend: str = "thread",
        compiled: bool = True,
    ) -> "DurableStore":
        """Initialise a fresh store directory (must not already hold
        one) and return it opened."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / SCHEME_FILE).exists():
            raise StoreError(f"{directory} already contains a store")
        dump_scheme(scheme, directory / SCHEME_FILE)
        dump_json_atomic(
            {"seq": 0, "state": state_to_dict(DatabaseState(scheme))},
            directory / SNAPSHOT_FILE,
        )
        return cls.open(
            directory,
            fsync_every=fsync_every,
            compact_factor=compact_factor,
            auto_compact=auto_compact,
            metrics=metrics,
            workers=workers,
            parallel_backend=parallel_backend,
            compiled=compiled,
        )

    @classmethod
    def open(
        cls,
        directory: PathLike,
        *,
        fsync_every: int = 1,
        compact_factor: float = 4.0,
        auto_compact: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        parallel_backend: str = "thread",
        compiled: bool = True,
    ) -> "DurableStore":
        """Recover the store at ``directory``: snapshot + WAL replay.

        ``workers`` sizes the engine's block-task executor; the default
        of 1 keeps every code path single-threaded.  Replay itself is
        sequential either way, but each replayed insert extends the
        engine's delta-chase basis instead of re-chasing the whole
        state, so recovery cost follows the log's cascades, not
        (log length) x (state size)."""
        started = time.perf_counter()
        directory = Path(directory)
        with span("store.recovery") as sp:
            scheme_path = directory / SCHEME_FILE
            if not scheme_path.exists():
                raise StoreError(f"{directory} does not contain a store")
            scheme = load_scheme(scheme_path)
            engine = WeakInstanceEngine(
                scheme,
                workers=workers,
                parallel_backend=parallel_backend,
                compiled=compiled,
            )

            snapshot_path = directory / SNAPSHOT_FILE
            if snapshot_path.exists():
                snapshot = load_json(snapshot_path)
                if (
                    not isinstance(snapshot, dict)
                    or not isinstance(snapshot.get("seq"), int)
                    or not isinstance(snapshot.get("state"), dict)
                ):
                    raise StoreError(f"{snapshot_path} is malformed")
                snapshot_seq = snapshot["seq"]
                # engine.load chases (memoized) — a corrupt snapshot that
                # somehow passed JSON parsing still cannot serve queries.
                state = engine.load(snapshot["state"])
            else:
                snapshot_seq = 0
                state = engine.empty_state()
                dump_json_atomic(
                    {"seq": 0, "state": state_to_dict(state)}, snapshot_path
                )

            wal = WriteAheadLog(
                directory / WAL_FILE,
                base_seq=snapshot_seq,
                fsync_every=fsync_every,
                flexible=True,
            )
            scan = wal.recovered
            if scan.records and scan.records[0].seq > snapshot_seq + 1:
                raise StoreError(
                    f"WAL starts at seq {scan.records[0].seq} but the "
                    f"snapshot ends at {snapshot_seq}: records are missing"
                )
            to_replay = [
                record
                for record in replayable(scan.records)
                if record.seq > snapshot_seq
            ]
            stale_log = bool(scan.records) and scan.last_seq <= snapshot_seq
            replayed = 0
            for record in to_replay:
                state = _apply_record(engine, state, record)
                replayed += 1
            if stale_log:
                # Crash between snapshot write and WAL reset left a log
                # whose every record is already baked into the snapshot
                # (its last seq is at or before the snapshot's).  Reset
                # now, or the dead records linger in the live log and
                # the next open replays nothing but still carries them —
                # the flag and the cleanup must agree on the condition.
                wal.reset(snapshot_seq)
            report = RecoveryReport(
                snapshot_seq=snapshot_seq,
                replayed=replayed,
                rejects_in_log=sum(
                    1 for record in scan.records if record.op == "reject"
                ),
                discarded_bytes=scan.discarded_bytes,
                stale_log=stale_log,
                seconds=time.perf_counter() - started,
            )
            if sp:
                sp.add("replayed", replayed)
                sp.add("discarded_bytes", scan.discarded_bytes)
                sp.add("stale_logs", 1 if stale_log else 0)
        return cls(
            directory=directory,
            scheme=scheme,
            engine=engine,
            state=state,
            wal=wal,
            recovery=report,
            compact_factor=compact_factor,
            auto_compact=auto_compact,
            metrics=metrics,
        )

    # -- introspection --------------------------------------------------------
    @property
    def state(self) -> DatabaseState:
        """The current (immutable) state — safe to hand to readers."""
        return self._state

    @property
    def last_seq(self) -> int:
        return self._wal.last_seq

    @property
    def wal_bytes(self) -> int:
        return self._wal.size_bytes

    @property
    def closed(self) -> bool:
        return self._wal.closed

    # -- updates --------------------------------------------------------------
    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> MaintenanceOutcome:
        """Validate one insertion; log and apply it when accepted, log a
        durable ``reject`` diagnostic when refused."""
        with span("store.insert") as sp:
            outcome = self.engine.insert(self._state, relation_name, values)
            if outcome.consistent:
                assert outcome.state is not None
                self._wal.append("insert", relation_name, values)
                self._state = outcome.state
                self.metrics.increment("ops.insert")
                self._after_write()
            else:
                self._wal.append(
                    "reject",
                    relation_name,
                    values,
                    extra={"outcome": outcome.to_dict()},
                )
                self.metrics.increment("ops.insert")
                self.metrics.increment("store.rejects")
                self._after_write()
            if sp:
                sp.add("accepted", 1 if outcome.consistent else 0)
                sp.add("rejected", 0 if outcome.consistent else 1)
            return outcome

    def delete(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> DatabaseState:
        """Log and apply one deletion (always consistency-preserving)."""
        with span("store.delete"):
            updated = self.engine.delete(self._state, relation_name, values)
            self._wal.append("delete", relation_name, values)
            self._state = updated
            self.metrics.increment("ops.delete")
            self._after_write()
            return updated

    def apply_batch(self, updates: Sequence[Update]) -> BatchOutcome:
        """Atomic batch: either every update is validated, logged and
        applied, or none is and the rejection is logged as a diagnostic."""
        with span("store.batch") as sp:
            outcome = self.engine.apply_batch(self._state, updates)
            if outcome:
                assert outcome.state is not None
                for operation, relation_name, values in updates:
                    self._wal.append(operation, relation_name, values)
                self._state = outcome.state
                self.metrics.increment("ops.batch")
                self.metrics.increment("ops.batch_updates", len(updates))
            else:
                assert outcome.failed_index is not None
                _, relation_name, values = updates[outcome.failed_index]
                self._wal.append(
                    "reject",
                    relation_name,
                    values,
                    extra={"outcome": outcome.to_dict()},
                )
                self.metrics.increment("ops.batch")
                self.metrics.increment("store.rejects")
            self._after_write()
            if sp:
                sp.add("updates", len(updates))
                sp.add("applied", outcome.applied)
            return outcome

    def commit_batch(
        self, updates: Sequence[Update], state: DatabaseState
    ) -> None:
        """Log an already-validated batch and publish its result state.

        The sharded two-phase commit path: the worker validated the
        slice during *prepare* (through the same block kernels the
        engine uses), so by commit time there is nothing left to check
        — only the WAL append and the state swap remain.  Counter and
        span accounting match :meth:`apply_batch`'s committed branch.
        """
        with span("store.batch") as sp:
            for operation, relation_name, values in updates:
                self._wal.append(operation, relation_name, values)
            self._state = state
            self.metrics.increment("ops.batch")
            self.metrics.increment("ops.batch_updates", len(updates))
            self._after_write()
            if sp:
                sp.add("updates", len(updates))
                sp.add("applied", len(updates))

    def log_reject(
        self,
        relation_name: str,
        values: Mapping[str, Hashable],
        outcome: Mapping[str, object],
    ) -> None:
        """Durably record a batch rejection without applying anything.

        The sharded abort path for the shard that owns the refused
        tuple: the record is byte-compatible with the ``reject`` entry
        :meth:`apply_batch` writes, so WAL auditing tools see the same
        diagnostic whether the batch ran sharded or single-process."""
        with span("store.batch") as sp:
            self._wal.append(
                "reject",
                relation_name,
                values,
                extra={"outcome": dict(outcome)},
            )
            self.metrics.increment("ops.batch")
            self.metrics.increment("store.rejects")
            self._after_write()
            if sp:
                sp.add("updates", 0)
                sp.add("applied", 0)

    # -- queries --------------------------------------------------------------
    def query(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        """``[X]`` over the current state via the engine's cheapest
        correct route."""
        with span("store.query"):
            self.metrics.increment("ops.query")
            return self.engine.query(self._state, attributes)

    # -- durability -----------------------------------------------------------
    def sync(self) -> None:
        """Force any batched WAL appends to disk now."""
        self._wal.sync()

    def snapshot(self) -> Path:
        """Write a snapshot at the current sequence and reset the WAL.

        Order matters for crash safety: the snapshot replaces
        atomically *first*; only then is the log reset.  A crash in
        between leaves a stale log that recovery recognises by its
        sequence numbers and discards."""
        with span("store.snapshot") as sp:
            self._wal.sync()
            seq = self._wal.last_seq
            path = self.directory / SNAPSHOT_FILE
            dump_json_atomic(
                {"seq": seq, "state": state_to_dict(self._state)}, path
            )
            self._wal.reset(seq)
            self._snapshot_bytes = path.stat().st_size
            self.metrics.increment("store.snapshots")
            if sp:
                sp.add("snapshot_bytes", self._snapshot_bytes)
            return path

    def _after_write(self) -> None:
        self.metrics.set_gauge("wal.bytes", self._wal.size_bytes)
        self.metrics.set_gauge("store.seq", self._wal.last_seq)
        if self.auto_compact:
            self.maybe_compact()

    def maybe_compact(self) -> bool:
        """Snapshot + reset when the WAL has outgrown the snapshot by
        ``compact_factor`` (and is past the absolute minimum size)."""
        threshold = max(
            MIN_COMPACT_BYTES, self.compact_factor * self._snapshot_bytes
        )
        if self._wal.size_bytes <= threshold:
            return False
        self.snapshot()
        self.metrics.set_gauge("wal.bytes", self._wal.size_bytes)
        return True

    def close(self) -> None:
        self._wal.close()
        self.engine.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()


def _apply_record(
    engine: WeakInstanceEngine, state: DatabaseState, record: WalRecord
) -> DatabaseState:
    """Re-apply one logged update during recovery.

    Inserts go back through engine validation; every logged insert was
    accepted before it was logged, so determinism makes re-acceptance a
    consistency check, not a decision."""
    values = record.values or {}
    if record.op == "insert":
        outcome = engine.insert(state, record.relation, values)
        if not outcome.consistent or outcome.state is None:
            raise StoreError(
                f"WAL record seq {record.seq} was accepted before the "
                "crash but fails validation on replay — the store "
                "directory is inconsistent"
            )
        return outcome.state
    if record.op == "delete":
        return engine.delete(state, record.relation, values)
    raise StoreError(f"cannot replay WAL op {record.op!r}")
