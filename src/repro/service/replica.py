"""Follower replication over the segmented WAL.

The segmented log makes replication a file-shipping problem: sealed
segments are immutable, so a :class:`WalShipper` on the primary streams
their bytes (plus the growing tail of the active segment) to
:class:`FollowerStore` processes over the same length-prefixed JSON
frame protocol the sharded tier speaks
(:mod:`repro.shard.protocol`).  A follower writes the records into
identically-named segment files — its log is byte-for-byte the
primary's — and replays each state-changing record through its own
:class:`~repro.core.engine.WeakInstanceEngine`.  Replay extends the
engine's delta-chase basis incrementally (the PR-4 property the paper's
block-local chase semantics guarantee), so follower apply cost follows
each record's cascade, not the state size, and the follower's immutable
:class:`~repro.state.database_state.DatabaseState` snapshots serve
lock-free reads the whole time.

Failure handling:

* **Primary compacted past the follower** — a sealed segment the
  cursor still needed was deleted after a snapshot.  The shipper
  re-bootstraps the follower from the current snapshot; the follower
  discards its log and starts over.  No offset arithmetic across the
  gap is attempted.
* **Follower divergence** — a shipped record that fails CRC, breaks
  the sequence, or is rejected by the follower's engine on replay
  raises out of :meth:`FollowerStore.replay`; the truncation fuzzers
  drive this path with torn segment boundaries.
* **Primary loss** — :meth:`FollowerStore.promote` turns the follower
  into a writable :class:`~repro.service.store.DurableStore` *in
  place*: its live engine/state carry over (no re-chase, no replay), a
  fresh :class:`~repro.service.wal.WriteAheadLog` re-opens its segment
  directory, and the scan doubles as a CRC audit of everything the
  follower wrote.

:class:`ReplicaSet` packages the deployment the CLI's ``serve
--replicas N`` uses: forked follower processes (the
:func:`follower_main` loop mirrors the shard worker's) fed by a
background shipping thread, with ``sync()`` draining the pipeline for
tests and shutdown.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.core.engine import WeakInstanceEngine
from repro.foundations.attrs import attrs
from repro.foundations.errors import ServiceError, StoreError, WALError
from repro.io import (
    dump_json_atomic,
    dump_scheme,
    load_json,
    scheme_from_dict,
    scheme_to_dict,
    state_to_dict,
)
from repro.obs.spans import Tracer, span, tracing
from repro.schema.database_scheme import DatabaseScheme
from repro.service.store import (
    SCHEME_FILE,
    SNAPSHOT_FILE,
    WAL_DIR,
    DurableStore,
    RecoveryReport,
)
from repro.service.wal import (
    DEFAULT_SEGMENT_BYTES,
    WriteAheadLog,
    _decode_line,
    segment_index,
    segment_name,
)
from repro.shard.protocol import recv_frame, send_frame
from repro.state.database_state import DatabaseState

PathLike = Union[str, Path]

#: RPC ops a follower understands (documented for the protocol tests).
FOLLOWER_OPS = (
    "ping",
    "bootstrap",
    "records",
    "seal",
    "sync",
    "status",
    "query",
    "state",
    "promote",
    "insert",
    "delete",
    "shutdown",
)

#: Upper bound on raw record bytes gathered per ``records`` frame —
#: comfortably under the protocol's MAX_FRAME_BYTES with JSON overhead.
SHIP_CHUNK_BYTES = 4 * 1024 * 1024


def _check_reply(reply: Mapping[str, Any]) -> dict[str, Any]:
    if not reply.get("ok", False):
        info = reply.get("error") or {}
        raise ServiceError(
            "follower error: "
            f"{info.get('type', 'Error')}: {info.get('message', '')}"
        )
    return dict(reply)


class LocalTransport:
    """Direct in-process dispatch — the test/bench transport."""

    def __init__(self, follower: "FollowerStore") -> None:
        self.follower = follower

    def send(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        return _check_reply(self.follower.handle(payload))

    def close(self) -> None:
        pass


class SocketTransport:
    """One request/response round trip per frame over a socketpair."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock

    def send(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        send_frame(self.sock, payload)
        reply = recv_frame(self.sock)
        if reply is None:
            raise ServiceError("follower closed its pipe mid-request")
        return _check_reply(reply)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


class FollowerStore:
    """A read-only replica fed record frames by a :class:`WalShipper`.

    Kept separate from the process loop (:func:`follower_main`) so
    tests can drive it in-process over a :class:`LocalTransport`, the
    same split the sharded tier uses for its workers.  Not thread-safe
    on the write path — one shipper feeds it; reads hand out immutable
    state snapshots and need no lock.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        compiled: bool = True,
        fsync_every: int = 1,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.compiled = compiled
        self.fsync_every = fsync_every
        self.tracer = Tracer()
        self._scheme: Optional[DatabaseScheme] = None
        self._engine: Optional[WeakInstanceEngine] = None
        self._state: Optional[DatabaseState] = None
        self._snapshot_seq = 0
        self._applied_seq = 0
        self._rejects = 0
        self._segment_index: Optional[int] = None
        self._segment_handle: Optional[Any] = None
        self._promoted: Optional[DurableStore] = None

    # -- introspection --------------------------------------------------------
    @property
    def applied_seq(self) -> int:
        """Sequence of the last record applied (or promoted through)."""
        if self._promoted is not None:
            return self._promoted.last_seq
        return self._applied_seq

    @property
    def state(self) -> Optional[DatabaseState]:
        """The follower's current immutable state — safe to hand to
        readers with no locking (replay swaps the pointer)."""
        if self._promoted is not None:
            return self._promoted.state
        return self._state

    @property
    def promoted(self) -> Optional[DurableStore]:
        return self._promoted

    def status(self) -> dict[str, Any]:
        return {
            "applied_seq": self.applied_seq,
            "rejects": self._rejects,
            "promoted": self._promoted is not None,
            "bootstrapped": self._engine is not None,
        }

    # -- dispatch -------------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """One RPC in, one JSON-ready response out.  Errors become
        ``{"ok": false, "error": {...}}`` so the shipper can surface
        them with the follower's diagnosis intact."""
        op = request.get("op")
        try:
            with tracing(self.tracer):
                return self._dispatch(op, request)
        except Exception as error:  # noqa: BLE001 — shipped to primary
            return {
                "ok": False,
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                },
            }

    def _dispatch(
        self, op: Optional[str], request: Mapping[str, Any]
    ) -> dict[str, Any]:
        if op == "ping":
            return {"ok": True, **self.status()}
        if op == "bootstrap":
            self.bootstrap(request["scheme"], request["snapshot"])
            return {"ok": True, "applied_seq": self._applied_seq}
        if op == "records":
            applied = self.replay(
                int(request["segment"]), request["lines"]
            )
            return {
                "ok": True,
                "applied": applied,
                "applied_seq": self.applied_seq,
            }
        if op == "seal":
            self.seal(int(request["segment"]))
            return {"ok": True}
        if op == "sync":
            self._fsync_segment()
            return {"ok": True, **self.status()}
        if op == "status":
            return {"ok": True, **self.status()}
        if op == "query":
            return {"ok": True, "rows": sorted(self.query(request["target"]))}
        if op == "state":
            state = self.state
            if state is None:
                raise ServiceError("follower has not been bootstrapped")
            return {"ok": True, "state": state_to_dict(state)}
        if op == "promote":
            store = self.promote()
            return {"ok": True, "last_seq": store.last_seq}
        if op == "insert":
            store = self._require_promoted("insert")
            outcome = store.insert(request["relation"], request["values"])
            return {"ok": True, "outcome": outcome.to_dict()}
        if op == "delete":
            store = self._require_promoted("delete")
            store.delete(request["relation"], request["values"])
            return {"ok": True}
        raise ServiceError(f"unknown follower op {op!r}")

    def _require_promoted(self, op: str) -> DurableStore:
        if self._promoted is None:
            raise ServiceError(
                f"follower is read-only until promoted; cannot {op}"
            )
        return self._promoted

    # -- replication ----------------------------------------------------------
    def bootstrap(
        self, scheme_dict: Mapping[str, Any], snapshot: Mapping[str, Any]
    ) -> None:
        """(Re)initialise from the primary's snapshot.

        Also the shipper's recovery path when compaction on the primary
        deleted a segment this follower still needed: any previously
        shipped segments are discarded and the log restarts from the
        snapshot's sequence."""
        if self._promoted is not None:
            raise ServiceError("follower was promoted; cannot re-bootstrap")
        seq = snapshot["seq"]
        if not isinstance(seq, int) or not isinstance(
            snapshot.get("state"), dict
        ):
            raise ServiceError("malformed bootstrap snapshot")
        scheme = scheme_from_dict(scheme_dict)
        engine = WeakInstanceEngine(scheme, compiled=self.compiled)
        state = engine.load(snapshot["state"])
        # Persist the store files first: a promote after a crash of the
        # *primary* must find a complete store directory here.
        dump_scheme(scheme, self.directory / SCHEME_FILE)
        dump_json_atomic(
            {"seq": seq, "state": snapshot["state"]},
            self.directory / SNAPSHOT_FILE,
        )
        self._close_segment()
        wal_dir = self.directory / WAL_DIR
        wal_dir.mkdir(parents=True, exist_ok=True)
        for stale in sorted(wal_dir.iterdir()):
            if segment_index(stale) is not None:
                stale.unlink()
        if self._engine is not None:
            self._engine.close()
        self._scheme = scheme
        self._engine = engine
        self._state = state
        self._snapshot_seq = seq
        self._applied_seq = seq
        self._rejects = 0
        self._segment_index = None

    def replay(self, segment: int, lines: Sequence[str]) -> int:
        """Append the shipped raw lines to segment ``segment`` and
        apply their records; returns how many changed the state.

        Each line must decode, pass its CRC, and continue the sequence
        — and each replayed insert goes back through the follower's own
        engine, so a primary/follower divergence surfaces here as an
        error instead of silently forked states.  Records at or before
        the bootstrap snapshot's sequence are written (byte fidelity)
        but not applied (the snapshot already contains them)."""
        engine = self._engine
        if engine is None or self._state is None:
            raise ServiceError("follower has not been bootstrapped")
        with span("replica.replay") as sp:
            handle = self._segment_for(segment)
            state = self._state
            applied = 0
            for text in lines:
                raw = text.encode("utf-8")
                record = _decode_line(raw, None)
                if record is None:
                    raise WALError(
                        f"follower received a damaged record for segment "
                        f"{segment} after seq {self._applied_seq}"
                    )
                if record.seq <= self._snapshot_seq:
                    handle.write(raw)
                    continue
                if record.seq != self._applied_seq + 1:
                    raise WALError(
                        f"follower expected seq {self._applied_seq + 1} "
                        f"but was shipped seq {record.seq} — replication "
                        "stream diverged"
                    )
                handle.write(raw)
                if record.op == "insert":
                    outcome = engine.insert(
                        state, record.relation, record.values or {}
                    )
                    if not outcome.consistent or outcome.state is None:
                        raise StoreError(
                            f"record seq {record.seq} was accepted by the "
                            "primary but fails validation on the follower "
                            "— states diverged"
                        )
                    state = outcome.state
                    applied += 1
                elif record.op == "delete":
                    state = engine.delete(
                        state, record.relation, record.values or {}
                    )
                    applied += 1
                else:
                    self._rejects += 1
                self._applied_seq = record.seq
            handle.flush()
            self._state = state
            if sp:
                sp.add("records", len(lines))
                sp.add("applied", applied)
        return applied

    def seal(self, segment: int) -> None:
        """The primary rolled past ``segment``: fsync and close it —
        from here on its bytes are immutable, exactly as on the
        primary."""
        if self._segment_index == segment:
            self._close_segment(fsync=True)

    def query(self, attributes: Any) -> set:
        """``[X]`` over the follower's snapshot state — lock-free."""
        if self._promoted is not None:
            return self._promoted.query(attributes)
        if self._engine is None or self._state is None:
            raise ServiceError("follower has not been bootstrapped")
        return self._engine.query(self._state, attributes)

    def promote(self) -> DurableStore:
        """Fail over: become a writable :class:`DurableStore` in place.

        The follower's live engine and state carry over — no snapshot
        reload, no replay, no re-chase; the dominant cost is one scan
        of its segment files to rebuild the appender's bookkeeping,
        which doubles as a CRC audit of everything it wrote.  The
        returned store continues the sequence where shipping stopped,
        appending to the same segment directory."""
        if self._promoted is not None:
            return self._promoted
        engine = self._engine
        if engine is None or self._state is None or self._scheme is None:
            raise ServiceError(
                "follower has not been bootstrapped; nothing to promote"
            )
        started = time.perf_counter()
        self._close_segment(fsync=True)
        wal = WriteAheadLog(
            self.directory / WAL_DIR,
            base_seq=self._snapshot_seq,
            fsync_every=self.fsync_every,
            flexible=True,
        )
        if wal.last_seq != self._applied_seq:
            wal.close()
            raise StoreError(
                f"follower applied up to seq {self._applied_seq} but its "
                f"log ends at {wal.last_seq} — refusing to promote a "
                "diverged replica"
            )
        report = RecoveryReport(
            snapshot_seq=self._snapshot_seq,
            replayed=0,
            rejects_in_log=self._rejects,
            discarded_bytes=wal.recovered.discarded_bytes,
            stale_log=False,
            seconds=time.perf_counter() - started,
        )
        self._promoted = DurableStore(
            directory=self.directory,
            scheme=self._scheme,
            engine=engine,
            state=self._state,
            wal=wal,
            recovery=report,
            compact_factor=4.0,
            auto_compact=True,
        )
        return self._promoted

    def close(self) -> None:
        if self._promoted is not None:
            self._promoted.close()
            self._promoted = None
            self._engine = None
            return
        self._close_segment()
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "FollowerStore":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()

    # -- segment files --------------------------------------------------------
    def _segment_for(self, segment: int) -> Any:
        if self._segment_index == segment and self._segment_handle:
            return self._segment_handle
        if (
            self._segment_index is not None
            and segment < self._segment_index
        ):
            raise WALError(
                f"follower is on segment {self._segment_index}; refusing "
                f"to reopen sealed segment {segment}"
            )
        self._close_segment(fsync=True)
        path = self.directory / WAL_DIR / segment_name(segment)
        self._segment_handle = open(path, "ab")
        self._segment_index = segment
        return self._segment_handle

    def _fsync_segment(self) -> None:
        if self._segment_handle is not None:
            self._segment_handle.flush()
            os.fsync(self._segment_handle.fileno())

    def _close_segment(self, fsync: bool = False) -> None:
        if self._segment_handle is not None:
            if fsync:
                self._fsync_segment()
            self._segment_handle.close()
            self._segment_handle = None


def _first_seq(path: Path) -> Optional[int]:
    """Sequence of the first intact record in a segment file."""
    try:
        with open(path, "rb") as handle:
            line = handle.readline()
    except OSError:
        return None
    record = _decode_line(line, None)
    return record.seq if record is not None else None


def _read_complete_lines(
    path: Path, offset: int, max_bytes: int = SHIP_CHUNK_BYTES
) -> tuple[list[str], int]:
    """Read whole, CRC-valid lines from ``offset``; stop at the first
    incomplete or still-flushing line (it is retried next poll) or at
    ``max_bytes``.  Returns the lines and the new offset."""
    lines: list[str] = []
    with open(path, "rb") as handle:
        handle.seek(offset)
        total = 0
        while total < max_bytes:
            line = handle.readline()
            if not line or not line.endswith(b"\n"):
                break
            if _decode_line(line, None) is None:
                break
            lines.append(line.decode("utf-8"))
            offset += len(line)
            total += len(line)
    return lines, offset


class WalShipper:
    """Streams a primary store's segments to follower transports.

    Per follower it keeps a cursor ``(segment index, byte offset)``
    into the primary's segment directory and ships complete records
    from there: sealed segments in order (each closed with a ``seal``
    frame, so the follower's copy becomes immutable at the same
    boundary), then the active segment's growing tail.  Reading is
    concurrent-safe against the appending writer because only intact,
    CRC-valid, newline-terminated lines ever ship — a half-flushed
    tail stays behind the cursor until the next poll.

    If compaction deleted a segment before it shipped (the follower
    lagged across a snapshot), the follower is re-bootstrapped from
    the current snapshot rather than chasing a gap.
    """

    def __init__(
        self,
        store: DurableStore,
        transports: Sequence[Any],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.store = store
        self.transports = list(transports)
        self.tracer = tracer if tracer is not None else Tracer()
        self._cursors: list[Optional[dict[str, int]]] = [
            None for _ in self.transports
        ]
        self.bootstraps = 0

    def ship(self) -> int:
        """One shipping pass over every follower; returns the number of
        records sent.  Call repeatedly (or from a polling thread) —
        each pass ships whatever accumulated since the last."""
        with tracing(self.tracer):
            with span("replica.ship") as sp:
                shipped = 0
                for position, transport in enumerate(self.transports):
                    shipped += self._ship_one(position, transport)
                if sp:
                    sp.add("records", shipped)
        return shipped

    def sync(self) -> list[dict[str, Any]]:
        """Drain: ship until no follower is behind the log's flushed
        tail, fsync the followers, and return their statuses."""
        while self.ship():
            pass
        return [
            transport.send({"op": "sync"}) for transport in self.transports
        ]

    def lag(self) -> list[int]:
        """Records each follower is behind the primary, by sequence."""
        primary_seq = self.store.last_seq
        lags = []
        for transport in self.transports:
            status = transport.send({"op": "status"})
            lags.append(primary_seq - int(status["applied_seq"]))
        return lags

    # -- one follower ---------------------------------------------------------
    def _ship_one(self, position: int, transport: Any) -> int:
        cursor = self._cursors[position]
        if cursor is None:
            cursor = self._bootstrap(transport)
            self._cursors[position] = cursor
        wal = self.store.wal
        shipped = 0
        while True:
            index = cursor["segment"]
            path = wal.directory / segment_name(index)
            try:
                lines, end = _read_complete_lines(path, cursor["offset"])
            except FileNotFoundError:
                # Compacted away before this follower saw it: start
                # over from the snapshot that superseded it.
                cursor = self._bootstrap(transport)
                self._cursors[position] = cursor
                continue
            if lines:
                transport.send(
                    {"op": "records", "segment": index, "lines": lines}
                )
                cursor["offset"] = end
                shipped += len(lines)
            if index < wal.active_index:
                try:
                    size = path.stat().st_size
                except OSError:
                    size = None
                if size is not None and cursor["offset"] >= size:
                    # Sealed and fully shipped: seal on the follower
                    # and move to the next segment.
                    transport.send({"op": "seal", "segment": index})
                    cursor["segment"] = index + 1
                    cursor["offset"] = 0
                    continue
            if not lines:
                return shipped

    def _bootstrap(self, transport: Any) -> dict[str, int]:
        snapshot = load_json(self.store.directory / SNAPSHOT_FILE)
        transport.send(
            {
                "op": "bootstrap",
                "scheme": scheme_to_dict(self.store.scheme),
                "snapshot": snapshot,
            }
        )
        self.bootstraps += 1
        seq = int(snapshot["seq"])
        return {"segment": self._segment_holding(seq + 1), "offset": 0}

    def _segment_holding(self, seq: int) -> int:
        """The segment whose records include ``seq``, falling back to
        the active segment when ``seq`` has not been written yet."""
        wal = self.store.wal
        chosen = wal.active_index
        for path in wal.segments():
            index = segment_index(path)
            first = _first_seq(path)
            if index is None or first is None or first > seq:
                break
            chosen = index
        return chosen


def follower_main(conn: socket.socket, config: Mapping[str, Any]) -> None:
    """The forked follower's entire life: serve replication RPCs until
    EOF/shutdown, tear down cleanly.

    Mirrors the shard worker loop: SIGTERM exits cleanly, SIGINT is
    ignored so a Ctrl-C aimed at the serving process group cannot kill
    followers before the primary coordinates shutdown."""

    def _terminate(signum: int, frame: object) -> None:  # pragma: no cover
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    follower = FollowerStore(
        config["directory"],
        compiled=bool(config.get("compiled", True)),
        fsync_every=int(config.get("fsync_every", 1)),
    )
    try:
        while True:
            request = recv_frame(conn)
            if request is None or request.get("op") == "shutdown":
                if request is not None:
                    send_frame(conn, {"ok": True})
                break
            send_frame(conn, follower.handle(request))
    except (SystemExit, BrokenPipeError, ConnectionResetError):
        pass
    finally:
        follower.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ReplicaSet:
    """Forked follower processes fed by a background shipping thread.

    The deployment behind ``serve --replicas N``: follower ``k`` lives
    in ``<base>/follower-<k>`` (a complete store directory, ready to
    be promoted by failover tooling), and a daemon thread polls the
    primary's log every ``poll_interval`` seconds, shipping whatever
    the serving threads appended.  ``sync()`` drains the pipeline on
    demand; ``close()`` drains, shuts the followers down and reaps the
    processes."""

    def __init__(
        self,
        store: DurableStore,
        count: int,
        directory: Optional[PathLike] = None,
        *,
        poll_interval: float = 0.05,
        compiled: bool = True,
    ) -> None:
        if count < 1:
            raise ServiceError("a replica set needs at least one follower")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServiceError(
                "follower replication needs the fork start method (POSIX)"
            )
        self.store = store
        self.poll_interval = poll_interval
        base = (
            Path(directory)
            if directory is not None
            else store.directory / "replicas"
        )
        base.mkdir(parents=True, exist_ok=True)
        self.directories: list[Path] = []
        self._procs: list[Any] = []
        self._transports: list[SocketTransport] = []
        context = multiprocessing.get_context("fork")
        for index in range(count):
            follower_dir = base / f"follower-{index}"
            parent_sock, child_sock = socket.socketpair()
            process = context.Process(
                target=follower_main,
                args=(
                    child_sock,
                    {
                        "directory": str(follower_dir),
                        "compiled": compiled,
                        "fsync_every": 1,
                    },
                ),
                name=f"repro-follower-{index}",
                daemon=True,
            )
            process.start()
            child_sock.close()
            self.directories.append(follower_dir)
            self._procs.append(process)
            self._transports.append(SocketTransport(parent_sock))
        self.shipper = WalShipper(store, self._transports)
        # One ping per follower: a child that died on startup surfaces
        # here, not on the first shipped record.
        self._lock = threading.Lock()
        self._next_read = 0  # guarded-by: _lock (round-robin cursor)
        for transport in self._transports:
            transport.send({"op": "ping"})
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-wal-shipper", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                with self._lock:
                    self.shipper.ship()
            except (ServiceError, OSError):
                # A follower died mid-ship; stop polling — close()
                # will report reality via the remaining statuses.
                return
            self._stop.wait(self.poll_interval)

    def sync(self) -> list[dict[str, Any]]:
        """Ship everything appended so far and fsync the followers."""
        with self._lock:
            return self.shipper.sync()

    def statuses(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                transport.send({"op": "status"})
                for transport in self._transports
            ]

    def query(self, attributes: Any) -> set:
        """``[X]`` offloaded to a caught-up follower.

        Read-your-writes: the primary's ``last_seq`` at call time is
        the sequence floor — a follower may answer only once it has
        applied at least that much of the log, so every write the
        caller committed before asking is visible in the answer.
        Followers are tried round-robin; if all lag, the pipeline gets
        one shipping nudge and one more pass, and only then does the
        primary answer itself.  The call therefore never returns stale
        data and never fails on a healthy primary.
        """
        floor = self.store.last_seq
        payload = {"op": "query", "target": sorted(attrs(attributes))}
        with self._lock:
            for attempt in range(2):
                count = len(self._transports)
                for offset in range(count):
                    index = (self._next_read + offset) % count
                    transport = self._transports[index]
                    try:
                        status = transport.send({"op": "status"})
                        if status.get("applied_seq", -1) < floor:
                            continue
                        reply = transport.send(payload)
                    except (ServiceError, OSError):
                        # A dead or unbootstrapped follower is a lag
                        # case, not an error: try the next one.
                        continue
                    self._next_read = (index + 1) % count
                    self.store.metrics.increment("replica.reads_offloaded")
                    return {tuple(row) for row in reply["rows"]}
                if attempt == 0:
                    try:
                        self.shipper.ship()
                    except (ServiceError, OSError):
                        break
        self.store.metrics.increment("replica.read_fallbacks")
        return self.store.query(attributes)

    def close(self) -> None:
        """Final drain, then shut followers down and reap them."""
        self._stop.set()
        self._thread.join(timeout=10)
        try:
            with self._lock:
                self.shipper.sync()
        except (ServiceError, OSError):
            pass
        for transport in self._transports:
            try:
                transport.send({"op": "shutdown"})
            except (ServiceError, OSError):
                pass
            transport.close()
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()


def iter_follower_dirs(base: PathLike) -> Iterator[Path]:
    """The follower store directories under a replica-set base, in
    index order — what failover tooling promotes from."""
    base = Path(base)
    if not base.is_dir():
        return
    for path in sorted(base.iterdir()):
        if path.is_dir() and path.name.startswith("follower-"):
            yield path
