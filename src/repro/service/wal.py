"""A segmented append-only JSONL write-ahead log for validated updates.

Format — one JSON object per line::

    {"seq": 17, "op": "insert", "relation": "R4",
     "values": {"C": "CS445", "S": "sue", "G": "A"}, "crc": 913282119}

* ``seq`` increases by exactly 1 per record; the first record of a log
  carries ``seq = base_seq + 1`` (``base_seq`` is the snapshot sequence
  the log continues from, 0 for a fresh store).
* ``crc`` is the CRC-32 of the record's canonical JSON encoding
  (sorted keys, compact separators) with the ``crc`` field removed.
* ``op`` is ``insert`` or ``delete`` for state-changing records, or
  ``reject`` for a durable diagnostic of a refused insertion (replay
  skips it; repair tooling reads it).

Segmentation: the log is a directory of segment files
(``wal.000001.jsonl``, ``wal.000002.jsonl``, …).  The highest-numbered
segment is *active* — the only file ever appended to; once the active
segment reaches ``segment_bytes`` the log rolls: the active file is
fsynced, closed, and never written again (*sealed*), and the next index
opens.  Sealed segments are the unit of everything coarser than a
record: compaction after a snapshot deletes whole sealed segments
(:meth:`WriteAheadLog.compact` — there is no truncate-in-place),
replication ships them byte-for-byte, and point-in-time recovery
replays them up to a sequence number.  Sequence numbers are continuous
across the boundary: segment *k+1* starts at the seq after segment
*k*'s last record.

Durability is batched: ``fsync_every = n`` issues one ``fsync`` per
``n`` appends (plus one on :meth:`WriteAheadLog.sync`, on roll and on
close), so a serving workload can trade a bounded suffix of un-synced
records for throughput.  ``fsync_every = 1`` is the strict default.

Crash tolerance: a torn tail — a final line the crash cut short, or a
final record whose checksum does not match because only part of it
reached the disk — is detected and *repaired* (the active segment is
truncated back to the last intact record) when the log is reopened for
appending.  Only the active segment may be torn: damage anywhere in a
sealed segment, or intact data after a damaged record, is interior
corruption a single crash cannot produce and raises
:class:`~repro.foundations.errors.WALError`.  A failed ``append``
(disk full mid-record) truncates back to the pre-write offset at once,
so the *next* append cannot bury a torn record in the interior.

Scanning streams the log line by line — memory stays bounded by one
record regardless of log size.
"""

from __future__ import annotations

import json
import math
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.foundations.errors import WALError
from repro.obs.spans import span

PathLike = Union[str, Path]

#: Record kinds that change the state on replay.
STATE_OPS = ("insert", "delete")
#: All record kinds a well-formed log may contain.
KNOWN_OPS = STATE_OPS + ("reject",)

#: Roll the active segment once it reaches this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal\.(\d{6,})\.jsonl$")


def segment_name(index: int) -> str:
    """The file name of segment ``index`` (``wal.000001.jsonl``, …)."""
    return f"wal.{index:06d}.jsonl"


def segment_index(path: PathLike) -> Optional[int]:
    """The segment index encoded in ``path``'s name, or ``None``."""
    match = _SEGMENT_RE.match(Path(path).name)
    return int(match.group(1)) if match else None


def segment_paths(directory: PathLike) -> list[Path]:
    """The segment files under ``directory`` in index order (the last
    one is the active segment).  A missing directory lists as empty."""
    directory = Path(directory)
    try:
        entries = sorted(directory.iterdir())
    except OSError:
        return []
    indexed = []
    for entry in entries:
        index = segment_index(entry)
        if index is not None:
            indexed.append((index, entry))
    return [path for _, path in sorted(indexed)]


def _canonical(payload: Mapping[str, Any]) -> bytes:
    # No ``default=`` fallback: a value json cannot encode must raise,
    # not silently stringify — a record that replays with *different*
    # values than the state that was accepted is worse than no record.
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def record_crc(payload: Mapping[str, Any]) -> int:
    """CRC-32 of the canonical encoding of ``payload`` minus ``crc``."""
    body = {key: value for key, value in payload.items() if key != "crc"}
    return zlib.crc32(_canonical(body))


def _check_loggable(value: Any, where: str) -> None:
    """Reject values that would not replay identically from JSON.

    Only ``str``/``int``/finite ``float``/``bool``/``None`` scalars,
    lists of loggable values, and string-keyed dicts of loggable values
    survive a ``dumps``/``loads`` round trip unchanged.  Everything
    else (tuples become lists, non-string keys become strings,
    arbitrary objects would need a lossy fallback) raises
    :class:`WALError` at append time, before the record reaches disk.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return
    if isinstance(value, float):
        if not math.isfinite(value):
            raise WALError(
                f"{where}: non-finite float {value!r} does not survive a "
                "JSON round trip"
            )
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise WALError(
                    f"{where}: key {key!r} is {type(key).__name__}; JSON "
                    "object keys replay as strings"
                )
            _check_loggable(item, f"{where}[{key!r}]")
        return
    if isinstance(value, list):
        for position, item in enumerate(value):
            _check_loggable(item, f"{where}[{position}]")
        return
    raise WALError(
        f"{where}: {type(value).__name__} value {value!r} would not "
        "replay identically — only JSON scalars, lists and string-keyed "
        "dicts are loggable"
    )


def _fsync_directory(directory: Path) -> None:
    """Make segment creations/deletions durable where the platform
    allows fsync on a directory; best-effort elsewhere."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    op: str
    relation: Optional[str] = None
    values: Optional[dict[str, Any]] = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"seq": self.seq, "op": self.op}
        if self.relation is not None:
            payload["relation"] = self.relation
        if self.values is not None:
            payload["values"] = dict(self.values)
        payload.update(self.extra)
        payload["crc"] = record_crc(payload)
        return payload

    def to_line(self) -> bytes:
        return _canonical(self.to_payload()) + b"\n"

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WalRecord":
        known = {"seq", "op", "relation", "values", "crc"}
        return cls(
            seq=payload["seq"],
            op=payload["op"],
            relation=payload.get("relation"),
            values=payload.get("values"),
            extra={
                key: value
                for key, value in payload.items()
                if key not in known
            },
        )


def _decode_line(
    line: bytes, expected_seq: Optional[int]
) -> Optional[WalRecord]:
    """Decode one line; ``None`` means the line is not an intact record
    continuing the sequence (torn tail or worse — the caller decides).
    ``expected_seq = None`` accepts any sequence number (used for the
    first record of a flexible scan)."""
    if not line.endswith(b"\n"):
        return None  # partial final write
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    if not isinstance(payload.get("seq"), int) or "op" not in payload:
        return None
    if payload.get("crc") != record_crc(payload):
        return None
    if payload["op"] not in KNOWN_OPS:
        return None
    if expected_seq is not None and payload["seq"] != expected_seq:
        return None
    return WalRecord.from_payload(payload)


def _count_remaining(handle: Any) -> int:
    """Bytes left in ``handle`` without holding them in memory."""
    total = 0
    while True:
        chunk = handle.read(1 << 16)
        if not chunk:
            return total
        total += len(chunk)


class _SegmentScan:
    """One streaming pass over a single segment file.

    Consume :meth:`records` to completion, then read the accumulated
    totals.  Memory stays bounded by one line; the whole file is never
    read at once."""

    def __init__(self, path: Path, expected_seq: Optional[int]) -> None:
        self.path = Path(path)
        self.index = segment_index(self.path)
        self.expected = expected_seq
        self.first_seq: Optional[int] = None
        self.last_seq: Optional[int] = None
        self.valid_bytes = 0
        self.discarded_bytes = 0
        self.count = 0

    def records(self) -> Iterator[WalRecord]:
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return
        with handle:
            while True:
                line = handle.readline()
                if not line:
                    return
                record = _decode_line(line, self.expected)
                if record is None:
                    # A torn tail is at most ONE damaged line: a partial
                    # final line (no newline — readline only returns one
                    # at EOF) or a single complete-but-corrupt final
                    # line.  Any byte after that means intact-looking
                    # data follows a bad record — interior corruption,
                    # which a single crash cannot produce.
                    trailing = 0
                    if line.endswith(b"\n"):
                        trailing = _count_remaining(handle)
                    if trailing:
                        raise WALError(
                            f"{self.path}: corrupt record at byte "
                            f"{self.valid_bytes} is followed by "
                            f"{trailing} more byte(s) — not a torn tail"
                        )
                    self.discarded_bytes = len(line)
                    return
                self.valid_bytes += len(line)
                if self.first_seq is None:
                    self.first_seq = record.seq
                self.last_seq = record.seq
                self.count += 1
                self.expected = record.seq + 1
                yield record


class _LogScan:
    """A streaming scan across an ordered list of segment files.

    Sequence numbers chain across segment boundaries; only the final
    (active) segment may carry a torn tail — damage in any earlier
    segment raises :class:`WALError` because sealed segments are
    immutable once rolled."""

    def __init__(
        self,
        paths: Sequence[Path],
        base_seq: int,
        flexible: bool,
    ) -> None:
        self.paths = list(paths)
        self.base_seq = base_seq
        self.flexible = flexible
        self.segments: list[_SegmentScan] = []
        self.valid_bytes = 0
        self.discarded_bytes = 0
        self.last_seq = base_seq
        self.first_seq: Optional[int] = None
        self.records_count = 0

    def records(self) -> Iterator[WalRecord]:
        expected: Optional[int] = (
            None if self.flexible else self.base_seq + 1
        )
        for position, path in enumerate(self.paths):
            segment = _SegmentScan(path, expected)
            self.segments.append(segment)
            for record in segment.records():
                yield record
            sealed = position < len(self.paths) - 1
            if segment.discarded_bytes and sealed:
                raise WALError(
                    f"{path}: sealed segment has a damaged tail at byte "
                    f"{segment.valid_bytes} — only the active (final) "
                    "segment may be torn"
                )
            self.valid_bytes += segment.valid_bytes
            self.discarded_bytes += segment.discarded_bytes
            self.records_count += segment.count
            if segment.first_seq is not None and self.first_seq is None:
                self.first_seq = segment.first_seq
            if segment.last_seq is not None:
                self.last_seq = segment.last_seq
                expected = segment.last_seq + 1


@dataclass(frozen=True)
class WalScan:
    """Everything :func:`scan_wal` learned about a log."""

    records: tuple[WalRecord, ...]
    valid_bytes: int
    discarded_bytes: int
    last_seq: int

    @property
    def torn(self) -> bool:
        return self.discarded_bytes > 0


def iter_wal(
    path: PathLike, base_seq: int = 0, *, flexible: bool = False
) -> Iterator[WalRecord]:
    """Stream the longest intact prefix of the log at ``path`` — a
    segment directory or a single segment file — without materializing
    it.  Raises :class:`WALError` on interior corruption; a torn tail
    in the final segment simply ends the stream."""
    path = Path(path)
    if path.is_dir():
        paths = segment_paths(path)
    elif path.exists():
        paths = [path]
    else:
        return
    yield from _LogScan(paths, base_seq, flexible).records()


def scan_wal(
    path: PathLike, base_seq: int = 0, *, flexible: bool = False
) -> WalScan:
    """Read the longest intact prefix of the log at ``path`` (a segment
    directory or a single segment file) into memory.

    The scan streams line by line and stops at the first line that is
    missing its newline, fails to parse, fails its checksum, or breaks
    the consecutive sequence.  Whatever follows is the discarded tail.
    A discarded tail that itself contains an intact line — or any
    damage in a sealed (non-final) segment — is interior corruption
    and raises :class:`~repro.foundations.errors.WALError`.

    The first record must carry ``base_seq + 1`` unless ``flexible`` is
    set, in which case any starting sequence is accepted — the store
    uses this to recognise segments left behind by a crash between
    writing a snapshot and compacting the log.

    A missing file or directory scans as empty (``last_seq =
    base_seq``).  Prefer :func:`iter_wal` when the records only need to
    be visited once — this function holds them all.
    """
    path = Path(path)
    if path.is_dir():
        paths = segment_paths(path)
    elif path.exists():
        paths = [path]
    else:
        return WalScan((), 0, 0, base_seq)
    scan = _LogScan(paths, base_seq, flexible)
    records = tuple(scan.records())
    return WalScan(
        records, scan.valid_bytes, scan.discarded_bytes, scan.last_seq
    )


@dataclass(frozen=True)
class WalRecovery:
    """What opening a :class:`WriteAheadLog` found (and repaired)."""

    #: Sequence of the first surviving on-disk record (``None`` if the
    #: log is empty after repair/cleanup).
    first_seq: Optional[int]
    #: Sequence the log continues from.
    last_seq: int
    #: Surviving intact records across all segments.
    records: int
    #: Bytes of intact records kept.
    valid_bytes: int
    #: Bytes of torn tail truncated from the active segment.
    discarded_bytes: int
    #: Whole segments deleted because a snapshot already covered every
    #: record in them (a crash beat the compaction that would have).
    stale_segments: int
    #: Segment files in the log after recovery (including the active).
    segments: int

    @property
    def torn(self) -> bool:
        return self.discarded_bytes > 0


class WriteAheadLog:
    """Appender over a directory of JSONL segments with batched fsync.

    Opening scans the existing segments, repairs a torn tail on the
    active segment (truncating to the last intact record), deletes
    whole segments a snapshot already covers (``flexible`` mode), and
    continues the sequence.  ``append`` assigns the next ``seq``,
    writes the record and flushes it to the OS; one ``fsync`` is issued
    every ``fsync_every`` appends.  When the active segment reaches
    ``segment_bytes`` the next append rolls to a new segment file.
    Not thread-safe — the store serializes writers.
    """

    def __init__(
        self,
        directory: PathLike,
        base_seq: int = 0,
        fsync_every: int = 1,
        flexible: bool = False,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync_every < 1:
            raise WALError("fsync_every must be at least 1")
        if segment_bytes < 1:
            raise WALError("segment_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self.segment_bytes = int(segment_bytes)
        self._base_seq = base_seq
        self._broken = False
        self._unsynced = 0

        paths = segment_paths(self.directory)
        scan = _LogScan(paths, base_seq, flexible=flexible)
        for _ in scan.records():
            pass  # streaming: recovery never holds the log in memory
        if scan.discarded_bytes:
            torn = scan.segments[-1]
            with open(torn.path, "r+b") as handle:
                handle.truncate(torn.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())

        # A crash between writing a snapshot and compacting leaves
        # segments every record of which the snapshot already covers;
        # drop that fully-covered prefix now (flexible mode only — a
        # strict caller asserts the log starts at base_seq + 1).
        survivors = list(scan.segments)
        stale = 0
        if flexible:
            while (
                survivors
                and survivors[0].last_seq is not None
                and survivors[0].last_seq <= base_seq
            ):
                survivors[0].path.unlink()
                stale += 1
                survivors.pop(0)
            if stale:
                _fsync_directory(self.directory)

        self._seq = base_seq
        first_seq: Optional[int] = None
        surviving_records = 0
        surviving_bytes = 0
        for segment in survivors:
            if segment.first_seq is not None and first_seq is None:
                first_seq = segment.first_seq
            if segment.last_seq is not None:
                self._seq = segment.last_seq
            surviving_records += segment.count
            surviving_bytes += segment.valid_bytes

        if survivors:
            self._active_index = survivors[-1].index or 1
            self._active_path = survivors[-1].path
        else:
            last_index = scan.segments[-1].index if scan.segments else 0
            self._active_index = (last_index or 0) + 1
            self._active_path = self.directory / segment_name(
                self._active_index
            )

        # Sealed-segment bookkeeping: the last sequence each sealed
        # segment holds (for compaction coverage checks) and their
        # total size (for size_bytes without stat calls).
        self._sealed_last: dict[int, int] = {}
        self._sealed_bytes = 0
        for segment in survivors[:-1]:
            if segment.index is not None and segment.last_seq is not None:
                self._sealed_last[segment.index] = segment.last_seq
            self._sealed_bytes += segment.valid_bytes

        self._handle = open(self._active_path, "ab")
        self.recovered = WalRecovery(
            first_seq=first_seq,
            last_seq=self._seq,
            records=surviving_records,
            valid_bytes=surviving_bytes,
            discarded_bytes=scan.discarded_bytes,
            stale_segments=stale,
            segments=max(len(survivors), 1),
        )

    # -- introspection --------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def active_path(self) -> Path:
        """The segment file currently being appended to."""
        return self._active_path

    @property
    def active_index(self) -> int:
        return self._active_index

    def segments(self) -> list[Path]:
        """All segment files in index order (last one is active)."""
        return segment_paths(self.directory)

    @property
    def size_bytes(self) -> int:
        """The log's current total size across all segments.

        While open this is the sealed-segment total plus the append
        handle's position (cheap, exact).  Once closed it falls back to
        ``stat`` — a closed non-empty log must keep reporting its real
        on-disk size, because compaction thresholds and metrics read
        this after ``close()``."""
        if not self._handle.closed:
            return self._sealed_bytes + self._handle.tell()
        total = 0
        for path in self.segments():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def _require_open(self) -> None:
        if self._broken:
            raise WALError(
                f"{self._active_path}: log is unusable after a failed "
                "write could not be rolled back"
            )
        if self._handle.closed:
            raise WALError(f"{self._active_path}: log is closed")

    # -- writing --------------------------------------------------------------
    def append(
        self,
        op: str,
        relation: Optional[str] = None,
        values: Optional[Mapping[str, Any]] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> WalRecord:
        """Write one record and return it (with its assigned ``seq``).

        Values are vetted for JSON round-trip fidelity *before* the
        record reaches disk, and a failed write truncates the segment
        back to the pre-write offset so no torn record is ever buried
        by a later append."""
        if op not in KNOWN_OPS:
            raise WALError(f"unknown WAL op {op!r}")
        self._require_open()
        if values is not None:
            _check_loggable(dict(values), "values")
        if extra:
            _check_loggable(dict(extra), "extra")
        record = WalRecord(
            seq=self._seq + 1,
            op=op,
            relation=relation,
            values=None if values is None else dict(values),
            extra=dict(extra or {}),
        )
        try:
            line = record.to_line()
        except (TypeError, ValueError) as error:
            raise WALError(
                f"record {record.seq} is not JSON-serializable: {error}"
            ) from error
        if self._handle.tell() >= self.segment_bytes:
            self.roll()
        with span("wal.append") as sp:
            start = self._handle.tell()
            try:
                self._handle.write(line)
                self._handle.flush()
            except OSError as error:
                self._rewind(start, error)
            self._seq = record.seq
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                self.sync()
            if sp:
                sp.add("bytes", len(line))
        return record

    def _rewind(self, start: int, error: OSError) -> None:
        """A failed write may have left part of a record on disk;
        truncate back to the pre-write offset so the next append lands
        on a clean record boundary instead of burying the tear as
        interior corruption."""
        try:
            self._handle.truncate(start)
            self._handle.seek(start)
        except OSError:
            # The rollback itself failed; poison the log so later
            # appends fail loudly instead of writing past the tear.
            self._broken = True
            raise WALError(
                f"{self._active_path}: write failed at byte {start} and "
                f"the partial record could not be removed: {error}"
            ) from error
        raise WALError(
            f"{self._active_path}: write failed at byte {start}; the "
            f"partial record was truncated away: {error}"
        ) from error

    def roll(self) -> Path:
        """Seal the active segment and open the next one.

        The sealed file is fsynced first, so everything before the
        boundary is durable the moment the segment becomes immutable.
        Rolling an empty active segment is a no-op."""
        self._require_open()
        if self._handle.tell() == 0:
            return self._active_path
        with span("wal.roll") as sp:
            self.sync()
            sealed_size = self._handle.tell()
            self._handle.close()
            self._sealed_bytes += sealed_size
            self._sealed_last[self._active_index] = self._seq
            self._active_index += 1
            self._active_path = self.directory / segment_name(
                self._active_index
            )
            self._handle = open(self._active_path, "ab")
            _fsync_directory(self.directory)
            if sp:
                sp.add("segment", self._active_index)
                sp.add("sealed_bytes", sealed_size)
        return self._active_path

    def sync(self) -> None:
        """Force an ``fsync`` of everything appended so far."""
        if not self._handle.closed:
            with span("wal.fsync"):
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._unsynced = 0

    def compact(self, upto_seq: int) -> int:
        """Delete sealed segments whose records a snapshot at
        ``upto_seq`` fully covers; returns how many were removed.

        Rolls first (when the active segment has records) so the
        covered tail becomes a sealed, deletable file — segments are
        immutable, so compaction never truncates in place.  This
        replaces the old whole-log ``reset``."""
        self._require_open()
        if self._handle.tell() > 0:
            self.roll()
        deleted = 0
        for index in sorted(self._sealed_last):
            if self._sealed_last[index] > upto_seq:
                break  # ordered: everything later is newer
            path = self.directory / segment_name(index)
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            self._sealed_bytes -= size
            del self._sealed_last[index]
            deleted += 1
        if deleted:
            _fsync_directory(self.directory)
        return deleted

    # -- reading --------------------------------------------------------------
    def records(self, after_seq: Optional[int] = None) -> Iterator[WalRecord]:
        """Stream the log's intact records from disk in sequence order,
        skipping those with ``seq <= after_seq`` when given.  The
        active handle is flushed first so every appended record is
        visible; the log itself is never held in memory."""
        if not self._handle.closed:
            self._handle.flush()
        scan = _LogScan(self.segments(), self._base_seq, flexible=True)
        for record in scan.records():
            if after_seq is None or record.seq > after_seq:
                yield record

    def close(self) -> None:
        if not self._handle.closed:
            if not self._broken:
                self.sync()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()


def replayable(records: Sequence[WalRecord]) -> Iterator[WalRecord]:
    """The state-changing records of ``records`` in order (skips
    ``reject`` diagnostics)."""
    for record in records:
        if record.op in STATE_OPS:
            yield record
