"""An append-only JSONL write-ahead log for validated updates.

Format — one JSON object per line::

    {"seq": 17, "op": "insert", "relation": "R4",
     "values": {"C": "CS445", "S": "sue", "G": "A"}, "crc": 913282119}

* ``seq`` increases by exactly 1 per record; the first record of a log
  carries ``seq = base_seq + 1`` (``base_seq`` is the snapshot sequence
  the log continues from, 0 for a fresh store).
* ``crc`` is the CRC-32 of the record's canonical JSON encoding
  (sorted keys, compact separators) with the ``crc`` field removed.
* ``op`` is ``insert`` or ``delete`` for state-changing records, or
  ``reject`` for a durable diagnostic of a refused insertion (replay
  skips it; repair tooling reads it).

Durability is batched: ``fsync_every = n`` issues one ``fsync`` per
``n`` appends (plus one on :meth:`WriteAheadLog.sync` and on close), so
a serving workload can trade a bounded suffix of un-synced records for
throughput.  ``fsync_every = 1`` is the strict default.

Crash tolerance: a torn tail — a final line the crash cut short, or a
final record whose checksum does not match because only part of it
reached the disk — is detected by :func:`scan_wal` and *repaired* (the
file is truncated back to the last intact record) when the log is
reopened for appending.  Corruption strictly before the last record is
not survivable and raises :class:`~repro.foundations.errors.WALError`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.foundations.errors import WALError
from repro.obs.spans import span

PathLike = Union[str, Path]

#: Record kinds that change the state on replay.
STATE_OPS = ("insert", "delete")
#: All record kinds a well-formed log may contain.
KNOWN_OPS = STATE_OPS + ("reject",)


def _canonical(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def record_crc(payload: Mapping[str, Any]) -> int:
    """CRC-32 of the canonical encoding of ``payload`` minus ``crc``."""
    body = {key: value for key, value in payload.items() if key != "crc"}
    return zlib.crc32(_canonical(body))


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    op: str
    relation: Optional[str] = None
    values: Optional[dict[str, Any]] = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"seq": self.seq, "op": self.op}
        if self.relation is not None:
            payload["relation"] = self.relation
        if self.values is not None:
            payload["values"] = dict(self.values)
        payload.update(self.extra)
        payload["crc"] = record_crc(payload)
        return payload

    def to_line(self) -> bytes:
        return _canonical(self.to_payload()) + b"\n"

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WalRecord":
        known = {"seq", "op", "relation", "values", "crc"}
        return cls(
            seq=payload["seq"],
            op=payload["op"],
            relation=payload.get("relation"),
            values=payload.get("values"),
            extra={
                key: value
                for key, value in payload.items()
                if key not in known
            },
        )


def _decode_line(
    line: bytes, expected_seq: Optional[int]
) -> Optional[WalRecord]:
    """Decode one line; ``None`` means the line is not an intact record
    continuing the sequence (torn tail or worse — the caller decides).
    ``expected_seq = None`` accepts any sequence number (used for the
    first record of a flexible scan)."""
    if not line.endswith(b"\n"):
        return None  # partial final write
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    if not isinstance(payload.get("seq"), int) or "op" not in payload:
        return None
    if payload.get("crc") != record_crc(payload):
        return None
    if payload["op"] not in KNOWN_OPS:
        return None
    if expected_seq is not None and payload["seq"] != expected_seq:
        return None
    return WalRecord.from_payload(payload)


@dataclass(frozen=True)
class WalScan:
    """Everything :func:`scan_wal` learned about a log file."""

    records: tuple[WalRecord, ...]
    valid_bytes: int
    discarded_bytes: int
    last_seq: int

    @property
    def torn(self) -> bool:
        return self.discarded_bytes > 0


def scan_wal(
    path: PathLike, base_seq: int = 0, *, flexible: bool = False
) -> WalScan:
    """Read the longest intact prefix of the log at ``path``.

    The scan stops at the first line that is missing its newline, fails
    to parse, fails its checksum, or breaks the consecutive sequence.
    Whatever follows is the discarded tail.  A discarded tail that
    itself contains an intact line is interior corruption — a crash can
    only tear the *last* record — and raises
    :class:`~repro.foundations.errors.WALError`.

    The first record must carry ``base_seq + 1`` unless ``flexible`` is
    set, in which case any starting sequence is accepted — the store
    uses this to recognise a log left behind by a crash between writing
    a snapshot and resetting the log.

    A missing file scans as empty (``last_seq = base_seq``).
    """
    path = Path(path)
    if not path.exists():
        return WalScan((), 0, 0, base_seq)
    data = path.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    seq: Optional[int] = None
    while offset < len(data):
        end = data.find(b"\n", offset)
        line = data[offset:] if end < 0 else data[offset : end + 1]
        if seq is not None:
            expected: Optional[int] = seq + 1
        else:
            expected = None if flexible else base_seq + 1
        record = _decode_line(line, expected)
        if record is None:
            break
        records.append(record)
        seq = record.seq
        offset += len(line)
    tail = data[offset:]
    # A torn tail is at most ONE damaged line: either a partial final
    # line (no newline — the crash cut the append short) or a single
    # complete-but-corrupt final line.  Anything after that first
    # newline means intact-looking data follows a bad record — interior
    # corruption, which a single crash cannot produce.
    first_newline = tail.find(b"\n")
    if first_newline not in (-1, len(tail) - 1):
        raise WALError(
            f"{path}: corrupt record at byte {offset} is followed by "
            f"{len(tail) - first_newline - 1} more byte(s) — not a torn "
            "tail"
        )
    last_seq = seq if seq is not None else base_seq
    return WalScan(tuple(records), offset, len(data) - offset, last_seq)


class WriteAheadLog:
    """Appender over one JSONL log file with batched fsync.

    Opening scans the existing file, repairs a torn tail (truncating to
    the last intact record) and continues the sequence.  ``append``
    assigns the next ``seq``, writes the record and flushes it to the
    OS; one ``fsync`` is issued every ``fsync_every`` appends.  Not
    thread-safe — the store serializes writers.
    """

    def __init__(
        self,
        path: PathLike,
        base_seq: int = 0,
        fsync_every: int = 1,
        flexible: bool = False,
    ) -> None:
        if fsync_every < 1:
            raise WALError("fsync_every must be at least 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        scan = scan_wal(self.path, base_seq, flexible=flexible)
        self.recovered = scan
        if scan.discarded_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
        self._seq = scan.last_seq
        self._handle = open(self.path, "ab")
        self._unsynced = 0

    # -- introspection --------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def size_bytes(self) -> int:
        """The log's current size.

        While open this is the append handle's position (cheap, exact).
        Once closed it falls back to ``stat`` — a closed non-empty log
        must keep reporting its real on-disk size, because compaction
        thresholds and metrics read this after ``close()``."""
        if not self._handle.closed:
            return self._handle.tell()
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    @property
    def closed(self) -> bool:
        return self._handle.closed

    # -- writing --------------------------------------------------------------
    def append(
        self,
        op: str,
        relation: Optional[str] = None,
        values: Optional[Mapping[str, Any]] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> WalRecord:
        """Write one record and return it (with its assigned ``seq``)."""
        if op not in KNOWN_OPS:
            raise WALError(f"unknown WAL op {op!r}")
        if self._handle.closed:
            raise WALError(f"{self.path}: log is closed")
        record = WalRecord(
            seq=self._seq + 1,
            op=op,
            relation=relation,
            values=None if values is None else dict(values),
            extra=dict(extra or {}),
        )
        with span("wal.append") as sp:
            line = record.to_line()
            self._handle.write(line)
            self._handle.flush()
            self._seq = record.seq
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                self.sync()
            if sp:
                sp.add("bytes", len(line))
        return record

    def sync(self) -> None:
        """Force an ``fsync`` of everything appended so far."""
        if not self._handle.closed:
            with span("wal.fsync"):
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._unsynced = 0

    def reset(self, base_seq: int) -> None:
        """Empty the log and restart the sequence at ``base_seq`` —
        called after a snapshot has made the old records redundant."""
        self._handle.truncate(0)
        # truncate() does not move the append-mode position; seek so
        # tell() (and hence size_bytes) reflects the emptied file.
        self._handle.seek(0)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq = base_seq
        self._unsynced = 0

    def close(self) -> None:
        if not self._handle.closed:
            self.sync()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()


def replayable(records: Sequence[WalRecord]) -> Iterator[WalRecord]:
    """The state-changing records of ``records`` in order (skips
    ``reject`` diagnostics)."""
    for record in records:
        if record.op in STATE_OPS:
            yield record
