"""Thread-safe operation counters for the serving layer.

The serving components (:class:`repro.service.store.DurableStore`,
:class:`repro.service.server.SchemeServer`) record what they do into a
:class:`MetricsRegistry` — monotonic counters plus point-in-time gauges
— so an operator can ask a long-lived process what it has been doing
without stopping it.  A registry is cheap enough to update on every
operation: one lock acquisition and one dict write.

Counter names are dotted paths (``ops.insert``, ``wal.bytes``,
``store.rejects``); :meth:`MetricsRegistry.snapshot` returns them as a
flat ``name -> value`` dict ready for JSON rendering.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Union

Number = Union[int, float]


class MetricsRegistry:
    """A flat namespace of thread-safe counters, gauges and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Number] = {}
        self._gauges: dict[str, Number] = {}

    # -- counters -------------------------------------------------------------
    def increment(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> Number:
        """The current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------------
    def set_gauge(self, name: str, value: Number) -> None:
        """Record the latest value of the gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._gauges.get(name, default)

    # -- timers ---------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds into ``<name>.seconds`` and bump
        ``<name>.calls``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._counters[f"{name}.seconds"] = (
                    self._counters.get(f"{name}.seconds", 0.0) + elapsed
                )
                self._counters[f"{name}.calls"] = (
                    self._counters.get(f"{name}.calls", 0) + 1
                )

    # -- reporting ------------------------------------------------------------
    def snapshot(self) -> dict[str, Number]:
        """All counters and gauges as one flat dict (gauges win on a
        name collision, which well-behaved callers never create)."""
        with self._lock:
            merged: dict[str, Number] = dict(self._counters)
            merged.update(self._gauges)
            return merged

    def describe(self) -> str:
        """One ``name = value`` line per metric, sorted by name."""
        lines = [
            f"{name} = {value}"
            for name, value in sorted(self.snapshot().items())
        ]
        return "\n".join(lines) if lines else "(no metrics recorded)"
