"""Thread-safe operation counters for the serving layer.

The serving components (:class:`repro.service.store.DurableStore`,
:class:`repro.service.server.SchemeServer`) record what they do into a
:class:`MetricsRegistry` — monotonic counters plus point-in-time gauges
— so an operator can ask a long-lived process what it has been doing
without stopping it.  A registry is cheap enough to update on every
operation: one lock acquisition and one dict write.

Counter names are dotted paths (``ops.insert``, ``wal.bytes``,
``store.rejects``); :meth:`MetricsRegistry.snapshot` returns them as a
flat ``name -> value`` dict ready for JSON rendering.  Counters, gauges
and timers are separate namespaces internally; ``snapshot`` refuses to
merge them when two kinds share a name, because silently letting one
shadow the other corrupts whatever dashboard reads the result.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.foundations.errors import ServiceError

Number = Union[int, float]


def labeled(name: str, **labels: object) -> str:
    """Render ``name`` with Prometheus-style labels appended.

    ``labeled("ops.insert", shard=2)`` → ``ops.insert{shard="2"}``.
    Keeping labels inside the metric *name* lets per-shard series share
    one flat registry namespace without colliding; the exposition layer
    (:func:`repro.obs.exposition.prometheus_text`) splits them back out
    when emitting the text format.
    """
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """A flat namespace of thread-safe counters, gauges and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Number] = {}  # guarded-by: _lock
        self._gauges: dict[str, Number] = {}  # guarded-by: _lock
        # name -> [seconds, calls]; timers no longer write into the
        # counter namespace, so metrics.timer("ops.insert") cannot
        # clobber (or be clobbered by) the counter of the same name.
        self._timers: dict[str, list[Number]] = {}  # guarded-by: _lock

    # -- counters -------------------------------------------------------------
    def increment(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> Number:
        """The current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------------
    def set_gauge(self, name: str, value: Number) -> None:
        """Record the latest value of the gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._gauges.get(name, default)

    # -- timers ---------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds and a call count under the
        timer ``name`` (reported as ``<name>.seconds`` / ``<name>.calls``
        in :meth:`snapshot`)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                cell = self._timers.setdefault(name, [0.0, 0])
                cell[0] += elapsed
                cell[1] += 1

    def timer_totals(self, name: str) -> tuple[float, int]:
        """Accumulated ``(seconds, calls)`` of timer ``name``."""
        with self._lock:
            seconds, calls = self._timers.get(name, (0.0, 0))
            return float(seconds), int(calls)

    # -- reporting ------------------------------------------------------------
    def snapshot(self) -> dict[str, Number]:
        """All counters, gauges and timers as one flat dict.

        Timers contribute ``<name>.seconds`` and ``<name>.calls``.
        Raises :class:`ServiceError` when two kinds of metric collide on
        a name — one silently shadowing the other would misreport both.
        """
        with self._lock:
            merged: dict[str, Number] = dict(self._counters)
            for name, value in self._gauges.items():
                if name in merged:
                    raise ServiceError(
                        f"metric name collision: {name!r} is both a "
                        "counter and a gauge"
                    )
                merged[name] = value
            for name, (seconds, calls) in self._timers.items():
                for derived, value in (
                    (f"{name}.seconds", seconds),
                    (f"{name}.calls", calls),
                ):
                    if derived in merged:
                        raise ServiceError(
                            f"metric name collision: timer {name!r} "
                            f"derives {derived!r}, which is already a "
                            "counter or gauge"
                        )
                    merged[derived] = value
            return merged

    def snapshot_by_kind(
        self,
        shard: Optional[int] = None,
    ) -> dict[str, dict[str, Number]]:
        """The three namespaces separately (for exposition formats that
        distinguish metric kinds): ``{"counters": ..., "gauges": ...,
        "timers": ...}`` with timers flattened to ``<name>.seconds`` /
        ``<name>.calls``.

        With ``shard`` given, every name is rendered through
        :func:`labeled` as ``name{shard="K"}`` so registries from
        several shard workers can be merged into one namespace without
        collisions — the sharded ``repro stats --prometheus`` path.
        """
        with self._lock:
            timers: dict[str, Number] = {}
            for name, (seconds, calls) in self._timers.items():
                timers[f"{name}.seconds"] = seconds
                timers[f"{name}.calls"] = calls
            kinds = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": timers,
            }
        if shard is None:
            return kinds
        return {
            kind: {
                labeled(name, shard=shard): value
                for name, value in series.items()
            }
            for kind, series in kinds.items()
        }

    def describe(self) -> str:
        """One ``name = value`` line per metric, sorted by name."""
        lines = [
            f"{name} = {value}"
            for name, value in sorted(self.snapshot().items())
        ]
        return "\n".join(lines) if lines else "(no metrics recorded)"
