"""A thread-safe session server over one engine-validated state.

:class:`SchemeServer` is the concurrency layer the paper's guarantees
make cheap: because states are immutable and queries on bounded schemes
evaluate by predetermined expressions, readers never need a lock — they
grab the current state pointer and compute against that snapshot while
writers move the pointer forward underneath them.  Writes are
serialized through a single-writer lock, so the committed history is a
total order: the final state always equals the serial application of
the accepted updates in commit order (which, with a durable store, is
exactly WAL order).

Sessions are named handles multiplexed over the shared state — they
carry per-session accounting and a convenient bound API, not isolation;
every session sees every committed write.

The server fronts either a :class:`~repro.service.store.DurableStore`
(durable mode — every accepted write hits the WAL) or a bare scheme
(in-memory mode, same concurrency semantics, nothing on disk).
"""

from __future__ import annotations

import threading
from typing import Hashable, Mapping, Optional, Sequence, Union

from repro.core.engine import BatchOutcome, Update, WeakInstanceEngine
from repro.foundations.attrs import AttrsLike
from repro.foundations.errors import ServiceError
from repro.obs.exposition import prometheus_text
from repro.obs.spans import Tracer, tracing
from repro.schema.database_scheme import DatabaseScheme
from repro.service.metrics import MetricsRegistry
from repro.service.store import DurableStore
from repro.state.consistency import MaintenanceOutcome
from repro.state.database_state import DatabaseState


class Session:
    """A named handle on a :class:`SchemeServer`.

    Thread-safe to share, cheap to create; all methods delegate to the
    server and bump both the server's and the session's counters.
    """

    def __init__(self, server: "SchemeServer", name: str) -> None:
        self.server = server
        self.name = name
        self.metrics = MetricsRegistry()

    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> MaintenanceOutcome:
        self.metrics.increment("ops.insert")
        return self.server.insert(relation_name, values)

    def delete(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> DatabaseState:
        self.metrics.increment("ops.delete")
        return self.server.delete(relation_name, values)

    def apply_batch(self, updates: Sequence[Update]) -> BatchOutcome:
        self.metrics.increment("ops.batch")
        return self.server.apply_batch(updates)

    def query(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        self.metrics.increment("ops.query")
        return self.server.query(attributes)

    def state(self) -> DatabaseState:
        """The committed state at this instant (an immutable snapshot)."""
        return self.server.state

    def __repr__(self) -> str:
        return f"Session({self.name!r})"


class SchemeServer:
    """Single-writer / many-reader server over one weak-instance engine."""

    def __init__(
        self,
        store: Optional[DurableStore] = None,
        scheme: Optional[DatabaseScheme] = None,
        state: Optional[DatabaseState] = None,
        tracer: Optional[Tracer] = None,
        workers: int = 1,
        parallel_backend: str = "thread",
        compiled: bool = True,
        read_cache: bool = True,
    ) -> None:
        if (store is None) == (scheme is None):
            raise ServiceError(
                "pass exactly one of store= (durable) or scheme= (in-memory)"
            )
        # Every public operation runs under this tracer, so the engine-
        # and store-level spans (chase.*, join.*, wal.*, ...) land in
        # per-stage latency histograms the stats/prometheus surfaces
        # report.  Pass a Tracer configured with a slow-op log to get
        # threshold-triggered JSONL records of slow operations.
        self.tracer = tracer if tracer is not None else Tracer()
        self._write_lock = threading.Lock()
        self._sessions_lock = threading.Lock()
        self._sessions: dict[str, Session] = {}  # guarded-by: _sessions_lock
        self._closed = False  # guarded-by: _write_lock
        self._store = store
        if store is not None:
            if state is not None:
                raise ServiceError("a durable store carries its own state")
            self.scheme = store.scheme
            self.engine = store.engine
            self.metrics = store.metrics
            self._state = store.state  # guarded-by: _write_lock (writes)
        else:
            assert scheme is not None
            self.scheme = scheme
            self.engine = WeakInstanceEngine(
                scheme,
                workers=workers,
                parallel_backend=parallel_backend,
                compiled=compiled,
                read_cache=read_cache,
            )
            self.metrics = MetricsRegistry()
            self._state = (
                state if state is not None else self.engine.empty_state()
            )

    # -- construction conveniences -------------------------------------------
    @classmethod
    def in_memory(
        cls,
        scheme: DatabaseScheme,
        state: Optional[DatabaseState] = None,
        workers: int = 1,
        compiled: bool = True,
        read_cache: bool = True,
    ) -> "SchemeServer":
        return cls(
            scheme=scheme,
            state=state,
            workers=workers,
            compiled=compiled,
            read_cache=read_cache,
        )

    @classmethod
    def serving(cls, store: DurableStore) -> "SchemeServer":
        return cls(store=store)

    # -- sessions -------------------------------------------------------------
    def session(self, name: str) -> Session:
        """The session named ``name`` (created on first use)."""
        with self._sessions_lock:
            existing = self._sessions.get(name)
            if existing is None:
                existing = Session(self, name)
                self._sessions[name] = existing
                self.metrics.increment("server.sessions_opened")
            return existing

    def session_names(self) -> list[str]:
        with self._sessions_lock:
            return sorted(self._sessions)

    # -- reads ----------------------------------------------------------------
    @property
    def state(self) -> DatabaseState:
        """The latest committed state.  Reading the pointer is atomic;
        the object it names is immutable, so readers are race-free."""
        return self._state

    @property
    def durable(self) -> bool:
        return self._store is not None

    def query(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        """``[X]`` against the state committed at call time — runs
        without the write lock; concurrent writers do not block it."""
        snapshot = self._state
        self.metrics.increment("ops.query")
        with tracing(self.tracer):
            return self.engine.query(snapshot, attributes)

    # -- writes (serialized) ---------------------------------------------------
    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> MaintenanceOutcome:
        with self._write_lock, tracing(self.tracer):
            if self._store is not None:
                outcome = self._store.insert(relation_name, values)
                self._state = self._store.state
            else:
                outcome = self.engine.insert(
                    self._state, relation_name, values
                )
                self.metrics.increment("ops.insert")
                if outcome.consistent:
                    assert outcome.state is not None
                    self._state = outcome.state
                else:
                    self.metrics.increment("store.rejects")
            return outcome

    def delete(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> DatabaseState:
        with self._write_lock, tracing(self.tracer):
            if self._store is not None:
                self._state = self._store.delete(relation_name, values)
            else:
                self.metrics.increment("ops.delete")
                self._state = self.engine.delete(
                    self._state, relation_name, values
                )
            return self._state

    def apply_batch(self, updates: Sequence[Update]) -> BatchOutcome:
        with self._write_lock, tracing(self.tracer):
            if self._store is not None:
                outcome = self._store.apply_batch(updates)
                self._state = self._store.state
            else:
                outcome = self.engine.apply_batch(self._state, updates)
                self.metrics.increment("ops.batch")
                if outcome:
                    assert outcome.state is not None
                    self._state = outcome.state
                else:
                    self.metrics.increment("store.rejects")
            return outcome

    # -- maintenance ----------------------------------------------------------
    def snapshot(self) -> None:
        """Durable mode: force a snapshot + WAL reset now."""
        if self._store is None:
            raise ServiceError("an in-memory server has nothing to snapshot")
        with self._write_lock, tracing(self.tracer):
            self._store.snapshot()

    def metrics_snapshot(self) -> dict[str, Union[int, float]]:
        """Server counters merged with the engine's cache accounting
        (the read cache additionally reports its derived hit rate)."""
        merged = self.metrics.snapshot()
        for cache_name, info in self.engine.cache_info().items():
            merged[f"cache.{cache_name}.hits"] = info.hits
            merged[f"cache.{cache_name}.misses"] = info.misses
            merged[f"cache.{cache_name}.evictions"] = info.evictions
            if cache_name == "read":
                probes = info.hits + info.misses
                merged["cache.read.hit_rate"] = (
                    info.hits / probes if probes else 0.0
                )
        return merged

    def stats(self) -> dict[str, object]:
        """The full observability report: operation metrics, per-stage
        span histograms (count/sum/min/max/p50/p95/p99) and the spans'
        aggregated counters, JSON-ready."""
        return {
            "metrics": self.metrics_snapshot(),
            "spans": self.tracer.span_summaries(),
            "span_counters": self.tracer.counter_snapshot(),
        }

    def prometheus(self) -> str:
        """The same report as Prometheus text exposition v0.0.4.

        Operation/span counters become ``_total`` counter series, gauges
        stay gauges, and each span's latency histogram becomes a
        ``repro_span_<name>_seconds`` histogram family."""
        kinds = self.metrics.snapshot_by_kind()
        counters = dict(kinds["counters"])
        counters.update(kinds["timers"])
        gauges = dict(kinds["gauges"])
        for cache_name, info in self.engine.cache_info().items():
            counters[f"cache.{cache_name}.hits"] = info.hits
            counters[f"cache.{cache_name}.misses"] = info.misses
            counters[f"cache.{cache_name}.evictions"] = info.evictions
            if cache_name == "read":
                # A rate is a level, not a monotone count: gauge it.
                probes = info.hits + info.misses
                gauges["cache.read.hit_rate"] = (
                    info.hits / probes if probes else 0.0
                )
        counters.update(self.tracer.counter_snapshot())
        return prometheus_text(
            counters=counters,
            gauges=gauges,
            histograms=self.tracer.histograms(),
        )

    def close(self) -> None:
        # Take the write lock in *both* branches: an in-flight write on
        # another thread must finish (and publish its state) before the
        # engine's worker pool — which that write may be using — is
        # torn down.  Idempotent: a supervised shutdown (signal handler
        # plus ``finally`` block plus supervisor) may close the same
        # server from several paths.
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            if self._store is not None:
                self._store.close()
            else:
                self.engine.close()
