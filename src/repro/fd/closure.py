"""Attribute closure.

``X⁺`` with respect to a set of fds ``F`` is the set of attributes ``A``
with ``X → A ∈ F⁺`` (paper, Section 2.3).  Two algorithms are provided:

* :func:`closure_naive` — the textbook fixpoint loop, O(|F|² · width);
  kept as an oracle for property-based tests.
* :func:`closure_linear` — Beeri–Bernstein counting algorithm, linear in
  the total size of ``F``; the default used throughout the library.

:class:`ClosureIndex` preassembles the counting structures so that many
closures over the same fd set (the common pattern in key enumeration,
independence tests and the recognition algorithm) amortize the setup.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.fd.fd import FD
from repro.foundations.attrs import AttrsLike, attrs


def closure_naive(start: AttrsLike, fds: Iterable[FD]) -> frozenset[str]:
    """Fixpoint attribute closure; quadratic but obviously correct."""
    result = set(attrs(start))
    fd_list = list(fds)
    changed = True
    while changed:
        changed = False
        for dependency in fd_list:
            if dependency.lhs <= result and not dependency.rhs <= result:
                result.update(dependency.rhs)
                changed = True
    return frozenset(result)


class ClosureIndex:
    """Reusable linear-time closure evaluator for a fixed fd set.

    Implements the Beeri–Bernstein algorithm: each fd keeps a count of
    left-hand-side attributes not yet derived; when the count reaches zero
    the right-hand side is released.  Building the index is linear in the
    size of ``F``; each :meth:`closure` call is linear as well.
    """

    def __init__(self, fds: Iterable[FD]) -> None:
        self._fds: list[FD] = list(fds)
        # For each attribute, the indices of fds whose lhs mentions it.
        self._uses: dict[str, list[int]] = defaultdict(list)
        for index, dependency in enumerate(self._fds):
            for attribute in dependency.lhs:
                self._uses[attribute].append(index)

    @property
    def fds(self) -> Sequence[FD]:
        """The fds this index was built over."""
        return tuple(self._fds)

    def closure(self, start: AttrsLike) -> frozenset[str]:
        """Compute ``start⁺`` with respect to the indexed fd set."""
        start_set = attrs(start)
        missing = [len(dependency.lhs) for dependency in self._fds]
        result: set[str] = set()
        frontier: list[str] = []

        def discover(attribute: str) -> None:
            if attribute not in result:
                result.add(attribute)
                frontier.append(attribute)

        for attribute in start_set:
            discover(attribute)
        while frontier:
            attribute = frontier.pop()
            for fd_index in self._uses.get(attribute, ()):
                missing[fd_index] -= 1
                if missing[fd_index] == 0:
                    for derived in self._fds[fd_index].rhs:
                        discover(derived)
        return frozenset(result)

    def implies(self, dependency: FD) -> bool:
        """True iff the indexed fd set logically implies ``dependency``."""
        return dependency.rhs <= self.closure(dependency.lhs)

    def determines(self, start: AttrsLike, target: AttrsLike) -> bool:
        """True iff ``start → target`` follows from the indexed fd set."""
        return attrs(target) <= self.closure(start)


def closure_linear(start: AttrsLike, fds: Iterable[FD]) -> frozenset[str]:
    """One-shot linear-time closure (builds a throwaway index)."""
    return ClosureIndex(fds).closure(start)


#: Default closure algorithm used across the library.
closure = closure_linear
