"""Armstrong-axiom derivations.

The closure algorithms decide *whether* ``F ⊨ X → Y``; this module
produces a human-readable *proof*: a sequence of Armstrong-axiom steps
(reflexivity, augmentation, transitivity, plus the derived union rule)
ending in the target dependency.  Proofs make the library's answers
auditable — the scheme-design advisor and the CLI print them — and the
test suite checks every produced proof step-by-step with an independent
verifier.

The construction mirrors the closure computation: each attribute ``A``
entering ``X⁺`` is justified by the member fd that produced it, and the
final proof composes those justifications through augmentation and
transitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.fd import FD
from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs
from repro.foundations.errors import DependencyError


@dataclass(frozen=True)
class Step:
    """One proof step: a dependency, the rule producing it, and the
    indices of earlier steps it uses (empty for axioms/premises)."""

    conclusion: FD
    rule: str
    premises: tuple[int, ...] = ()

    def render(self, index: int) -> str:
        refs = (
            " [" + ", ".join(str(p + 1) for p in self.premises) + "]"
            if self.premises
            else ""
        )
        return f"{index + 1:3d}. {self.conclusion}   ({self.rule}{refs})"


@dataclass(frozen=True)
class Derivation:
    """A complete derivation of ``target`` from ``premises``."""

    target: FD
    premises: FDSet
    steps: tuple[Step, ...]

    def render(self) -> str:
        lines = [f"derivation of {self.target}:"]
        lines.extend(step.render(i) for i, step in enumerate(self.steps))
        return "\n".join(lines)

    def conclusion(self) -> FD:
        return self.steps[-1].conclusion


class _ProofBuilder:
    """Accumulates steps, deduplicating identical conclusions."""

    def __init__(self) -> None:
        self.steps: list[Step] = []
        self._by_conclusion: dict[FD, int] = {}

    def add(self, conclusion: FD, rule: str, premises: tuple[int, ...] = ()) -> int:
        existing = self._by_conclusion.get(conclusion)
        if existing is not None:
            return existing
        self.steps.append(Step(conclusion, rule, premises))
        index = len(self.steps) - 1
        self._by_conclusion[conclusion] = index
        return index


def derive(target: FD, fds: FDsLike) -> Derivation:
    """Produce an Armstrong derivation of ``target`` from ``fds``.

    Raises :class:`DependencyError` when the target is not implied.

    Strategy: replay the attribute-closure computation of
    ``target.lhs``, maintaining a proof of ``X → C`` for the growing
    closure ``C``.  When a member fd ``L → R`` fires (``L ⊆ C``):

    1. ``C → L`` by reflexivity (decomposition of the running fd),
    2. ``X → L`` by transitivity,
    3. ``X → R`` by transitivity with the premise,
    4. ``X → C ∪ R`` by the union rule.

    Finally ``X → target.rhs`` follows by reflexivity + transitivity.
    """
    fd_set = FDSet(fds)
    if not fd_set.implies(target):
        raise DependencyError(f"{target} is not implied by {fd_set}")

    builder = _ProofBuilder()
    lhs = target.lhs
    # Running invariant: step `running` proves lhs -> closure.
    running = builder.add(FD(lhs, lhs), "reflexivity")
    closure = set(lhs)

    fired = True
    while fired and not target.rhs <= closure:
        fired = False
        for member in fd_set:
            if member.rhs <= closure or not member.lhs <= set(closure):
                continue
            premise = builder.add(member, "premise")
            narrowed = builder.add(
                FD(frozenset(closure), member.lhs),
                "reflexivity",
            )
            to_lhs = builder.add(
                FD(lhs, member.lhs), "transitivity", (running, narrowed)
            )
            to_rhs = builder.add(
                FD(lhs, member.rhs), "transitivity", (to_lhs, premise)
            )
            closure |= member.rhs
            running = builder.add(
                FD(lhs, frozenset(closure)), "union", (running, to_rhs)
            )
            fired = True

    if builder.steps[-1].conclusion != target:
        final_reflex = builder.add(
            FD(frozenset(closure), target.rhs), "reflexivity"
        )
        if builder.steps[-1].conclusion != target:
            # Force-append the closing step even when an identical
            # conclusion appeared earlier: the verifier (and readers)
            # expect the proof to END with the target.
            builder.steps.append(
                Step(target, "transitivity", (running, final_reflex))
            )
    return Derivation(
        target=target, premises=fd_set, steps=tuple(builder.steps)
    )


def verify_derivation(derivation: Derivation) -> bool:
    """Independently check a derivation step by step.

    Accepted rules: ``premise`` (must be a member of the premises),
    ``reflexivity`` (rhs ⊆ lhs), ``augmentation`` (premise's fd with the
    same set added on both sides), ``transitivity`` (X→Y and Y'→Z with
    Y' ⊆ Y gives X→Z, which is transitivity composed with
    decomposition), and ``union`` (X→Y, X→Z gives X→YZ).
    """
    steps = derivation.steps
    for index, step in enumerate(steps):
        if any(p >= index for p in step.premises):
            return False
        used = [steps[p].conclusion for p in step.premises]
        if step.rule == "premise":
            if step.conclusion not in derivation.premises:
                return False
        elif step.rule == "reflexivity":
            if not step.conclusion.rhs <= step.conclusion.lhs:
                return False
        elif step.rule == "augmentation":
            if len(used) != 1:
                return False
            base = used[0]
            added_lhs = step.conclusion.lhs - base.lhs
            if step.conclusion.lhs != base.lhs | added_lhs:
                return False
            if step.conclusion.rhs != base.rhs | added_lhs:
                return False
        elif step.rule == "transitivity":
            if len(used) != 2:
                return False
            first, second = used
            if first.lhs != step.conclusion.lhs:
                return False
            if not second.lhs <= first.rhs:
                return False
            if step.conclusion.rhs != second.rhs:
                return False
        elif step.rule == "union":
            if len(used) != 2:
                return False
            first, second = used
            if not (first.lhs == second.lhs == step.conclusion.lhs):
                return False
            if step.conclusion.rhs != first.rhs | second.rhs:
                return False
        else:
            return False
    return steps[-1].conclusion == derivation.target


def explain_key(
    scheme: AttrsLike, key: AttrsLike, fds: FDsLike
) -> Derivation:
    """A derivation showing ``key → scheme`` — why a declared key really
    is a key."""
    scheme_set = attrs(scheme)
    key_set = attrs(key)
    rest = scheme_set - key_set
    if not rest:
        target = FD(key_set, key_set)
    else:
        target = FD(key_set, rest)
    return derive(target, fds)
