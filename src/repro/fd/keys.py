"""Candidate keys.

A *key* of a relation scheme ``R`` with respect to fds ``F`` is a minimal
``K ⊆ R`` with ``K → R ∈ F⁺``; a *superkey* is any superset of a key
inside ``R`` (paper, Section 2.3).  :func:`candidate_keys` enumerates all
keys with the Lucchesi–Osborn algorithm, whose running time is polynomial
in the number of keys produced.
"""

from __future__ import annotations

from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs


def is_superkey(candidate: AttrsLike, scheme: AttrsLike, fds: FDsLike) -> bool:
    """True iff ``candidate ⊆ scheme`` and ``candidate → scheme ∈ F⁺``."""
    candidate_set = attrs(candidate)
    scheme_set = attrs(scheme)
    if not candidate_set <= scheme_set:
        return False
    return scheme_set <= FDSet(fds).closure(candidate_set)


def minimize_superkey(
    superkey: AttrsLike, scheme: AttrsLike, fds: FDsLike
) -> frozenset[str]:
    """Shrink ``superkey`` to a candidate key of ``scheme`` (deterministic:
    attributes are tried for removal in sorted order)."""
    fd_set = FDSet(fds)
    scheme_set = attrs(scheme)
    key = set(attrs(superkey))
    for attribute in sorted(attrs(superkey)):
        trial = frozenset(key - {attribute})
        if trial and scheme_set <= fd_set.closure(trial):
            key.discard(attribute)
    return frozenset(key)


def is_key(candidate: AttrsLike, scheme: AttrsLike, fds: FDsLike) -> bool:
    """True iff ``candidate`` is a *minimal* superkey of ``scheme``."""
    candidate_set = attrs(candidate)
    if not is_superkey(candidate_set, scheme, fds):
        return False
    return all(
        not is_superkey(candidate_set - {attribute}, scheme, fds)
        for attribute in candidate_set
    )


def candidate_keys(scheme: AttrsLike, fds: FDsLike) -> list[frozenset[str]]:
    """All candidate keys of ``scheme`` with respect to ``fds``.

    Lucchesi–Osborn: start from one minimized key; for each found key ``K``
    and each fd ``X → Y``, the set ``X ∪ (K − Y)`` is a superkey whose
    minimization may reveal a new key.

    The generation step is complete only when the fds speak about the
    scheme's own attributes, so ``fds`` is first replaced by a cover of
    its projection ``F⁺|scheme`` — keys induced through attributes
    outside the scheme (e.g. the key ``A`` of ``ACD`` under
    ``{A→B, B→C, C→AD}``) would otherwise be missed.  Superkey tests
    still use the original fds, which agree with the projection on
    subsets of the scheme.
    """
    from repro.fd.projection import project_fds

    scheme_set = attrs(scheme)
    fd_set = FDSet(fds)
    generator_fds = project_fds(fd_set, scheme_set)
    first = minimize_superkey(scheme_set, scheme_set, fd_set)
    keys = {first}
    queue = [first]
    while queue:
        key = queue.pop()
        for dependency in generator_fds:
            candidate = (dependency.lhs & scheme_set) | (key - dependency.rhs)
            if not candidate or not candidate <= scheme_set:
                continue
            if any(existing <= candidate for existing in keys):
                continue
            if not is_superkey(candidate, scheme_set, fd_set):
                continue
            new_key = minimize_superkey(candidate, scheme_set, fd_set)
            if new_key not in keys:
                keys.add(new_key)
                queue.append(new_key)
    return sorted(keys, key=lambda key: tuple(sorted(key)))
