"""Sets of functional dependencies.

:class:`FDSet` is the library's workhorse container: an immutable,
deduplicated collection of :class:`~repro.fd.fd.FD` with cached closure
machinery, implication and equivalence tests, and the set-algebra the
paper's algorithms need (``F − F_j`` in the independence test,
``F₁ ∪ ... ∪ F_k`` when merging block covers, and so on).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.fd.closure import ClosureIndex
from repro.fd.fd import FD, parse_fds
from repro.foundations.attrs import AttrsLike, attrs, union_all

FDsLike = Union["FDSet", str, Iterable[FD]]


class FDSet:
    """An immutable set of functional dependencies.

    Construction accepts another ``FDSet``, an iterable of :class:`FD`,
    or a string in arrow notation (``"A->B, B->C"``).
    """

    __slots__ = ("_fds", "_index", "_hash")

    def __init__(self, fds: FDsLike = ()) -> None:
        if isinstance(fds, FDSet):
            members: Iterable[FD] = fds._fds
        elif isinstance(fds, str):
            members = parse_fds(fds)
        else:
            members = fds
        unique = sorted(set(members))
        for member in unique:
            if not isinstance(member, FD):
                raise TypeError(f"FDSet members must be FD, got {member!r}")
        self._fds: tuple[FD, ...] = tuple(unique)
        self._index = ClosureIndex(self._fds)
        self._hash: int | None = None

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[FD]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, dependency: object) -> bool:
        return dependency in self._fds

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FDSet):
            return NotImplemented
        return self._fds == other._fds

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._fds)
        return self._hash

    def __or__(self, other: FDsLike) -> "FDSet":
        return FDSet(tuple(self._fds) + tuple(FDSet(other)._fds))

    def __sub__(self, other: FDsLike) -> "FDSet":
        removed = set(FDSet(other)._fds)
        return FDSet(member for member in self._fds if member not in removed)

    def __str__(self) -> str:
        return "{" + ", ".join(str(member) for member in self._fds) + "}"

    def __repr__(self) -> str:
        return f"FDSet({str(self)})"

    # -- semantics -----------------------------------------------------------
    @property
    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by any member fd."""
        return union_all(member.attributes for member in self._fds)

    def closure(self, start: AttrsLike) -> frozenset[str]:
        """Attribute closure ``start⁺`` with respect to this set."""
        return self._index.closure(start)

    def implies(self, dependency: FD) -> bool:
        """True iff this set logically implies ``dependency``."""
        return self._index.implies(dependency)

    def determines(self, start: AttrsLike, target: AttrsLike) -> bool:
        """True iff ``start → target`` is in the closure of this set."""
        return self._index.determines(start, target)

    def covers(self, other: FDsLike) -> bool:
        """True iff every fd of ``other`` follows from this set."""
        return all(self.implies(member) for member in FDSet(other))

    def equivalent_to(self, other: FDsLike) -> bool:
        """True iff the two sets have the same closure (are covers of each
        other, paper Section 2.3)."""
        other_set = FDSet(other)
        return self.covers(other_set) and other_set.covers(self)

    def nontrivial(self) -> "FDSet":
        """The subset of non-trivial member fds."""
        return FDSet(member for member in self._fds if not member.is_trivial())

    def split_rhs(self) -> "FDSet":
        """Equivalent set in which every fd has a singleton right-hand side."""
        return FDSet(
            singleton for member in self._fds for singleton in member.split_rhs()
        )

    def embedded_in(self, scheme: AttrsLike) -> "FDSet":
        """The member fds whose attributes all lie inside ``scheme``.

        Note this selects *member* fds only; use
        :func:`repro.fd.projection.project_fds` for the projection of the
        closure ``F⁺|R``.
        """
        scheme_set = attrs(scheme)
        return FDSet(
            member for member in self._fds if member.is_embedded_in(scheme_set)
        )

    def restricted_to(self, schemes: Iterable[AttrsLike]) -> "FDSet":
        """Member fds embedded in at least one of the given schemes."""
        scheme_sets = [attrs(scheme) for scheme in schemes]
        return FDSet(
            member
            for member in self._fds
            if any(member.attributes <= scheme for scheme in scheme_sets)
        )
