"""Key dependencies.

The paper assumes throughout that a cover of the fds is embedded in the
database scheme *as keys*: each relation scheme ``Ri`` carries a set of
declared candidate keys ``Ki``, and the constraint set is
``F = ∪ {K → Ri − K : K a declared key of Ri}`` (Section 2.3).  This
module converts declared keys into that fd set and validates the
declaration (keys must be minimal and mutually incomparable).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.fd.fd import FD
from repro.fd.fdset import FDSet, FDsLike
from repro.fd.keys import is_key
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, incomparable
from repro.foundations.errors import SchemaError


def key_dependencies_of(
    scheme: AttrsLike, keys: Iterable[AttrsLike]
) -> FDSet:
    """The key dependencies ``K → scheme − K`` for each declared key.

    Keys equal to the whole scheme contribute only trivial fds and yield
    an empty contribution (a relation scheme may legitimately be all-key).
    """
    scheme_set = attrs(scheme)
    deps: list[FD] = []
    for key in keys:
        key_set = attrs(key)
        if not key_set <= scheme_set:
            raise SchemaError(
                f"key {fmt_attrs(key_set)} not contained in scheme "
                f"{fmt_attrs(scheme_set)}"
            )
        rest = scheme_set - key_set
        if rest:
            deps.append(FD(key_set, rest))
    return FDSet(deps)


def key_dependencies(
    keys_by_scheme: Mapping[frozenset[str], Sequence[frozenset[str]]]
) -> FDSet:
    """Union of key dependencies over a whole database scheme."""
    union = FDSet()
    for scheme, keys in keys_by_scheme.items():
        union = union | key_dependencies_of(scheme, keys)
    return union


def validate_declared_keys(
    scheme: AttrsLike, keys: Sequence[AttrsLike], fds: FDsLike
) -> None:
    """Check a key declaration is sound with respect to ``fds``.

    Each declared key must be a candidate key of ``scheme`` (minimal
    superkey) and declared keys must be pairwise incomparable.  Raises
    :class:`SchemaError` on violation.
    """
    fd_set = FDSet(fds)
    scheme_set = attrs(scheme)
    key_sets = [attrs(key) for key in keys]
    for key in key_sets:
        if not is_key(key, scheme_set, fd_set):
            raise SchemaError(
                f"declared key {fmt_attrs(key)} is not a candidate key of "
                f"{fmt_attrs(scheme_set)}"
            )
    for i, left in enumerate(key_sets):
        for right in key_sets[i + 1 :]:
            if left != right and not incomparable(left, right):
                raise SchemaError(
                    f"declared keys {fmt_attrs(left)} and {fmt_attrs(right)} "
                    "are comparable; keys must be minimal"
                )
