"""Projection of fd sets onto a relation scheme.

``F⁺|R`` is the set of fds ``X → A ∈ F⁺`` with ``XA ⊆ R`` (paper,
Section 2.3).  Computing a *cover* of the projection requires closing
subsets of ``R`` — exponential in |R| in the worst case, which is the
textbook bound; relation schemes in this domain are small.
"""

from __future__ import annotations

from itertools import combinations

from repro.fd.fd import FD
from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs


def project_fds(fds: FDsLike, scheme: AttrsLike) -> FDSet:
    """A cover of ``F⁺|scheme`` with singleton right-hand sides.

    For every ``X ⊆ scheme`` we add ``X → A`` for each
    ``A ∈ (X⁺ ∩ scheme) − X``.  Non-minimal left-hand sides whose proper
    subset already yields the same attribute are pruned, keeping the
    output close to canonical without changing its closure.
    """
    fd_set = FDSet(fds)
    scheme_attrs = sorted(attrs(scheme))
    projected: list[FD] = []
    # Track, per derived attribute, the minimal LHSs found so far so we
    # can skip dominated (superset) LHSs.
    minimal_lhs: dict[str, list[frozenset[str]]] = {}
    for size in range(1, len(scheme_attrs) + 1):
        for subset in combinations(scheme_attrs, size):
            lhs = frozenset(subset)
            closure = fd_set.closure(lhs)
            for attribute in sorted((closure & attrs(scheme)) - lhs):
                dominated = any(
                    existing <= lhs for existing in minimal_lhs.get(attribute, ())
                )
                if dominated:
                    continue
                minimal_lhs.setdefault(attribute, []).append(lhs)
                projected.append(FD(lhs, frozenset({attribute})))
    return FDSet(projected)


def satisfies_projection(fds: FDsLike, scheme: AttrsLike, local: FDsLike) -> bool:
    """True iff ``local`` covers ``F⁺|scheme`` (used by the independence
    machinery: Lemma 4.1 requires each embedded cover to cover its own
    projection)."""
    return FDSet(local).covers(project_fds(fds, scheme))
