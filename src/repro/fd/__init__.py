"""Functional-dependency theory: fds, closures, covers, keys, projections
and normal forms (paper, Section 2.3)."""

from repro.fd.armstrong import (
    Derivation,
    Step,
    derive,
    explain_key,
    verify_derivation,
)
from repro.fd.closure import ClosureIndex, closure, closure_linear, closure_naive
from repro.fd.cover import is_cover, minimal_cover, remove_extraneous_lhs
from repro.fd.fd import FD, fd, parse_fd, parse_fds
from repro.fd.fdset import FDSet, FDsLike
from repro.fd.keydeps import (
    key_dependencies,
    key_dependencies_of,
    validate_declared_keys,
)
from repro.fd.keys import candidate_keys, is_key, is_superkey, minimize_superkey
from repro.fd.normal_forms import (
    database_scheme_is_bcnf,
    scheme_is_3nf,
    scheme_is_bcnf,
)
from repro.fd.projection import project_fds, satisfies_projection

__all__ = [
    "Derivation",
    "FD",
    "Step",
    "derive",
    "explain_key",
    "verify_derivation",
    "FDSet",
    "FDsLike",
    "ClosureIndex",
    "closure",
    "closure_linear",
    "closure_naive",
    "candidate_keys",
    "database_scheme_is_bcnf",
    "fd",
    "is_cover",
    "is_key",
    "is_superkey",
    "key_dependencies",
    "key_dependencies_of",
    "minimal_cover",
    "minimize_superkey",
    "parse_fd",
    "parse_fds",
    "project_fds",
    "remove_extraneous_lhs",
    "satisfies_projection",
    "scheme_is_3nf",
    "scheme_is_bcnf",
    "validate_declared_keys",
]
