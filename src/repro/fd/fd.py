"""Functional dependencies.

A functional dependency (fd) ``X → Y`` over a universe ``U`` states that
any relation on ``U`` in which two tuples agree on every attribute of
``X`` must also agree on every attribute of ``Y`` (paper, Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs
from repro.foundations.errors import DependencyError


@dataclass(frozen=True)
class FD:
    """An immutable functional dependency ``lhs → rhs``.

    ``lhs`` must be non-empty; ``rhs`` may overlap ``lhs`` (such attributes
    are trivially implied and tolerated for convenience).  FDs carry a
    deterministic total order (by sorted renderings) so fd sets sort
    reproducibly.
    """

    lhs: frozenset[str]
    rhs: frozenset[str]

    def __init__(self, lhs: AttrsLike, rhs: AttrsLike) -> None:
        lhs_set = attrs(lhs)
        rhs_set = attrs(rhs)
        if not lhs_set:
            raise DependencyError("fd left-hand side must be non-empty")
        if not rhs_set:
            raise DependencyError("fd right-hand side must be non-empty")
        object.__setattr__(self, "lhs", lhs_set)
        object.__setattr__(self, "rhs", rhs_set)

    def _sort_key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        return (tuple(sorted(self.lhs)), tuple(sorted(self.rhs)))

    def __lt__(self, other: "FD") -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "FD") -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "FD") -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "FD") -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    @property
    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by the dependency (``lhs ∪ rhs``)."""
        return self.lhs | self.rhs

    def is_trivial(self) -> bool:
        """True iff ``rhs ⊆ lhs`` (implied by reflexivity alone)."""
        return self.rhs <= self.lhs

    def is_embedded_in(self, scheme: AttrsLike) -> bool:
        """True iff ``lhs ∪ rhs`` is contained in ``scheme`` (Section 2.3)."""
        return self.attributes <= attrs(scheme)

    def split_rhs(self) -> list["FD"]:
        """Decompose ``X → A1...Ak`` into singleton-rhs fds ``X → Ai``."""
        return [FD(self.lhs, frozenset({a})) for a in sorted(self.rhs)]

    def __str__(self) -> str:
        return f"{fmt_attrs(self.lhs)}→{fmt_attrs(self.rhs)}"

    def __repr__(self) -> str:
        return f"FD({fmt_attrs(self.lhs)!r}, {fmt_attrs(self.rhs)!r})"


def fd(lhs: AttrsLike, rhs: AttrsLike) -> FD:
    """Shorthand constructor: ``fd("AB", "C")`` is ``FD({A,B}, {C})``."""
    return FD(lhs, rhs)


def parse_fd(text: str) -> FD:
    """Parse the paper's arrow notation, e.g. ``"AB->C"`` or ``"AB→C"``.

    Attribute names are single characters in this notation.
    """
    for arrow in ("→", "->"):
        if arrow in text:
            lhs_text, rhs_text = text.split(arrow, 1)
            return FD(lhs_text.strip(), rhs_text.strip())
    raise DependencyError(f"cannot parse fd from {text!r}: no arrow found")


def parse_fds(text: str) -> list[FD]:
    """Parse a comma/semicolon-separated list of fds in arrow notation.

    >>> [str(d) for d in parse_fds("A->B, B->C")]
    ['A→B', 'B→C']
    """
    pieces: Iterable[str] = (
        piece for chunk in text.split(";") for piece in chunk.split(",")
    )
    return [parse_fd(piece) for piece in pieces if piece.strip()]
