"""Normal-form tests.

A database scheme ``R`` is in BCNF with respect to ``F`` when for every
non-trivial ``X → Y ∈ F⁺`` embedded in some ``Ri``, ``X`` is a superkey
of ``Ri`` (paper, Section 2.3).  3NF is provided as a substrate utility
for the workload generators.
"""

from __future__ import annotations

from typing import Iterable

from repro.fd.fdset import FDSet, FDsLike
from repro.fd.keys import candidate_keys, is_superkey
from repro.fd.projection import project_fds
from repro.foundations.attrs import AttrsLike, attrs


def scheme_is_bcnf(scheme: AttrsLike, fds: FDsLike) -> bool:
    """True iff relation scheme ``scheme`` is in BCNF with respect to
    ``fds``: every non-trivial projected fd has a superkey left-hand side."""
    scheme_set = attrs(scheme)
    fd_set = FDSet(fds)
    for dependency in project_fds(fd_set, scheme_set).nontrivial():
        if not is_superkey(dependency.lhs, scheme_set, fd_set):
            return False
    return True


def database_scheme_is_bcnf(schemes: Iterable[AttrsLike], fds: FDsLike) -> bool:
    """True iff every relation scheme of the database scheme is in BCNF."""
    fd_set = FDSet(fds)
    return all(scheme_is_bcnf(scheme, fd_set) for scheme in schemes)


def scheme_is_3nf(scheme: AttrsLike, fds: FDsLike) -> bool:
    """True iff ``scheme`` is in 3NF: every non-trivial projected fd has a
    superkey left-hand side or a prime (key-member) right-hand side."""
    scheme_set = attrs(scheme)
    fd_set = FDSet(fds)
    prime = frozenset(
        attribute for key in candidate_keys(scheme_set, fd_set) for attribute in key
    )
    for dependency in project_fds(fd_set, scheme_set).nontrivial():
        if is_superkey(dependency.lhs, scheme_set, fd_set):
            continue
        if not dependency.rhs <= prime | dependency.lhs:
            return False
    return True
