"""Covers and minimal covers of fd sets.

``G`` is a *cover* of ``F`` when ``F⁺ = G⁺`` (paper, Section 2.3).  A
*minimal* (canonical) cover has singleton right-hand sides, no redundant
fds and no extraneous left-hand-side attributes.  Minimal covers are used
by the workload generators and by tests that validate cover-embedding.
"""

from __future__ import annotations

from repro.fd.fd import FD
from repro.fd.fdset import FDSet, FDsLike


def remove_extraneous_lhs(dependency: FD, fds: FDSet) -> FD:
    """Drop left-hand-side attributes that are redundant under ``fds``.

    An attribute ``B ∈ X`` is extraneous in ``X → A`` when
    ``(X − B) → A`` already follows from ``fds``.
    """
    lhs = set(dependency.lhs)
    for attribute in sorted(dependency.lhs):
        if len(lhs) == 1:
            break
        candidate = frozenset(lhs - {attribute})
        if fds.determines(candidate, dependency.rhs):
            lhs.discard(attribute)
    return FD(frozenset(lhs), dependency.rhs)


def minimal_cover(fds: FDsLike) -> FDSet:
    """Compute a minimal (canonical) cover of ``fds``.

    The result has singleton right-hand sides, left-reduced fds and no
    member implied by the others.  Equivalence with the input is a library
    invariant (checked by property-based tests).
    """
    working = FDSet(fds).split_rhs().nontrivial()
    # Left-reduce each fd against the full set.
    reduced = FDSet(
        remove_extraneous_lhs(member, working) for member in working
    ).nontrivial()
    # Drop redundant members one at a time (order fixed by FDSet sorting,
    # so the result is deterministic).
    members = list(reduced)
    kept: list[FD] = list(members)
    for member in members:
        remainder = FDSet(other for other in kept if other != member)
        if remainder.implies(member):
            kept.remove(member)
    return FDSet(kept)


def is_cover(candidate: FDsLike, fds: FDsLike) -> bool:
    """True iff ``candidate`` is a cover of ``fds`` (``F⁺ = G⁺``)."""
    return FDSet(candidate).equivalent_to(FDSet(fds))
