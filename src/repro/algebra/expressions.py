"""Relational-algebra expressions.

The paper's boundedness and maintainability results hinge on
*predetermined relational expressions*: expressions built from the
database scheme alone whose evaluation on any consistent state yields
total projections (Corollary 3.1(b), Theorem 4.1) or the single tuples
a maintenance step must examine (Theorem 3.2).  This module provides an
expression AST — relation references, natural joins, projections,
unions and conjunctive selections — with deterministic pretty-printing
in the paper's notation and evaluation over database states.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence, Union

from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, sorted_attrs
from repro.foundations.errors import StateError
from repro.state.relation import Relation

#: What expressions evaluate against: a state-like mapping of relation
#: name to Relation (a DatabaseState also satisfies this protocol via
#: __getitem__).
RelationSource = Mapping[str, Relation]


class Expression:
    """Base class for relational-algebra expressions."""

    #: The output attributes of the expression.
    attributes: frozenset[str]

    def evaluate(self, source: RelationSource) -> Relation:
        """Evaluate against stored relations."""
        raise NotImplementedError

    def relation_names(self) -> frozenset[str]:
        """All base relations mentioned by the expression."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class RelationRef(Expression):
    """A reference to a stored relation."""

    def __init__(self, name: str, attributes: AttrsLike) -> None:
        self.name = name
        self.attributes = attrs(attributes)

    def evaluate(self, source: RelationSource) -> Relation:
        relation = source[self.name]
        if relation.attributes != self.attributes:
            raise StateError(
                f"stored relation {self.name} has attributes "
                f"{fmt_attrs(relation.attributes)}, expression expects "
                f"{fmt_attrs(self.attributes)}"
            )
        return relation

    def relation_names(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


class LiteralRelation(Expression):
    """An inline constant relation (e.g. an inserted tuple)."""

    def __init__(self, relation: Relation, label: str = "τ") -> None:
        self.relation = relation
        self.attributes = relation.attributes
        self.label = label

    def evaluate(self, source: RelationSource) -> Relation:
        return self.relation

    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return self.label


class NaturalJoin(Expression):
    """The natural join of two or more expressions (``⋈``)."""

    def __init__(self, operands: Sequence[Expression]) -> None:
        if len(operands) < 2:
            raise StateError("a join needs at least two operands")
        self.operands = tuple(operands)
        out: frozenset[str] = frozenset()
        for operand in operands:
            out = out | operand.attributes
        self.attributes = out

    def evaluate(self, source: RelationSource) -> Relation:
        result = self.operands[0].evaluate(source)
        for operand in self.operands[1:]:
            result = join_relations(result, operand.evaluate(source))
        return result

    def relation_names(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for operand in self.operands:
            names = names | operand.relation_names()
        return names

    def __str__(self) -> str:
        parts = [
            f"({operand})" if isinstance(operand, (NaturalJoin, UnionExpr)) else str(operand)
            for operand in self.operands
        ]
        return " ⋈ ".join(parts)


class Project(Expression):
    """Projection ``π_X`` onto a subset of the operand's attributes."""

    def __init__(self, operand: Expression, attributes: AttrsLike) -> None:
        target = attrs(attributes)
        if not target <= operand.attributes:
            raise StateError(
                f"cannot project {fmt_attrs(operand.attributes)} onto "
                f"{fmt_attrs(target)}"
            )
        self.operand = operand
        self.attributes = target

    def evaluate(self, source: RelationSource) -> Relation:
        return project_relation(self.operand.evaluate(source), self.attributes)

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def __str__(self) -> str:
        return f"π_{fmt_attrs(self.attributes)}({self.operand})"


class UnionExpr(Expression):
    """Union of expressions over the same output attributes."""

    def __init__(self, operands: Sequence[Expression]) -> None:
        if not operands:
            raise StateError("a union needs at least one operand")
        first = operands[0].attributes
        for operand in operands[1:]:
            if operand.attributes != first:
                raise StateError("union operands must share attributes")
        self.operands = tuple(operands)
        self.attributes = first

    def evaluate(self, source: RelationSource) -> Relation:
        result = self.operands[0].evaluate(source)
        for operand in self.operands[1:]:
            result = result.union(operand.evaluate(source))
        return result

    def relation_names(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for operand in self.operands:
            names = names | operand.relation_names()
        return names

    def __str__(self) -> str:
        return " ∪ ".join(
            f"({operand})" if isinstance(operand, UnionExpr) else str(operand)
            for operand in self.operands
        )


class Select(Expression):
    """Conjunctive selection ``σ_{A='a' ∧ ...}`` (paper, Section 2.7)."""

    def __init__(
        self, operand: Expression, equalities: Mapping[str, Hashable]
    ) -> None:
        condition = dict(equalities)
        unknown = set(condition) - set(operand.attributes)
        if unknown:
            raise StateError(
                f"selection on attributes outside the operand: {sorted(unknown)}"
            )
        self.operand = operand
        self.equalities = condition
        self.attributes = operand.attributes

    def evaluate(self, source: RelationSource) -> Relation:
        return select_relation(self.operand.evaluate(source), self.equalities)

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def constants(self) -> set[Hashable]:
        """``CST(Φ)``: the constants mentioned by the selection formula."""
        return set(self.equalities.values())

    def __str__(self) -> str:
        condition = " ∧ ".join(
            f"{attribute}='{value}'"
            for attribute, value in sorted(self.equalities.items())
        )
        return f"σ_{{{condition}}}({self.operand})"


# -- evaluation primitives ------------------------------------------------------


def join_relations(left: Relation, right: Relation) -> Relation:
    """Natural join (hash join on the common attributes; a cartesian
    product when the attribute sets are disjoint)."""
    common = sorted(left.attributes & right.attributes)
    output_attributes = left.attributes | right.attributes
    index: dict[tuple, list[dict]] = {}
    for row in right:
        key = tuple(row[a] for a in common)
        index.setdefault(key, []).append(row)
    joined = []
    for row in left:
        key = tuple(row[a] for a in common)
        for match in index.get(key, ()):
            merged = dict(match)
            merged.update(row)
            joined.append(merged)
    return Relation(output_attributes, joined)


def project_relation(relation: Relation, attributes: AttrsLike) -> Relation:
    """Projection onto a subset of the relation's attributes."""
    target = attrs(attributes)
    if not target <= relation.attributes:
        raise StateError("projection outside the relation's attributes")
    ordered = sorted_attrs(target)
    return Relation(
        target, ({a: row[a] for a in ordered} for row in relation)
    )


def select_relation(
    relation: Relation, equalities: Mapping[str, Hashable]
) -> Relation:
    """Conjunctive selection by attribute-equals-constant conditions."""
    items = list(equalities.items())
    return Relation(
        relation.attributes,
        (
            row
            for row in relation
            if all(row[attribute] == value for attribute, value in items)
        ),
    )


# -- convenience constructors -----------------------------------------------------


def ref(name: str, attributes: AttrsLike) -> RelationRef:
    return RelationRef(name, attributes)


def join_all(operands: Sequence[Expression]) -> Expression:
    """Join a sequence of expressions (identity for a single operand)."""
    if len(operands) == 1:
        return operands[0]
    return NaturalJoin(list(operands))


def union_all_exprs(operands: Sequence[Expression]) -> Expression:
    """Union a sequence of expressions (identity for a single operand)."""
    if len(operands) == 1:
        return operands[0]
    return UnionExpr(list(operands))
