"""Relational-algebra expressions.

The paper's boundedness and maintainability results hinge on
*predetermined relational expressions*: expressions built from the
database scheme alone whose evaluation on any consistent state yields
total projections (Corollary 3.1(b), Theorem 4.1) or the single tuples
a maintenance step must examine (Theorem 3.2).  This module provides an
expression AST — relation references, natural joins, projections,
unions and conjunctive selections — with deterministic pretty-printing
in the paper's notation and evaluation over database states.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, sorted_attrs
from repro.foundations.errors import StateError
from repro.obs.spans import span
from repro.state.relation import Relation

#: What expressions evaluate against: a state-like mapping of relation
#: name to Relation (a DatabaseState also satisfies this protocol via
#: __getitem__).
RelationSource = Mapping[str, Relation]


class Expression:
    """Base class for relational-algebra expressions."""

    #: The output attributes of the expression.
    attributes: frozenset[str]

    def evaluate(self, source: RelationSource) -> Relation:
        """Evaluate against stored relations."""
        raise NotImplementedError

    def relation_names(self) -> frozenset[str]:
        """All base relations mentioned by the expression."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class RelationRef(Expression):
    """A reference to a stored relation."""

    def __init__(self, name: str, attributes: AttrsLike) -> None:
        self.name = name
        self.attributes = attrs(attributes)

    def evaluate(self, source: RelationSource) -> Relation:
        relation = source[self.name]
        if relation.attributes != self.attributes:
            raise StateError(
                f"stored relation {self.name} has attributes "
                f"{fmt_attrs(relation.attributes)}, expression expects "
                f"{fmt_attrs(self.attributes)}"
            )
        return relation

    def relation_names(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


class LiteralRelation(Expression):
    """An inline constant relation (e.g. an inserted tuple)."""

    def __init__(self, relation: Relation, label: str = "τ") -> None:
        self.relation = relation
        self.attributes = relation.attributes
        self.label = label

    def evaluate(self, source: RelationSource) -> Relation:
        return self.relation

    def relation_names(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return self.label


class NaturalJoin(Expression):
    """The natural join of two or more expressions (``⋈``)."""

    def __init__(self, operands: Sequence[Expression]) -> None:
        if len(operands) < 2:
            raise StateError("a join needs at least two operands")
        self.operands = tuple(operands)
        out: frozenset[str] = frozenset()
        for operand in operands:
            out = out | operand.attributes
        self.attributes = out

    def evaluate(self, source: RelationSource) -> Relation:
        return evaluate_natural_join(
            [operand.evaluate(source) for operand in self.operands]
        )

    def relation_names(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for operand in self.operands:
            names = names | operand.relation_names()
        return names

    def __str__(self) -> str:
        parts = [
            f"({operand})" if isinstance(operand, (NaturalJoin, UnionExpr)) else str(operand)
            for operand in self.operands
        ]
        return " ⋈ ".join(parts)


class Project(Expression):
    """Projection ``π_X`` onto a subset of the operand's attributes."""

    def __init__(self, operand: Expression, attributes: AttrsLike) -> None:
        target = attrs(attributes)
        if not target <= operand.attributes:
            raise StateError(
                f"cannot project {fmt_attrs(operand.attributes)} onto "
                f"{fmt_attrs(target)}"
            )
        self.operand = operand
        self.attributes = target

    def evaluate(self, source: RelationSource) -> Relation:
        operand = self.operand
        if isinstance(operand, NaturalJoin):
            # Projection pushdown: evaluate the join's operands, trim
            # every column that neither the target nor the join
            # conditions need, then join the narrowed relations.
            joined = evaluate_natural_join(
                [inner.evaluate(source) for inner in operand.operands],
                needed=self.attributes,
            )
            return project_relation(joined, self.attributes)
        return project_relation(operand.evaluate(source), self.attributes)

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def __str__(self) -> str:
        return f"π_{fmt_attrs(self.attributes)}({self.operand})"


class UnionExpr(Expression):
    """Union of expressions over the same output attributes."""

    def __init__(self, operands: Sequence[Expression]) -> None:
        if not operands:
            raise StateError("a union needs at least one operand")
        first = operands[0].attributes
        for operand in operands[1:]:
            if operand.attributes != first:
                raise StateError("union operands must share attributes")
        self.operands = tuple(operands)
        self.attributes = first

    def evaluate(self, source: RelationSource) -> Relation:
        result = self.operands[0].evaluate(source)
        for operand in self.operands[1:]:
            result = result.union(operand.evaluate(source))
        return result

    def relation_names(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for operand in self.operands:
            names = names | operand.relation_names()
        return names

    def __str__(self) -> str:
        return " ∪ ".join(
            f"({operand})" if isinstance(operand, UnionExpr) else str(operand)
            for operand in self.operands
        )


class Select(Expression):
    """Conjunctive selection ``σ_{A='a' ∧ ...}`` (paper, Section 2.7)."""

    def __init__(
        self, operand: Expression, equalities: Mapping[str, Hashable]
    ) -> None:
        condition = dict(equalities)
        unknown = set(condition) - set(operand.attributes)
        if unknown:
            raise StateError(
                f"selection on attributes outside the operand: {sorted(unknown)}"
            )
        self.operand = operand
        self.equalities = condition
        self.attributes = operand.attributes

    def evaluate(self, source: RelationSource) -> Relation:
        return select_relation(self.operand.evaluate(source), self.equalities)

    def relation_names(self) -> frozenset[str]:
        return self.operand.relation_names()

    def constants(self) -> set[Hashable]:
        """``CST(Φ)``: the constants mentioned by the selection formula."""
        return set(self.equalities.values())

    def __str__(self) -> str:
        condition = " ∧ ".join(
            f"{attribute}='{value}'"
            for attribute, value in sorted(self.equalities.items())
        )
        return f"σ_{{{condition}}}({self.operand})"


# -- evaluation primitives ------------------------------------------------------
#
# All primitives work directly on the Relation-internal value vectors
# (``columns``/``row_vectors``) and rebuild results through
# ``Relation.from_vectors`` — no per-tuple dict is ever materialized.
# ``join_relations_naive`` preserves the original dict-row hash join as
# the differential-test oracle.


def join_relations(left: Relation, right: Relation) -> Relation:
    """Natural join (hash join on the common attributes; a cartesian
    product when the attribute sets are disjoint).

    The smaller operand is indexed, the larger one probes; output
    vectors are emitted directly in canonical attribute order.
    """
    if len(right) > len(left):
        left, right = right, left
    left_columns = left.columns
    right_columns = right.columns
    left_position = {a: i for i, a in enumerate(left_columns)}
    right_position = {a: i for i, a in enumerate(right_columns)}
    common = sorted(left.attributes & right.attributes)
    left_key = [left_position[a] for a in common]
    right_key = [right_position[a] for a in common]
    output_attributes = left.attributes | right.attributes
    order = tuple(sorted_attrs(output_attributes))
    # For each output column: take from the probe row when the attribute
    # is the left's (shared attributes agree on both sides), else from
    # the indexed row.
    takers = [
        (0, left_position[a]) if a in left_position else (1, right_position[a])
        for a in order
    ]
    with span("join.hash") as sp:
        index: dict[tuple, list[tuple]] = {}
        index_setdefault = index.setdefault
        for row in right.row_vectors:
            index_setdefault(tuple(row[i] for i in right_key), []).append(row)
        joined: list[tuple] = []
        append = joined.append
        for row in left.row_vectors:
            bucket = index.get(tuple(row[i] for i in left_key))
            if bucket is not None:
                for match in bucket:
                    pair = (row, match)
                    append(tuple(pair[side][i] for side, i in takers))
        if sp:
            sp.add("build_tuples", len(right))
            sp.add("probe_tuples", len(left))
            sp.add("tuples_out", len(joined))
    return Relation.from_vectors(output_attributes, order, joined)


def join_relations_naive(left: Relation, right: Relation) -> Relation:
    """The original dict-row natural join, kept verbatim as the oracle
    the differential tests race :func:`join_relations` and
    :func:`evaluate_natural_join` against."""
    common = sorted(left.attributes & right.attributes)
    output_attributes = left.attributes | right.attributes
    index: dict[tuple, list[dict]] = {}
    for row in right:
        key = tuple(row[a] for a in common)
        index.setdefault(key, []).append(row)
    joined = []
    for row in left:
        key = tuple(row[a] for a in common)
        for match in index.get(key, ()):
            merged = dict(match)
            merged.update(row)
            joined.append(merged)
    return Relation(output_attributes, joined)


def project_relation(relation: Relation, attributes: AttrsLike) -> Relation:
    """Projection onto a subset of the relation's attributes."""
    target = attrs(attributes)
    if target == relation.attributes:
        return relation
    if not target <= relation.attributes:
        raise StateError("projection outside the relation's attributes")
    order = tuple(sorted_attrs(target))
    columns = relation.columns
    positions = [columns.index(a) for a in order]
    return Relation.from_vectors(
        target,
        order,
        {tuple(row[i] for i in positions) for row in relation.row_vectors},
    )


def select_relation(
    relation: Relation, equalities: Mapping[str, Hashable]
) -> Relation:
    """Conjunctive selection by attribute-equals-constant conditions.

    Condition attributes are validated up front: a condition naming an
    attribute outside the relation raises :class:`StateError` instead of
    silently selecting nothing (or crashing row by row).
    """
    condition = dict(equalities)
    unknown = set(condition) - set(relation.attributes)
    if unknown:
        raise StateError(
            "selection on attributes outside the relation: "
            f"{sorted(unknown)} not in {fmt_attrs(relation.attributes)}"
        )
    columns = relation.columns
    tests = [(columns.index(a), value) for a, value in condition.items()]
    return Relation.from_vectors(
        relation.attributes,
        columns,
        (
            row
            for row in relation.row_vectors
            if all(row[i] == value for i, value in tests)
        ),
    )


def _semijoin(left: Relation, right: Relation) -> Relation:
    """Semi-join reduction ``left ⋉ right``: the left rows whose common
    attribute values appear in ``right``.  Identity when the attribute
    sets are disjoint or nothing is filtered."""
    common = sorted(left.attributes & right.attributes)
    if not common:
        return left
    left_columns = left.columns
    right_columns = right.columns
    left_key = [left_columns.index(a) for a in common]
    right_key = [right_columns.index(a) for a in common]
    seen = {tuple(row[i] for i in right_key) for row in right.row_vectors}
    kept = [
        row
        for row in left.row_vectors
        if tuple(row[i] for i in left_key) in seen
    ]
    if len(kept) == len(left.row_vectors):
        return left
    return Relation.from_vectors(left.attributes, left_columns, kept)


def evaluate_natural_join(
    relations: Sequence[Relation],
    needed: AttrsLike | None = None,
) -> Relation:
    """Natural join of many relations with the optimizer pipeline.

    Three stages before any full join runs:

    1. *Projection pushdown* (when ``needed`` is given): every operand is
       trimmed to the attributes the caller needs plus those shared with
       another operand (the join conditions), keeping at least one column
       so an empty operand still annihilates the result.
    2. *Semi-join reduction*: each operand is reduced by every other
       operand it shares attributes with, so dangling tuples never reach
       a full join.
    3. *Greedy join ordering*: fold starting from the smallest operand,
       always preferring the smallest operand connected to the
       attributes already joined (avoiding accidental cartesian
       products; a genuine cartesian product is deferred to the end).
    """
    if not relations:
        raise StateError("a join needs at least one relation")
    if len(relations) == 1:
        relation = relations[0]
        if needed is not None:
            return project_relation(relation, attrs(needed) & relation.attributes)
        return relation
    with span("join.pipeline") as sp:
        if sp:
            sp.add("operands", len(relations))
            sp.add("tuples_in", sum(len(relation) for relation in relations))
        output_attributes: frozenset[str] = frozenset()
        for relation in relations:
            output_attributes = output_attributes | relation.attributes

        if needed is not None:
            tally: dict[str, int] = {}
            for relation in relations:
                for attribute in relation.attributes:
                    tally[attribute] = tally.get(attribute, 0) + 1
            keep_base = attrs(needed) | {
                attribute for attribute, uses in tally.items() if uses > 1
            }
            relations = [
                relation
                if relation.attributes <= keep_base
                else project_relation(
                    relation,
                    (relation.attributes & keep_base)
                    or {min(relation.attributes)},
                )
                for relation in relations
            ]

        reduced = list(relations)
        count = len(reduced)
        for i in range(count):
            left = reduced[i]
            for j in range(count):
                if i != j:
                    left = _semijoin(left, reduced[j])
            reduced[i] = left
        if sp:
            sp.add(
                "tuples_after_semijoin",
                sum(len(relation) for relation in reduced),
            )
        if any(not relation for relation in reduced):
            # An annihilated operand empties the whole join, cartesian or not.
            if sp:
                sp.add("annihilated", 1)
            return Relation(output_attributes)

        pending = sorted(range(count), key=lambda i: len(reduced[i]))
        first = pending.pop(0)
        result = reduced[first]
        joined_attributes = set(result.attributes)
        while pending:
            connected = [
                i for i in pending if reduced[i].attributes & joined_attributes
            ]
            choice = connected[0] if connected else pending[0]
            pending.remove(choice)
            result = join_relations(result, reduced[choice])
            joined_attributes |= reduced[choice].attributes
        if sp:
            sp.add("tuples_out", len(result))
        return result


# -- convenience constructors -----------------------------------------------------


def ref(name: str, attributes: AttrsLike) -> RelationRef:
    return RelationRef(name, attributes)


def join_all(operands: Sequence[Expression]) -> Expression:
    """Join a sequence of expressions (identity for a single operand)."""
    if len(operands) == 1:
        return operands[0]
    return NaturalJoin(list(operands))


def union_all_exprs(operands: Sequence[Expression]) -> Expression:
    """Union a sequence of expressions (identity for a single operand)."""
    if len(operands) == 1:
        return operands[0]
    return UnionExpr(list(operands))
