"""A small relational-algebra engine: expression ASTs, evaluation over
states, and extension-join construction (paper, Sections 2.6, 3.1, 4.1)."""

from repro.algebra.expressions import (
    Expression,
    LiteralRelation,
    NaturalJoin,
    Project,
    RelationRef,
    RelationSource,
    Select,
    UnionExpr,
    evaluate_natural_join,
    join_all,
    join_relations,
    join_relations_naive,
    project_relation,
    ref,
    select_relation,
    union_all_exprs,
)
from repro.algebra.extension_join import (
    extension_join_order,
    sequential_join_expression,
)

__all__ = [
    "Expression",
    "LiteralRelation",
    "NaturalJoin",
    "Project",
    "RelationRef",
    "RelationSource",
    "Select",
    "UnionExpr",
    "evaluate_natural_join",
    "extension_join_order",
    "join_all",
    "join_relations",
    "join_relations_naive",
    "project_relation",
    "ref",
    "select_relation",
    "sequential_join_expression",
    "union_all_exprs",
]
