"""Extension joins and sequential join enumeration (paper, Section 2.6).

An extension join glues a relation onto an accumulated expression along
attributes that functionally determine the new attributes; under the
paper's embedded-key assumption this specializes to: the new relation's
intersection with the accumulated attribute set contains one of its
declared keys.  A *sequential* join orders distinct relation schemes so
that each join step is an extension join — these are exactly the access
paths Sagiv's independent-scheme query evaluation and the paper's
Theorem 4.1 use.

The subsets of a scheme that admit such an ordering coincide with the
rooted lossless subsets of :mod:`repro.schema.lossless`; here we expose
the *orderings* and turn subsets into executable expressions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.algebra.expressions import (
    Expression,
    Project,
    RelationRef,
    join_all,
)
from repro.foundations.attrs import AttrsLike, attrs
from repro.foundations.errors import SchemaError
from repro.schema.relation_scheme import RelationScheme


def extension_join_order(
    subset: Sequence[RelationScheme],
) -> Optional[list[RelationScheme]]:
    """Order a set of relation schemes as a sequential extension join.

    The first scheme is arbitrary among valid roots; every later scheme
    must have a declared key inside the union of its predecessors'
    attributes.  Returns None when no ordering exists (the subset is not
    lossless / not an extension-join set).
    """
    remaining = list(subset)
    for root_index, root in enumerate(remaining):
        order = [root]
        covered = set(root.attributes)
        pool = remaining[:root_index] + remaining[root_index + 1 :]
        progressed = True
        while pool and progressed:
            progressed = False
            for candidate in list(pool):
                if any(key <= covered for key in candidate.keys):
                    order.append(candidate)
                    covered |= candidate.attributes
                    pool.remove(candidate)
                    progressed = True
        if not pool:
            return order
    return None


def sequential_join_expression(
    subset: Sequence[RelationScheme],
    project_onto: Optional[AttrsLike] = None,
) -> Expression:
    """Build the (optionally projected) sequential join expression of an
    extension-join set of relation schemes.

    Raises :class:`SchemaError` when the subset admits no extension-join
    ordering.
    """
    order = extension_join_order(subset)
    if order is None:
        raise SchemaError(
            "subset admits no sequential extension-join ordering: "
            + ", ".join(member.name for member in subset)
        )
    expression: Expression = join_all(
        [RelationRef(member.name, member.attributes) for member in order]
    )
    if project_onto is not None:
        expression = Project(expression, attrs(project_onto))
    return expression
