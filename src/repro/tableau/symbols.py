"""Tableau symbols.

A tableau column over attribute ``A`` may hold the distinguished variable
``a_A``, one of countably many nondistinguished variables ``b_j``, or a
constant from ``dom(A)`` (paper, Section 2.2).  Symbols are represented as
small tagged tuples so they are hashable, cheap and deterministic:

* constant ``c``        → ``("c", value)``
* distinguished ``a_A`` → ``("a", attribute)``
* nondistinguished b_j  → ``("b", j)``

The fd-rule's renaming discipline induces a precedence — constants beat
distinguished variables beat nondistinguished variables, and between two
nondistinguished variables the lower subscript wins (Section 2.3).
:func:`preferred` implements exactly that ordering.
"""

from __future__ import annotations

from itertools import count
from typing import Hashable, Iterator, Tuple

Symbol = Tuple[str, Hashable]

KIND_CONSTANT = "c"
KIND_DV = "a"
KIND_NDV = "b"

#: Merge precedence by kind; lower value wins a merge.
_PRECEDENCE = {KIND_CONSTANT: 0, KIND_DV: 1, KIND_NDV: 2}


def constant(value: Hashable) -> Symbol:
    """The symbol for constant ``value``."""
    return (KIND_CONSTANT, value)


def dv(attribute: str) -> Symbol:
    """The distinguished variable of ``attribute``'s column."""
    return (KIND_DV, attribute)


def ndv(subscript: int) -> Symbol:
    """The nondistinguished variable with the given subscript."""
    return (KIND_NDV, subscript)


def is_constant(symbol: Symbol) -> bool:
    return symbol[0] == KIND_CONSTANT


def is_dv(symbol: Symbol) -> bool:
    return symbol[0] == KIND_DV


def is_ndv(symbol: Symbol) -> bool:
    return symbol[0] == KIND_NDV


def constant_value(symbol: Symbol) -> Hashable:
    """The underlying value of a constant symbol."""
    if not is_constant(symbol):
        raise ValueError(f"not a constant symbol: {symbol!r}")
    return symbol[1]


def preferred(left: Symbol, right: Symbol) -> Symbol:
    """The symbol that survives when ``left`` and ``right`` are equated.

    Constants beat distinguished variables beat nondistinguished ones;
    ties between nondistinguished variables go to the lower subscript,
    and other ties are broken deterministically by the symbol tuple.
    Equating two *distinct constants* is an inconsistency and must be
    detected by the caller before asking for a preference.
    """
    left_rank = _PRECEDENCE[left[0]]
    right_rank = _PRECEDENCE[right[0]]
    if left_rank != right_rank:
        return left if left_rank < right_rank else right
    # Same kind: lower subscript / lexicographically smaller payload wins.
    return left if repr(left[1]) <= repr(right[1]) else right


class NDVFactory:
    """Dispenses fresh nondistinguished variables with unique subscripts."""

    def __init__(self, start: int = 0) -> None:
        self._counter: Iterator[int] = count(start)

    def fresh(self) -> Symbol:
        """A nondistinguished variable never handed out before."""
        return ndv(next(self._counter))


def fmt_symbol(symbol: Symbol) -> str:
    """Render a symbol the way the paper prints tableaux."""
    kind, payload = symbol
    if kind == KIND_CONSTANT:
        return str(payload)
    if kind == KIND_DV:
        return f"a_{payload}"
    return f"b{payload}"
