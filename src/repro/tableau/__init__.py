"""Tableaux and the chase (paper, Sections 2.2, 2.3, 2.5)."""

from repro.tableau.chase import ChaseResult, chase, chase_naive, satisfies
from repro.tableau.provenance import Application, ProvenanceChase
from repro.tableau.minimize import (
    equivalent,
    find_containment_mapping,
    minimize,
    remove_subsumed_rows,
    row_maps_into,
)
from repro.tableau.scheme_tableau import (
    bmsu_chased_rows,
    chased_scheme_tableau,
    is_lossless,
    scheme_tableau,
)
from repro.tableau.state_tableau import state_tableau
from repro.tableau.symbols import (
    NDVFactory,
    Symbol,
    constant,
    constant_value,
    dv,
    fmt_symbol,
    is_constant,
    is_dv,
    is_ndv,
    ndv,
    preferred,
)
from repro.tableau.tableau import Row, Tableau

__all__ = [
    "Application",
    "ChaseResult",
    "ProvenanceChase",
    "NDVFactory",
    "Row",
    "Symbol",
    "Tableau",
    "bmsu_chased_rows",
    "chase",
    "chase_naive",
    "chased_scheme_tableau",
    "constant",
    "constant_value",
    "dv",
    "equivalent",
    "find_containment_mapping",
    "fmt_symbol",
    "is_constant",
    "is_dv",
    "is_lossless",
    "is_ndv",
    "minimize",
    "ndv",
    "preferred",
    "remove_subsumed_rows",
    "row_maps_into",
    "satisfies",
    "scheme_tableau",
    "state_tableau",
]
