"""Tableaux for database schemes and the lossless-join test.

``T_R`` has one row per relation scheme: distinguished variables on the
scheme's attributes, fresh nondistinguished variables elsewhere
(paper, Section 2.2).  ``R`` is *lossless* with respect to ``F`` when
``CHASE_F(T_R)`` contains an all-distinguished row (Section 2.3).

For cover-embedding schemes the chase of ``T_R`` has a closed form
(Beeri–Mendelzon–Sagiv–Ullman, quoted in the proof of Lemma 3.8): the
row for ``Ri`` carries distinguished variables exactly on ``Ri⁺`` and
distinct nondistinguished variables elsewhere.  :func:`bmsu_chased_rows`
exploits this for the fast losslessness and splitness tests.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs, union_all
from repro.tableau.chase import chase
from repro.tableau.symbols import NDVFactory, dv, is_dv
from repro.tableau.tableau import Row, Tableau

#: A scheme given as ``(name, attribute set)``.
NamedScheme = Tuple[str, frozenset[str]]


def _normalize(schemes: Iterable[AttrsLike | NamedScheme]) -> list[NamedScheme]:
    """Accept bare attribute sets or (name, attrs) pairs."""
    normalized: list[NamedScheme] = []
    for index, entry in enumerate(schemes):
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], str)
            and not isinstance(entry[1], str)
        ):
            normalized.append((entry[0], attrs(entry[1])))
        else:
            normalized.append((f"R{index + 1}", attrs(entry)))
    return normalized


def scheme_tableau(
    schemes: Iterable[AttrsLike | NamedScheme],
    universe: Optional[AttrsLike] = None,
) -> Tableau:
    """Construct ``T_R`` for the given relation schemes."""
    named = _normalize(schemes)
    full = attrs(universe) if universe is not None else union_all(
        scheme for _, scheme in named
    )
    factory = NDVFactory()
    tableau = Tableau(full)
    for name, scheme in named:
        cells = {
            attribute: dv(attribute) if attribute in scheme else factory.fresh()
            for attribute in sorted(full)
        }
        tableau.add_row(Row(cells, tag=name))
    return tableau


def chased_scheme_tableau(
    schemes: Iterable[AttrsLike | NamedScheme],
    fds: FDsLike,
    universe: Optional[AttrsLike] = None,
) -> Tableau:
    """``CHASE_F(T_R)`` computed by the generic chase engine."""
    result = chase(scheme_tableau(schemes, universe), fds)
    # A scheme tableau has no constants, so it can never be inconsistent.
    return result.tableau


def bmsu_chased_rows(
    schemes: Iterable[AttrsLike | NamedScheme], fds: FDsLike
) -> list[tuple[str, frozenset[str]]]:
    """Closed-form dv-sets of ``CHASE_F(T_R)`` for cover-embedding input.

    Returns ``(name, dv_attributes)`` per scheme where ``dv_attributes``
    is ``Ri⁺`` with respect to ``fds``.  Only valid when a cover of
    ``fds`` is embedded in the schemes — the caller's responsibility;
    tests cross-validate against the generic chase.
    """
    fd_set = FDSet(fds)
    return [
        (name, fd_set.closure(scheme)) for name, scheme in _normalize(schemes)
    ]


def is_lossless(
    schemes: Sequence[AttrsLike | NamedScheme],
    fds: FDsLike,
    universe: Optional[AttrsLike] = None,
    *,
    assume_cover_embedding: bool = False,
) -> bool:
    """Lossless-join test: does ``CHASE_F(T_R)`` have an all-dv row?

    With ``assume_cover_embedding=True`` the BMSU closed form is used
    (``Ri⁺ ⊇ U`` for some ``i``), avoiding the chase entirely.
    """
    named = _normalize(schemes)
    if not named:
        return False
    full = attrs(universe) if universe is not None else union_all(
        scheme for _, scheme in named
    )
    if assume_cover_embedding:
        return any(
            full <= dv_set for _, dv_set in bmsu_chased_rows(named, fds)
        )
    chased = chased_scheme_tableau(named, fds, full)
    return any(
        all(is_dv(row[a]) for a in full) for row in chased
    )
