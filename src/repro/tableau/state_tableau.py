"""Tableaux for database states.

``T_r`` has one row per stored tuple: the tuple's constants on its
relation scheme, fresh nondistinguished variables elsewhere (paper,
Section 2.2).  The row's tag records the originating relation — the
paper's TAG-column.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Tuple

from repro.foundations.attrs import AttrsLike, attrs, union_all
from repro.foundations.errors import StateError
from repro.tableau.symbols import NDVFactory, constant
from repro.tableau.tableau import Row, Tableau

#: One stored relation: (tag, scheme attributes, tuples as attr→value maps).
StoredRelation = Tuple[str, frozenset[str], Iterable[Mapping[str, Hashable]]]


def state_tableau(
    relations: Iterable[StoredRelation],
    universe: Optional[AttrsLike] = None,
) -> Tableau:
    """Construct the state tableau ``T_r`` from stored relations."""
    materialized = [
        (tag, attrs(scheme), list(tuples)) for tag, scheme, tuples in relations
    ]
    full = (
        attrs(universe)
        if universe is not None
        else union_all(scheme for _, scheme, _ in materialized)
    )
    factory = NDVFactory()
    tableau = Tableau(full)
    for tag, scheme, tuples in materialized:
        if not scheme <= full:
            raise StateError(f"relation {tag} is not contained in the universe")
        for values in tuples:
            if frozenset(values) != scheme:
                raise StateError(
                    f"tuple attributes {sorted(values)} do not match scheme "
                    f"{sorted(scheme)} of relation {tag}"
                )
            cells = {
                attribute: (
                    constant(values[attribute])
                    if attribute in scheme
                    else factory.fresh()
                )
                for attribute in sorted(full)
            }
            tableau.add_row(Row(cells, tag=tag))
    return tableau
