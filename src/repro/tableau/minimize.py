"""Tableau minimization and containment mappings.

A tableau is *minimized* when no proper subset of its rows is an
equivalent tableau (paper, Section 2.2, after Aho–Sagiv–Ullman).  A row
can be dropped exactly when the remaining rows admit a containment
mapping from the full tableau: a symbol mapping fixing constants and
distinguished variables (nondistinguished variables may map to anything,
consistently) that sends every row onto some remaining row.

General minimization is exponential; it is used here on the small
tableaux of the paper's examples and in cross-validation tests.  For the
chased state tableaux produced by the paper's algorithms — where every
nondistinguished variable occurs exactly once — subsumption degenerates
to a per-row constant-containment check (:func:`remove_subsumed_rows`),
which is what Algorithm 1's step (2) and Corollary 3.2's "minimized
chased tableau" perform.
"""

from __future__ import annotations

from typing import Optional

from repro.tableau.symbols import Symbol, is_constant, is_dv, is_ndv
from repro.tableau.tableau import Row, Tableau


def row_maps_into(source: Row, target: Row) -> bool:
    """True iff ``source`` maps onto ``target`` assuming every
    nondistinguished variable of ``source`` is free (occurs nowhere
    else).  Constants and distinguished variables must match exactly."""
    for attribute, symbol in source.cells.items():
        if is_ndv(symbol):
            continue
        if target[attribute] != symbol:
            return False
    return True


def _extend_mapping(
    mapping: dict[Symbol, Symbol], source: Row, target: Row
) -> Optional[dict[Symbol, Symbol]]:
    """Try to extend a partial symbol mapping so ``source`` lands on
    ``target``; return the extended mapping or None on conflict."""
    extended = dict(mapping)
    for attribute, symbol in source.cells.items():
        wanted = target[attribute]
        if is_constant(symbol) or is_dv(symbol):
            if symbol != wanted:
                return None
            continue
        bound = extended.get(symbol)
        if bound is None:
            extended[symbol] = wanted
        elif bound != wanted:
            return None
    return extended


def find_containment_mapping(
    source: Tableau, target: Tableau
) -> Optional[dict[Symbol, Symbol]]:
    """A containment mapping from ``source`` into ``target``, or None.

    Backtracking over row assignments; exponential in the worst case,
    intended for the small tableaux of examples and tests.
    """
    if source.universe != target.universe:
        return None
    source_rows = list(source.rows)
    target_rows = list(target.rows)

    def assign(index: int, mapping: dict[Symbol, Symbol]) -> Optional[dict]:
        if index == len(source_rows):
            return mapping
        for candidate in target_rows:
            extended = _extend_mapping(mapping, source_rows[index], candidate)
            if extended is not None:
                solution = assign(index + 1, extended)
                if solution is not None:
                    return solution
        return None

    return assign(0, {})


def equivalent(left: Tableau, right: Tableau) -> bool:
    """Tableau equivalence: containment mappings both ways."""
    return (
        find_containment_mapping(left, right) is not None
        and find_containment_mapping(right, left) is not None
    )


def minimize(tableau: Tableau) -> Tableau:
    """Greedy full minimization: repeatedly drop a row whenever the full
    tableau still maps into the remainder."""
    rows = list(tableau.rows)
    index = 0
    while index < len(rows):
        remainder = Tableau(tableau.universe, rows[:index] + rows[index + 1 :])
        if find_containment_mapping(tableau, remainder) is not None:
            rows.pop(index)
        else:
            index += 1
    return Tableau(tableau.universe, rows)


def remove_subsumed_rows(tableau: Tableau) -> Tableau:
    """Fast minimization for tableaux whose nondistinguished variables are
    all distinct: drop any row that maps into another surviving row.

    This is exactly the duplicate/subsumption elimination of Algorithm 1
    step (2) and of Corollary 3.2's minimization step.
    """
    rows = list(tableau.rows)
    kept: list[Row] = []
    for index, row in enumerate(rows):
        subsumed = False
        for other_index, other in enumerate(rows):
            if other_index == index:
                continue
            if row_maps_into(row, other):
                # Break ties between mutually-subsuming (identical) rows
                # by keeping the earliest.
                if row_maps_into(other, row) and other_index > index:
                    continue
                subsumed = True
                break
        if not subsumed:
            kept.append(row)
    return Tableau(tableau.universe, kept)
