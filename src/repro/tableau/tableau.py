"""Tableaux.

A tableau is a set of rows over the universe ``U``; each row maps every
attribute to a symbol (paper, Section 2.2).  Rows carry an optional *tag*
recording which relation scheme they originate from — the paper's
TAG-column (Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Optional

from repro.foundations.attrs import AttrsLike, attrs, sorted_attrs
from repro.foundations.errors import StateError
from repro.tableau.symbols import (
    Symbol,
    fmt_symbol,
    is_constant,
    constant_value,
)


@dataclass(frozen=True)
class Row:
    """One tableau row: an immutable mapping from attributes to symbols."""

    cells: Mapping[str, Symbol]
    tag: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", dict(self.cells))

    def __getitem__(self, attribute: str) -> Symbol:
        return self.cells[attribute]

    def restrict(self, attributes: AttrsLike) -> dict[str, Symbol]:
        """The restriction of the row to the given attributes."""
        return {a: self.cells[a] for a in attrs(attributes)}

    def is_total_on(self, attributes: AttrsLike) -> bool:
        """True iff every cell over ``attributes`` holds a constant."""
        return all(is_constant(self.cells[a]) for a in attrs(attributes))

    def constant_attributes(self) -> frozenset[str]:
        """The attributes on which this row holds constants (the row's
        *constant components* in the paper's wording)."""
        return frozenset(
            a for a, symbol in self.cells.items() if is_constant(symbol)
        )

    def constants(self) -> dict[str, Hashable]:
        """Mapping of attribute → constant value on the constant cells."""
        return {
            a: constant_value(symbol)
            for a, symbol in self.cells.items()
            if is_constant(symbol)
        }

    def key(self) -> tuple[tuple[str, Symbol], ...]:
        """A hashable identity for the row's cells (tags excluded)."""
        return tuple(sorted(self.cells.items()))


class Tableau:
    """A tableau over a fixed universe.

    Rows are stored in insertion order (deterministic); duplicates by
    cell-content are permitted, as the paper allows redundant rows.
    """

    def __init__(self, universe: AttrsLike, rows: Iterable[Row] = ()) -> None:
        self.universe: frozenset[str] = attrs(universe)
        self._rows: list[Row] = []
        for row in rows:
            self.add_row(row)

    # -- construction --------------------------------------------------------
    def add_row(self, row: Row) -> None:
        """Append a row, validating it spans exactly the universe."""
        if frozenset(row.cells) != self.universe:
            raise StateError(
                "row attributes do not match the tableau universe: "
                f"{sorted(row.cells)} vs {sorted(self.universe)}"
            )
        self._rows.append(row)

    def copy(self) -> "Tableau":
        return Tableau(self.universe, self._rows)

    # -- container protocol --------------------------------------------------
    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    # -- queries --------------------------------------------------------------
    def total_projection(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        """The restricted projection ``π!_X``: project rows that are total
        on ``X`` onto ``X`` (paper, Section 2.1).  Values are returned as
        tuples ordered by the canonical attribute order."""
        ordered = sorted_attrs(attrs(attributes))
        result: set[tuple[Hashable, ...]] = set()
        for row in self._rows:
            if row.is_total_on(ordered):
                result.add(tuple(constant_value(row[a]) for a in ordered))
        return result

    def total_rows(self) -> list[Row]:
        """Rows whose every cell is a constant."""
        return [row for row in self._rows if row.is_total_on(self.universe)]

    def distinct_rows(self) -> "Tableau":
        """A copy with duplicate rows (identical cells) removed, keeping
        the first occurrence of each."""
        seen: set[tuple[tuple[str, Symbol], ...]] = set()
        kept: list[Row] = []
        for row in self._rows:
            identity = row.key()
            if identity not in seen:
                seen.add(identity)
                kept.append(row)
        return Tableau(self.universe, kept)

    # -- rendering -------------------------------------------------------------
    def pretty(self) -> str:
        """Render the tableau as the paper prints them, TAG column last."""
        columns = sorted_attrs(self.universe)
        header = columns + ["TAG"]
        body = [
            [fmt_symbol(row[a]) for a in columns] + [row.tag or ""]
            for row in self._rows
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body), 1)
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for line in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Tableau(|rows|={len(self._rows)}, U={sorted(self.universe)})"
