"""The chase with fd-rules.

Applying the fd-rule for ``X → A`` to two rows that agree on all
``X``-columns equates their ``A``-symbols, renaming the lesser symbol to
the preferred one; equating two distinct constants is an inconsistency
and yields the empty tableau (paper, Section 2.3).  ``CHASE_F(T)``
applies the rules exhaustively.

Two engines live here:

* the worklist engine (:func:`chase`, :func:`chase_relations`) — symbols
  are interned to integers whose ordering encodes the renaming
  precedence (constants < distinguished < nondistinguished, within-kind
  ordered like :func:`repro.tableau.symbols.preferred`), rows become int
  vectors kept *eagerly resolved* (every cell always holds its class
  representative), each fd-rule keeps a persistent group map from LHS
  signatures to the group's RHS anchor, and a symbol-occurrence index
  maps every representative to the rows that mention it.  After one full
  initial pass, only rows whose symbols were actually merged re-enter
  the worklist — the semi-naive / dirty-row discipline — so saturated
  regions of the tableau are never re-swept, and every hot dict
  operation hashes a small int instead of a symbol tuple.
  :func:`chase_relations` additionally builds its vectors straight from
  stored value tuples, skipping per-row dict/Row/Tableau construction on
  the ``CHASE_F(T_r)`` hot path.
* :func:`chase_naive` — the original full-sweep engine, kept verbatim
  as the differential-test oracle and the benchmark baseline.

The number of effective symbol merges (``steps``) is the "number of
fd-rule applications" the paper's boundedness arguments count (Section
2.5); it is order-invariant for fds because the chase is Church-Rosser,
so the two engines agree on it for every consistent input.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Hashable, Iterable, Optional, Sequence, Tuple

from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs, sorted_attrs
from repro.foundations.errors import StateError
from repro.obs.spans import span
from repro.tableau.symbols import (
    KIND_CONSTANT,
    KIND_DV,
    KIND_NDV,
    Symbol,
    is_constant,
    preferred,
)
from repro.tableau.tableau import Row, Tableau


class _SymbolUnionFind:
    """Union-find over symbols with precedence-respecting representatives.

    Used by the naive engine; the worklist engine keeps its union-find
    over interned integers inside :func:`_chase_core`.
    """

    def __init__(self) -> None:
        self._parent: dict[Symbol, Symbol] = {}

    def find(self, symbol: Symbol) -> Symbol:
        parent = self._parent
        root = symbol
        while root in parent:
            root = parent[root]
        # Path compression.
        while symbol in parent:
            parent[symbol], symbol = root, parent[symbol]
        return root

    def union(self, left: Symbol, right: Symbol) -> Optional[Symbol]:
        """Equate two symbols.  Returns the losing root when a merge
        happened, ``None`` when the symbols were already equal.

        Raises :class:`_Contradiction` when both roots are distinct
        constants.
        """
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return None
        if is_constant(left_root) and is_constant(right_root):
            raise _Contradiction(left_root, right_root)
        winner = preferred(left_root, right_root)
        loser = right_root if winner == left_root else left_root
        self._parent[loser] = winner
        return loser


class _Contradiction(Exception):
    """Two distinct constants were equated — the chase found an
    inconsistency."""


@dataclass(frozen=True)
class ChaseResult:
    """Outcome of chasing a tableau.

    ``tableau`` is the chased tableau (empty when inconsistent);
    ``consistent`` reports whether a contradiction was found; ``steps``
    counts the effective symbol merges performed; ``passes`` counts the
    propagation rounds until fixpoint (full sweeps in the naive engine,
    worklist generations in the incremental one).

    ``passes`` operationalizes boundedness (Section 2.5): on a scheme
    bounded with constant ``k``, every total tuple appears within ``k``
    fd-rule applications, so the number of rounds needed to saturate the
    tableau is scheme-bounded — while on unbounded inputs such as
    Example 2's chains it grows with the state.
    """

    tableau: Tableau
    consistent: bool
    steps: int
    passes: int = 0

    def __bool__(self) -> bool:
        return self.consistent


#: One stored relation for :func:`chase_relations`:
#: ``(tag, value columns, value vectors)``.
StoredVectors = Tuple[str, Sequence[str], Iterable[Tuple[Hashable, ...]]]

#: Interned ids for nondistinguished variables start here, above every
#: constant id, so the min-id rule automatically prefers constants.
_NDV_ID_BASE = 1 << 60


def _split_rules(fds: FDsLike) -> list[tuple[list[str], str]]:
    """The fd set split to singleton right-hand sides, as
    ``(sorted lhs, rhs attribute)`` pairs."""
    return [
        (sorted_attrs(dependency.lhs), next(iter(dependency.rhs)))
        for dependency in FDSet(fds).split_rhs().nontrivial()
    ]


def _chase_core(
    width: int,
    cells: list[list[int]],
    rule_columns: list[tuple[list[int], int]],
    constant_bound: int,
) -> tuple[bool, int, int]:
    """Run the worklist chase over mutable interned-id row vectors.

    Ids below ``constant_bound`` denote constants; the id ordering
    encodes the renaming precedence, so the surviving representative of
    a merge is simply the smaller id, and a merge of two ids both below
    ``constant_bound`` is a contradiction.  ``cells`` is mutated in
    place: on return every vector is fully resolved (each cell holds its
    class representative).  Returns ``(consistent, steps, passes)``.
    """
    steps = 0
    # Occurrence index: representative → rows mentioning its class.
    # A superset with duplicates is fine (the rewrite rescans the whole
    # vector and dirty is a set), so rows are indexed once per cell
    # without per-row deduplication.
    occurrences: dict[int, list[int]] = {}
    occ_setdefault = occurrences.setdefault
    occ_pop = occurrences.pop
    for index, vector in enumerate(cells):
        for symbol in vector:
            occ_setdefault(symbol, []).append(index)

    # Union-find over merged-away ids, used only to resolve group
    # anchors that were merged after being recorded.
    parent: dict[int, int] = {}
    # Persistent per-rule group maps: resolved LHS signature → the RHS
    # anchor of the group.  Fresh probes only ever produce signatures of
    # current representatives, so entries whose key mentions a
    # merged-away id can never be matched again and need no purging.
    groups: list[dict] = [{} for _ in rule_columns]
    dirty: set[int] = set()
    dirty_update = dirty.update

    def combine(group: dict, signature, anchor: int, rhs_symbol: int) -> None:
        """Slow path of one fd-rule application: the group already has an
        anchor differing from this row's RHS id.  Resolves stale anchors,
        detects contradictions, performs the merge and rewrites the
        losing class everywhere it occurs, marking touched rows dirty."""
        nonlocal steps
        if anchor in parent:
            # The stored anchor was merged away since it was recorded.
            root = parent[anchor]
            while root in parent:
                root = parent[root]
            group[signature] = root
            anchor = root
            if anchor == rhs_symbol:
                return
        if anchor < rhs_symbol:
            winner, loser = anchor, rhs_symbol
        else:
            winner, loser = rhs_symbol, anchor
        if loser < constant_bound:
            # The larger id is a constant, hence so is the smaller:
            # two distinct constants were equated.
            raise _Contradiction(anchor, rhs_symbol)
        steps += 1
        group[signature] = winner
        parent[loser] = winner
        touched = occ_pop(loser, ())
        if touched:
            for row_index in touched:
                vector = cells[row_index]
                for j in range(width):
                    if vector[j] == loser:
                        vector[j] = winner
            # A winner is always a live representative, hence indexed.
            occurrences[winner].extend(touched)
            dirty_update(touched)

    def sweep(pairs) -> None:
        """Apply every rule to the given ``(row index, vector)`` pairs,
        grouping into the persistent per-rule maps.  The hot path is pure
        list indexing and int-keyed dict probing; merges divert to
        :func:`combine`."""
        for rule_index, (lhs_columns, rhs_column) in enumerate(rule_columns):
            group = groups[rule_index]
            group_get = group.get
            if len(lhs_columns) == 1:
                # Single-attribute LHS (the overwhelmingly common case
                # for key dependencies): scalar signatures, no tuple
                # allocation per row.
                lone = lhs_columns[0]
                for row_index, vector in pairs:
                    signature = vector[lone]
                    rhs_symbol = vector[rhs_column]
                    anchor = group_get(signature)
                    if anchor is None:
                        group[signature] = rhs_symbol
                    elif anchor != rhs_symbol:
                        combine(group, signature, anchor, rhs_symbol)
            else:
                for row_index, vector in pairs:
                    signature = tuple(vector[j] for j in lhs_columns)
                    rhs_symbol = vector[rhs_column]
                    anchor = group_get(signature)
                    if anchor is None:
                        group[signature] = rhs_symbol
                    elif anchor != rhs_symbol:
                        combine(group, signature, anchor, rhs_symbol)

    passes = 1
    try:
        # Initial pass: group all rows under all rules.  The pair list is
        # materialized because sweep iterates it once per rule.
        sweep(list(enumerate(cells)))
        # Worklist rounds: only the dirty frontier is re-examined.
        while dirty:
            passes += 1
            batch = [(i, cells[i]) for i in sorted(dirty)]
            dirty.clear()
            sweep(batch)
    except _Contradiction:
        return False, steps, passes
    return True, steps, passes


def _intern_symbols(
    symbols: Iterable[Symbol],
) -> tuple[dict[Symbol, int], list[Symbol], int]:
    """Assign precedence-encoding integer ids to the given symbols.

    Returns ``(symbol → id, id → symbol, constant bound)``.  Constants
    take the lowest ids (their relative order is irrelevant: merging two
    constants is a contradiction), then distinguished variables, then
    nondistinguished ones; within a kind, ids follow the same ordering
    :func:`repro.tableau.symbols.preferred` uses, so the min-id rule
    reproduces its choices exactly.
    """
    constants: list[Symbol] = []
    dvs: list[Symbol] = []
    ndvs: list[Symbol] = []
    for symbol in symbols:
        kind = symbol[0]
        if kind == KIND_CONSTANT:
            constants.append(symbol)
        elif kind == KIND_DV:
            dvs.append(symbol)
        else:
            ndvs.append(symbol)
    dvs.sort(key=lambda s: repr(s[1]))
    ndvs.sort(key=lambda s: repr(s[1]))
    table = constants + dvs + ndvs
    return {s: i for i, s in enumerate(table)}, table, len(constants)


def chase(tableau: Tableau, fds: FDsLike) -> ChaseResult:
    """Compute ``CHASE_F(tableau)`` with the worklist engine.

    The fd set is split to singleton right-hand sides.  One initial pass
    groups every row under every rule; afterwards a row re-enters the
    worklist only when one of its symbols was merged away, so each
    propagation round touches the dirty frontier instead of the whole
    tableau.  Termination is guaranteed for fds because each merge
    strictly reduces the number of symbol classes.
    """
    rules = _split_rules(fds)
    rows = tableau.rows
    if not rules or not rows:
        # Mirror the naive engine: one (empty) sweep confirms fixpoint.
        return ChaseResult(tableau.copy(), consistent=True, steps=0, passes=1)

    with span("chase.tableau") as sp:
        order = sorted_attrs(tableau.universe)
        column = {a: i for i, a in enumerate(order)}
        distinct: set[Symbol] = set()
        for row in rows:
            distinct.update(row.cells.values())
        to_id, table, constant_bound = _intern_symbols(distinct)
        cells = [
            [to_id[mapping[a]] for a in order]
            for mapping in (row.cells for row in rows)
        ]
        rule_columns = [
            ([column[a] for a in lhs], column[rhs_attr])
            for lhs, rhs_attr in rules
        ]
        consistent, steps, passes = _chase_core(
            len(order), cells, rule_columns, constant_bound
        )
        if sp:
            sp.add("rows", len(cells))
            sp.add("rules", len(rule_columns))
            sp.add("steps", steps)
            sp.add("passes", passes)
            sp.add("contradictions", 0 if consistent else 1)
    if not consistent:
        return ChaseResult(
            Tableau(tableau.universe),
            consistent=False,
            steps=steps,
            passes=passes,
        )
    resolved = Tableau(
        tableau.universe,
        (
            Row(dict(zip(order, (table[i] for i in vector))), tag=row.tag)
            for vector, row in zip(cells, rows)
        ),
    )
    return ChaseResult(resolved, consistent=True, steps=steps, passes=passes)


def chase_relations(
    universe: AttrsLike,
    stored: Iterable[StoredVectors],
    fds: FDsLike,
) -> ChaseResult:
    """``CHASE_F(T_r)`` built directly from stored value vectors.

    ``stored`` yields ``(tag, columns, vectors)`` per relation, where
    each vector lists the tuple's values in ``columns`` order.  The
    state tableau is never materialized as dict-backed :class:`Row`
    objects: interned-id vectors are laid out straight from the value
    tuples (constants on the relation's columns, fresh nondistinguished
    variables elsewhere), which makes consistency checking and
    representative-instance construction markedly cheaper than
    ``chase(state.tableau(), fds)`` while producing the same result.
    """
    universe_attrs = attrs(universe)
    order = sorted_attrs(universe_attrs)
    column = {a: i for i, a in enumerate(order)}
    width = len(order)
    rules = _split_rules(fds)

    # Constants are interned on the fly (ids 0, 1, ...); fresh ndvs
    # count up from _NDV_ID_BASE, so every constant id is below every
    # ndv id and the core's min-id rule prefers constants.  Which ndv of
    # a merged ndv pair survives is unobservable — every ndv is a fresh
    # variable private to this chase.
    with span("chase.relations") as sp:
        constant_ids: dict[Hashable, int] = {}
        next_ndv = count(_NDV_ID_BASE)
        cells: list[list[int]] = []
        tags: list[str] = []
        for tag, columns, vectors in stored:
            try:
                positions = [column[a] for a in columns]
            except KeyError:
                raise StateError(
                    f"relation {tag} is not contained in the universe"
                ) from None
            # Row order is free: the chase is Church-Rosser for fds, so no
            # observable output depends on it (tests assert this).
            padding = [j for j in range(width) if j not in set(positions)]
            for vector in vectors:
                row: list = [None] * width
                for position, value in zip(positions, vector):
                    row[position] = constant_ids.setdefault(
                        value, len(constant_ids)
                    )
                for j in padding:
                    row[j] = next(next_ndv)
                cells.append(row)
                tags.append(tag)

        if not rules or not cells:
            consistent, steps, passes = True, 0, 1
        else:
            rule_columns = [
                ([column[a] for a in lhs], column[rhs_attr])
                for lhs, rhs_attr in rules
            ]
            consistent, steps, passes = _chase_core(
                width, cells, rule_columns, len(constant_ids)
            )
        if sp:
            sp.add("rows", len(cells))
            sp.add("rules", len(rules))
            sp.add("steps", steps)
            sp.add("passes", passes)
            sp.add("contradictions", 0 if consistent else 1)
    if not consistent:
        return ChaseResult(
            Tableau(universe_attrs),
            consistent=False,
            steps=steps,
            passes=passes,
        )

    constant_table = [
        (KIND_CONSTANT, value)
        for value, _ in sorted(constant_ids.items(), key=lambda kv: kv[1])
    ]

    def to_symbol(interned: int) -> Symbol:
        if interned < _NDV_ID_BASE:
            return constant_table[interned]
        return (KIND_NDV, interned - _NDV_ID_BASE)

    resolved = Tableau(
        universe_attrs,
        (
            Row(dict(zip(order, map(to_symbol, vector))), tag=tag)
            for vector, tag in zip(cells, tags)
        ),
    )
    return ChaseResult(resolved, consistent=True, steps=steps, passes=passes)


@dataclass(frozen=True)
class DeltaOutcome:
    """Result of one :meth:`DeltaChase.extend`.

    ``steps`` counts the merges this extension performed (the attempted
    merges before the contradiction when rejected); ``rows_added`` is 0
    when the extension was rolled back."""

    consistent: bool
    steps: int
    passes: int
    rows_added: int

    def __bool__(self) -> bool:
        return self.consistent


class DeltaChase:
    """A persistent, incrementally extendable ``CHASE_F(T_r)``.

    Holds a chased fixpoint — interned-id row vectors, the per-rule
    group maps and the symbol-occurrence index of :func:`_chase_core` —
    across calls.  :meth:`extend` adds newly stored rows and re-chases
    *only from them*: new rows probe the persistent group maps (old rows
    never re-enter the worklist unless one of their symbols is merged),
    so the cost of absorbing a delta is proportional to the delta's
    cascade, not to the fixpoint's size.  This is what lets single-tuple
    inserts and WAL replay skip re-chasing the whole representative
    instance.

    Every mutation an extension performs is journaled; when the delta
    equates two constants the extension rolls back completely, leaving
    the previous fixpoint intact — a rejected insert costs its own
    cascade, never the basis.

    Cumulative ``steps`` equals the from-scratch chase's count on every
    consistent history (both equal the number of symbol classes merged
    away, which Church-Rosser makes order-invariant), so maintenance
    diagnostics built on a delta basis match the full re-chase exactly;
    the differential suite asserts this against :func:`chase_naive`.

    Not thread-safe: callers serialize extensions (block-parallel
    batches use one basis per block, which are share-nothing).
    """

    def __init__(self, universe: AttrsLike, fds: FDsLike) -> None:
        universe_attrs = attrs(universe)
        self.universe = universe_attrs
        self._order = sorted_attrs(universe_attrs)
        self._column = {a: i for i, a in enumerate(self._order)}
        self._width = len(self._order)
        self._rule_columns = [
            ([self._column[a] for a in lhs], self._column[rhs_attr])
            for lhs, rhs_attr in _split_rules(fds)
        ]
        self._cells: list[list[int]] = []
        self._tags: list[str] = []
        self._constant_ids: dict[Hashable, int] = {}
        self._constant_table: list[Symbol] = []
        self._next_ndv = _NDV_ID_BASE
        self._occurrences: dict[int, list[int]] = {}
        self._parent: dict[int, int] = {}
        self._groups: list[dict] = [{} for _ in self._rule_columns]
        self._steps = 0
        self._passes = 0

    @property
    def rows(self) -> int:
        return len(self._cells)

    @property
    def steps(self) -> int:
        """Cumulative merges over every accepted extension — equal to a
        from-scratch chase of the same rows."""
        return self._steps

    @property
    def passes(self) -> int:
        return self._passes

    # -- the journaled worklist ------------------------------------------------
    def _combine(
        self,
        journal: list,
        dirty: set[int],
        group: dict,
        rule_index: int,
        signature,
        anchor: int,
        rhs_symbol: int,
    ) -> None:
        """The slow path of one rule application, mirroring
        :func:`_chase_core`'s ``combine`` with every mutation journaled
        (journal entries precede their mutations; rollback replays them
        in reverse)."""
        parent = self._parent
        if anchor in parent:
            root = parent[anchor]
            while root in parent:
                root = parent[root]
            journal.append(("gset", rule_index, signature, anchor))
            group[signature] = root
            anchor = root
            if anchor == rhs_symbol:
                return
        if anchor < rhs_symbol:
            winner, loser = anchor, rhs_symbol
        else:
            winner, loser = rhs_symbol, anchor
        if loser < _NDV_ID_BASE:
            # Constants intern below every ndv id, so a constant loser
            # means both sides are constants: a contradiction.
            raise _Contradiction(anchor, rhs_symbol)
        self._steps += 1
        journal.append(("gset", rule_index, signature, anchor))
        group[signature] = winner
        journal.append(("parent", loser))
        parent[loser] = winner
        touched = self._occurrences.pop(loser, None)
        if touched is not None:
            journal.append(("occpop", loser, touched))
        if touched:
            cells = self._cells
            width = self._width
            for row_index in touched:
                vector = cells[row_index]
                journal.append(("row", row_index, vector.copy()))
                for j in range(width):
                    if vector[j] == loser:
                        vector[j] = winner
            winner_list = self._occurrences.setdefault(winner, [])
            journal.append(("occ", winner, len(winner_list)))
            winner_list.extend(touched)
            dirty.update(touched)

    def _sweep(self, journal: list, dirty: set[int], pairs: list) -> None:
        for rule_index, (lhs_columns, rhs_column) in enumerate(
            self._rule_columns
        ):
            group = self._groups[rule_index]
            group_get = group.get
            if len(lhs_columns) == 1:
                lone = lhs_columns[0]
                for row_index, vector in pairs:
                    signature = vector[lone]
                    rhs_symbol = vector[rhs_column]
                    anchor = group_get(signature)
                    if anchor is None:
                        journal.append(("gnew", rule_index, signature))
                        group[signature] = rhs_symbol
                    elif anchor != rhs_symbol:
                        self._combine(
                            journal,
                            dirty,
                            group,
                            rule_index,
                            signature,
                            anchor,
                            rhs_symbol,
                        )
            else:
                for row_index, vector in pairs:
                    signature = tuple(vector[j] for j in lhs_columns)
                    rhs_symbol = vector[rhs_column]
                    anchor = group_get(signature)
                    if anchor is None:
                        journal.append(("gnew", rule_index, signature))
                        group[signature] = rhs_symbol
                    elif anchor != rhs_symbol:
                        self._combine(
                            journal,
                            dirty,
                            group,
                            rule_index,
                            signature,
                            anchor,
                            rhs_symbol,
                        )

    def _rollback(
        self,
        journal: list,
        base_rows: int,
        base_constants: int,
        base_ndv: int,
        base_steps: int,
    ) -> None:
        cells = self._cells
        occurrences = self._occurrences
        groups = self._groups
        for entry in reversed(journal):
            kind = entry[0]
            if kind == "row":
                cells[entry[1]][:] = entry[2]
            elif kind == "gnew":
                del groups[entry[1]][entry[2]]
            elif kind == "gset":
                groups[entry[1]][entry[2]] = entry[3]
            elif kind == "parent":
                del self._parent[entry[1]]
            elif kind == "occpop":
                occurrences[entry[1]] = entry[2]
            elif kind == "occ":
                del occurrences[entry[1]][entry[2]:]
            else:  # "const"
                del self._constant_ids[entry[1]]
        del cells[base_rows:]
        del self._tags[base_rows:]
        del self._constant_table[base_constants:]
        self._next_ndv = base_ndv
        self._steps = base_steps

    # -- public API ------------------------------------------------------------
    def extend(self, stored: Iterable[StoredVectors]) -> DeltaOutcome:
        """Absorb newly stored rows into the fixpoint.

        ``stored`` follows the :func:`chase_relations` layout.  Rows
        already part of the basis must not be re-presented (relations
        are sets; callers dedup).  On a contradiction every effect of
        this call is rolled back and ``consistent=False`` returned."""
        journal: list = []
        base_rows = len(self._cells)
        base_constants = len(self._constant_table)
        base_ndv = self._next_ndv
        base_steps = self._steps
        width = self._width
        column = self._column
        cells = self._cells
        tags = self._tags
        constant_ids = self._constant_ids
        constant_table = self._constant_table
        occurrences = self._occurrences
        with span("chase.delta") as sp:
            new_pairs: list[tuple[int, list[int]]] = []
            for tag, columns, vectors in stored:
                try:
                    positions = [column[a] for a in columns]
                except KeyError:
                    raise StateError(
                        f"relation {tag} is not contained in the universe"
                    ) from None
                padding = [
                    j for j in range(width) if j not in set(positions)
                ]
                for vector in vectors:
                    row: list = [None] * width
                    for position, value in zip(positions, vector):
                        interned = constant_ids.get(value)
                        if interned is None:
                            interned = len(constant_table)
                            journal.append(("const", value))
                            constant_ids[value] = interned
                            constant_table.append((KIND_CONSTANT, value))
                        row[position] = interned
                    for j in padding:
                        row[j] = self._next_ndv
                        self._next_ndv += 1
                    index = len(cells)
                    cells.append(row)
                    tags.append(tag)
                    new_pairs.append((index, row))
            # New rows are born resolved: constants never lose a merge
            # and fresh ndvs are new classes, so indexing them is enough.
            for index, row in new_pairs:
                for symbol in row:
                    bucket = occurrences.get(symbol)
                    if bucket is None:
                        bucket = occurrences[symbol] = []
                    journal.append(("occ", symbol, len(bucket)))
                    bucket.append(index)

            passes = 0
            rejected = False
            dirty: set[int] = set()
            if self._rule_columns and new_pairs:
                try:
                    passes = 1
                    self._sweep(journal, dirty, new_pairs)
                    while dirty:
                        passes += 1
                        batch = [(i, cells[i]) for i in sorted(dirty)]
                        dirty.clear()
                        self._sweep(journal, dirty, batch)
                except _Contradiction:
                    rejected = True
            else:
                passes = 1
            attempted = self._steps - base_steps
            if rejected:
                self._rollback(
                    journal, base_rows, base_constants, base_ndv, base_steps
                )
            else:
                self._passes += passes
            if sp:
                sp.add("rows", len(new_pairs))
                sp.add("steps", attempted)
                sp.add("passes", passes)
                sp.add("contradictions", 1 if rejected else 0)
        return DeltaOutcome(
            consistent=not rejected,
            steps=attempted,
            passes=passes,
            rows_added=0 if rejected else len(new_pairs),
        )

    def result(self) -> ChaseResult:
        """The current fixpoint materialized as a
        :class:`ChaseResult` — same layout :func:`chase_relations`
        produces for the same rows."""
        table = self._constant_table
        order = self._order

        def to_symbol(interned: int) -> Symbol:
            if interned < _NDV_ID_BASE:
                return table[interned]
            return (KIND_NDV, interned - _NDV_ID_BASE)

        resolved = Tableau(
            self.universe,
            (
                Row(dict(zip(order, map(to_symbol, vector))), tag=tag)
                for vector, tag in zip(self._cells, self._tags)
            ),
        )
        return ChaseResult(
            resolved,
            consistent=True,
            steps=self._steps,
            passes=self._passes,
        )


def chase_naive(tableau: Tableau, fds: FDsLike) -> ChaseResult:
    """The original full-sweep ``CHASE_F(tableau)``.

    Rules are applied in passes over the whole tableau until no symbol
    merge occurs.  Kept as the differential-test oracle for
    :func:`chase` and as the benchmarks' naive baseline.
    """
    fd_list = _split_rules(fds)
    uf = _SymbolUnionFind()
    rows = tableau.rows
    steps = 0
    passes = 0
    try:
        changed = True
        while changed:
            changed = False
            passes += 1
            for lhs, rhs_attr in fd_list:
                groups: dict[tuple[Symbol, ...], Symbol] = {}
                for row in rows:
                    signature = tuple(uf.find(row[a]) for a in lhs)
                    rhs_symbol = uf.find(row[rhs_attr])
                    anchor = groups.get(signature)
                    if anchor is None:
                        groups[signature] = rhs_symbol
                    elif uf.union(anchor, rhs_symbol) is not None:
                        steps += 1
                        changed = True
                        # Keep the group's anchor current so later rows in
                        # this pass merge against the surviving symbol.
                        groups[signature] = uf.find(anchor)
    except _Contradiction:
        return ChaseResult(
            Tableau(tableau.universe),
            consistent=False,
            steps=steps,
            passes=passes,
        )

    resolved = Tableau(
        tableau.universe,
        (
            Row({a: uf.find(row[a]) for a in tableau.universe}, tag=row.tag)
            for row in rows
        ),
    )
    return ChaseResult(resolved, consistent=True, steps=steps, passes=passes)


def satisfies(tableau: Tableau, fds: FDsLike) -> bool:
    """True iff the tableau, read as a relation of symbols, satisfies the
    fds — i.e. the chase performs no merge at all."""
    result = chase(tableau, fds)
    return result.consistent and result.steps == 0
