"""The chase with fd-rules.

Applying the fd-rule for ``X → A`` to two rows that agree on all
``X``-columns equates their ``A``-symbols, renaming the lesser symbol to
the preferred one; equating two distinct constants is an inconsistency
and yields the empty tableau (paper, Section 2.3).  ``CHASE_F(T)``
applies the rules exhaustively.

The implementation keeps a union-find over symbols whose representatives
respect the renaming precedence, so each chase pass groups rows by their
resolved left-hand-side symbols and merges right-hand sides.  The number
of effective symbol merges is reported — it is the "number of fd-rule
applications" that the paper's boundedness arguments count (Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import sorted_attrs
from repro.tableau.symbols import Symbol, is_constant, preferred
from repro.tableau.tableau import Row, Tableau


class _SymbolUnionFind:
    """Union-find over symbols with precedence-respecting representatives."""

    def __init__(self) -> None:
        self._parent: dict[Symbol, Symbol] = {}

    def find(self, symbol: Symbol) -> Symbol:
        parent = self._parent
        root = symbol
        while root in parent:
            root = parent[root]
        # Path compression.
        while symbol in parent:
            parent[symbol], symbol = root, parent[symbol]
        return root

    def union(self, left: Symbol, right: Symbol) -> bool:
        """Equate two symbols.  Returns True when a merge happened.

        Raises :class:`_Contradiction` when both roots are distinct
        constants.
        """
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return False
        if is_constant(left_root) and is_constant(right_root):
            raise _Contradiction(left_root, right_root)
        winner = preferred(left_root, right_root)
        loser = right_root if winner == left_root else left_root
        self._parent[loser] = winner
        return True


class _Contradiction(Exception):
    """Two distinct constants were equated — the chase found an
    inconsistency."""


@dataclass(frozen=True)
class ChaseResult:
    """Outcome of chasing a tableau.

    ``tableau`` is the chased tableau (empty when inconsistent);
    ``consistent`` reports whether a contradiction was found; ``steps``
    counts the effective symbol merges performed; ``passes`` counts the
    sweeps over the rule set until fixpoint.

    ``passes`` operationalizes boundedness (Section 2.5): on a scheme
    bounded with constant ``k``, every total tuple appears within ``k``
    fd-rule applications, so the number of sweeps needed to saturate the
    tableau is scheme-bounded — while on unbounded inputs such as
    Example 2's chains it grows with the state.
    """

    tableau: Tableau
    consistent: bool
    steps: int
    passes: int = 0

    def __bool__(self) -> bool:
        return self.consistent


def chase(tableau: Tableau, fds: FDsLike) -> ChaseResult:
    """Compute ``CHASE_F(tableau)``.

    The fd set is split to singleton right-hand sides; rules are applied
    in passes until no symbol merge occurs.  Termination is guaranteed
    for fds because each merge strictly reduces the number of symbol
    classes.
    """
    fd_list = [
        (sorted_attrs(dependency.lhs), next(iter(dependency.rhs)))
        for dependency in FDSet(fds).split_rhs().nontrivial()
    ]
    uf = _SymbolUnionFind()
    rows = tableau.rows
    steps = 0
    passes = 0
    try:
        changed = True
        while changed:
            changed = False
            passes += 1
            for lhs, rhs_attr in fd_list:
                groups: dict[tuple[Symbol, ...], Symbol] = {}
                for row in rows:
                    signature = tuple(uf.find(row[a]) for a in lhs)
                    rhs_symbol = uf.find(row[rhs_attr])
                    anchor = groups.get(signature)
                    if anchor is None:
                        groups[signature] = rhs_symbol
                    elif uf.union(anchor, rhs_symbol):
                        steps += 1
                        changed = True
                        # Keep the group's anchor current so later rows in
                        # this pass merge against the surviving symbol.
                        groups[signature] = uf.find(anchor)
    except _Contradiction:
        return ChaseResult(
            Tableau(tableau.universe),
            consistent=False,
            steps=steps,
            passes=passes,
        )

    resolved = Tableau(
        tableau.universe,
        (
            Row({a: uf.find(row[a]) for a in tableau.universe}, tag=row.tag)
            for row in rows
        ),
    )
    return ChaseResult(resolved, consistent=True, steps=steps, passes=passes)


def satisfies(tableau: Tableau, fds: FDsLike) -> bool:
    """True iff the tableau, read as a relation of symbols, satisfies the
    fds — i.e. the chase performs no merge at all."""
    result = chase(tableau, fds)
    return result.consistent and result.steps == 0
