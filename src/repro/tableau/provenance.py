"""A proof-producing chase: per-tuple derivation lengths and lineage.

The boundedness definition (paper, Section 2.5) counts the fd-rule
applications needed to derive *one* total tuple: a scheme is bounded
when a constant ``k`` suffices for every tuple in every consistent
state.  The plain chase engine reports only aggregate work; this module
re-runs the chase recording *why* every symbol identification happened
— the technique is the proof-producing union-find of congruence-closure
solvers (Nieuwenhuis & Oliveras): each union is an edge in a proof
forest labelled with the fd-rule application that caused it, and each
application in turn depends on the identifications that made its two
rows agree on the left-hand side.

``derivation_events(cell)`` returns the transitive set of applications
needed to make a cell constant; ``tuple_derivation_length`` maximizes
over a row's cells — exactly the paper's "obtained in at most k fd-rule
applications".  Bench E14 uses this to show the bounded/unbounded
separation per tuple, not just in the aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import sorted_attrs
from repro.tableau.symbols import Symbol, is_constant, preferred
from repro.tableau.tableau import Tableau


@dataclass(frozen=True)
class Application:
    """One fd-rule application: the fd used, the two rows equated, and
    the attribute whose symbols were merged."""

    event_id: int
    lhs: tuple[str, ...]
    rhs_attr: str
    row_a: int
    row_b: int


class _ExplainingUnionFind:
    """Union-find with a proof forest: ``explain(a, b)`` returns the
    event ids on the forest path connecting two symbols."""

    def __init__(self) -> None:
        self._parent: dict[Symbol, Symbol] = {}
        # Proof forest: undirected edges symbol—symbol labelled with an
        # event id, stored as adjacency.
        self._proof: dict[Symbol, list[tuple[Symbol, int]]] = {}

    def find(self, symbol: Symbol) -> Symbol:
        parent = self._parent
        root = symbol
        while root in parent:
            root = parent[root]
        while symbol in parent:
            parent[symbol], symbol = root, parent[symbol]
        return root

    def union(self, left: Symbol, right: Symbol, event_id: int) -> bool:
        """Equate two symbols, recording the proof edge.  Returns False
        when already equal; raises on constant-constant conflicts."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        if is_constant(left_root) and is_constant(right_root):
            raise _Contradiction(event_id)
        winner = preferred(left_root, right_root)
        loser = right_root if winner == left_root else left_root
        self._parent[loser] = winner
        # The proof edge connects the *original* symbols the rule
        # equated, not the roots: the path through the forest between
        # any two equal symbols then yields the explaining events.
        self._proof.setdefault(left, []).append((right, event_id))
        self._proof.setdefault(right, []).append((left, event_id))
        return True

    def explain(self, left: Symbol, right: Symbol) -> Optional[list[int]]:
        """Event ids on the proof-forest path from ``left`` to ``right``
        (empty when identical), or None when not connected."""
        if left == right:
            return []
        frontier = [left]
        came_from: dict[Symbol, tuple[Symbol, int]] = {left: (left, -1)}
        while frontier:
            current = frontier.pop()
            for neighbor, event_id in self._proof.get(current, ()):
                if neighbor in came_from:
                    continue
                came_from[neighbor] = (current, event_id)
                if neighbor == right:
                    events = []
                    node = right
                    while node != left:
                        node, edge = came_from[node]
                        events.append(edge)
                    return events
                frontier.append(neighbor)
        return None


class _Contradiction(Exception):
    def __init__(self, event_id: int) -> None:
        self.event_id = event_id


class ProvenanceChase:
    """Chase a tableau while building per-identification provenance.

    After construction, query ``derivation_events(row, attr)`` for the
    full set of fd-rule applications a cell's constant depends on, and
    ``tuple_derivation_length(row, attrs)`` for the paper's per-tuple
    application count.
    """

    def __init__(self, tableau: Tableau, fds: FDsLike) -> None:
        self.tableau = tableau
        self._rows = tableau.rows
        self._fd_list = [
            (tuple(sorted_attrs(d.lhs)), next(iter(d.rhs)))
            for d in FDSet(fds).split_rhs().nontrivial()
        ]
        self._uf = _ExplainingUnionFind()
        self._applications: dict[int, Application] = {}
        self.consistent = True
        self.conflict_events: Optional[frozenset[int]] = None
        self._memo: dict[int, frozenset[int]] = {}
        self._run()

    # -- chase -------------------------------------------------------------
    def _run(self) -> None:
        uf = self._uf
        next_event = 0
        changed = True
        while changed and self.consistent:
            changed = False
            for lhs, rhs_attr in self._fd_list:
                anchors: dict[tuple[Symbol, ...], int] = {}
                for index, row in enumerate(self._rows):
                    signature = tuple(uf.find(row[a]) for a in lhs)
                    anchor = anchors.setdefault(signature, index)
                    if anchor == index:
                        continue
                    a_sym = self._rows[anchor][rhs_attr]
                    b_sym = row[rhs_attr]
                    a_root, b_root = uf.find(a_sym), uf.find(b_sym)
                    if a_root == b_root:
                        continue
                    event_id = next_event
                    next_event += 1
                    self._applications[event_id] = Application(
                        event_id=event_id,
                        lhs=lhs,
                        rhs_attr=rhs_attr,
                        row_a=anchor,
                        row_b=index,
                    )
                    if is_constant(a_root) and is_constant(b_root):
                        # Contradiction.  Its full cause: this
                        # application, the identifications behind the
                        # lhs agreement, and the identifications that
                        # made each rhs symbol carry its constant.
                        self.consistent = False
                        causes = {event_id}
                        causes.update(uf.explain(a_sym, a_root) or [])
                        causes.update(uf.explain(b_sym, b_root) or [])
                        self.conflict_events = self._close_over(
                            frozenset(causes)
                        )
                        return
                    uf.union(a_sym, b_sym, event_id)
                    changed = True

    # -- provenance ------------------------------------------------------------
    def _event_dependencies(self, event_id: int) -> frozenset[int]:
        """The events this application directly depends on: those that
        made its two rows agree on each lhs attribute."""
        cached = self._memo.get(event_id)
        if cached is not None:
            return cached
        self._memo[event_id] = frozenset()  # cycle guard
        application = self._applications[event_id]
        depends: set[int] = set()
        row_a = self._rows[application.row_a]
        row_b = self._rows[application.row_b]
        for attribute in application.lhs:
            path = self._uf.explain(row_a[attribute], row_b[attribute])
            if path:
                depends.update(path)
        result = frozenset(depends)
        self._memo[event_id] = result
        return result

    def _close_over(self, events: frozenset[int]) -> frozenset[int]:
        closed: set[int] = set()
        frontier = sorted(events)
        while frontier:
            event_id = frontier.pop()
            if event_id in closed or event_id < 0:
                continue
            closed.add(event_id)
            frontier.extend(self._event_dependencies(event_id))
        return frozenset(closed)

    def resolved(self, row_index: int, attribute: str) -> Symbol:
        """The cell's symbol after chasing."""
        return self._uf.find(self._rows[row_index][attribute])

    def derivation_events(
        self, row_index: int, attribute: str
    ) -> Optional[frozenset[int]]:
        """All fd-rule applications the cell's constant depends on, or
        None when the cell did not resolve to a constant.

        A cell that stored a constant from the start depends on no
        events (the empty set).
        """
        original = self._rows[row_index][attribute]
        root = self._uf.find(original)
        if not is_constant(root):
            return None
        path = self._uf.explain(original, root)
        if path is None:  # pragma: no cover - forest connects by invariant
            return None
        return self._close_over(frozenset(path))

    def tuple_derivation_length(
        self, row_index: int, attributes
    ) -> Optional[int]:
        """The number of fd-rule applications needed to make the row
        total on ``attributes`` — the paper's per-tuple boundedness
        quantity (an upper bound realized by this chase run)."""
        needed: set[int] = set()
        for attribute in sorted_attrs(frozenset(attributes)):
            events = self.derivation_events(row_index, attribute)
            if events is None:
                return None
            needed.update(events)
        return len(needed)

    def max_derivation_length(self, attributes) -> int:
        """The maximum per-row derivation length over rows that become
        total on ``attributes`` (0 when no row does)."""
        best = 0
        for index in range(len(self._rows)):
            length = self.tuple_derivation_length(index, attributes)
            if length is not None:
                best = max(best, length)
        return best
