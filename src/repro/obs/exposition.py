"""Prometheus text exposition (version 0.0.4) for metrics and spans.

Renders a :class:`~repro.service.metrics.MetricsRegistry` snapshot and
the tracer's per-stage latency histograms into the plain-text format a
Prometheus scraper (or ``promtool check metrics``) accepts:

* counters → ``repro_<name>_total`` with ``# TYPE ... counter``;
* gauges → ``repro_<name>`` with ``# TYPE ... gauge``;
* span histograms → ``repro_span_<name>_seconds`` as native histograms
  (cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``).

Dots and other characters outside ``[a-zA-Z0-9_:]`` become underscores.
Two input metrics that sanitize to the same exposition name raise
:class:`ValueError` — the registry itself refuses cross-namespace
collisions (see ``MetricsRegistry.snapshot``), and this guard catches
the remaining sanitization-induced ones instead of emitting a series
twice.
"""

from __future__ import annotations

import re
from typing import Mapping, Optional, Union

from repro.obs.histogram import LatencyHistogram

Number = Union[int, float]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

_LABELED = re.compile(r"^(?P<base>[^{}]+)\{(?P<labels>[^{}]*)\}$")


def sanitize_metric_name(name: str) -> str:
    """``name`` mapped into the Prometheus metric-name alphabet."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def split_labels(name: str) -> tuple[str, Optional[str]]:
    """Split ``name{key="value",...}`` into ``(name, labels)``.

    The sharding tier stores per-shard series under labeled names (see
    :func:`repro.service.metrics.labeled`); only the base name is
    sanitized, the label block passes through verbatim.  A name with no
    label block returns ``(name, None)``.
    """
    match = _LABELED.match(name)
    if match is None:
        return name, None
    return match.group("base"), match.group("labels")


def _format_value(value: Number) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        # Series identity is (family, labels): the same family may
        # carry one unlabeled series plus one per shard, but an exact
        # repeat is still a collision.
        self._seen: set[tuple[str, Optional[str]]] = set()
        self._typed: set[str] = set()

    def claim(self, name: str, labels: Optional[str], source: str) -> None:
        key = (name, labels)
        if key in self._seen:
            raise ValueError(
                f"metric {source!r} collides with an already-emitted "
                f"series named {name!r}"
            )
        self._seen.add(key)

    def _type_line(self, name: str, kind: str) -> None:
        # Prometheus wants the TYPE comment once per family, however
        # many labeled series the family carries.
        if name not in self._typed:
            self._typed.add(name)
            self.lines.append(f"# TYPE {name} {kind}")

    def simple(
        self,
        name: str,
        labels: Optional[str],
        kind: str,
        value: Number,
        source: str,
    ) -> None:
        self.claim(name, labels, source)
        self._type_line(name, kind)
        rendered = name if labels is None else f"{name}{{{labels}}}"
        self.lines.append(f"{rendered} {_format_value(value)}")

    def histogram(
        self, name: str, histogram: LatencyHistogram, source: str
    ) -> None:
        self.claim(name, None, source)
        self._type_line(name, "histogram")
        for bound, cumulative in histogram.cumulative_buckets():
            self.lines.append(
                f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        self.lines.append(f"{name}_sum {_format_value(histogram.total)}")
        self.lines.append(f"{name}_count {histogram.count}")


def prometheus_text(
    counters: Optional[Mapping[str, Number]] = None,
    gauges: Optional[Mapping[str, Number]] = None,
    histograms: Optional[Mapping[str, LatencyHistogram]] = None,
    prefix: str = "repro",
) -> str:
    """The exposition document for the given metric families.

    Every series name is prefixed with ``prefix`` and sanitized; the
    result ends with a newline, ready to serve as
    ``text/plain; version=0.0.4``.
    """
    emitter = _Emitter()
    for name, value in sorted((counters or {}).items()):
        base, labels = split_labels(name)
        emitter.simple(
            f"{prefix}_{sanitize_metric_name(base)}_total",
            labels,
            "counter",
            value,
            name,
        )
    for name, value in sorted((gauges or {}).items()):
        base, labels = split_labels(name)
        emitter.simple(
            f"{prefix}_{sanitize_metric_name(base)}",
            labels,
            "gauge",
            value,
            name,
        )
    for name, histogram in sorted((histograms or {}).items()):
        emitter.histogram(
            f"{prefix}_span_{sanitize_metric_name(name)}_seconds",
            histogram,
            name,
        )
    return "\n".join(emitter.lines) + "\n" if emitter.lines else ""


def parse_exposition(text: str) -> dict[str, float]:
    """Parse an exposition document back into ``{series: value}``.

    A deliberately strict reader used by the trace-smoke check and the
    tests: every non-comment line must be ``name[{labels}] value``, and
    a repeated series (same name and labels) raises :class:`ValueError`.
    """
    series: dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            raise ValueError(f"line {line_number}: not 'name value': {line!r}")
        name, raw_value = parts
        try:
            value = float(raw_value.replace("+Inf", "inf"))
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad sample value {raw_value!r}"
            ) from None
        if name in series:
            raise ValueError(f"line {line_number}: duplicate series {name!r}")
        series[name] = value
    return series
