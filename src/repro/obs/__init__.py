"""Engine-deep observability: spans, latency histograms, exposition.

The serving layer's flat counters (:mod:`repro.service.metrics`) say
*what* a process did; this package says *where the time went*.  Spans
wrap the evaluation core's stages — chase runs, join-pipeline
evaluations, plan construction, store and WAL operations — and record
per-stage counters (chase steps and passes, tuples in/out, semi-join
reduction, bytes appended) into bounded latency histograms with
p50/p95/p99, exposed through ``repro stats``, the serve protocol's
``stats``/``prometheus`` commands, and ``BENCH_perf.json``.

Tracing is off by default and near-free when off: each instrumented
call site pays one context-var read.  See :mod:`repro.obs.spans` for
the activation model (context-local vs. process-global) and the
slow-op JSONL log.
"""

from repro.obs.histogram import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    merge_histograms,
)
from repro.obs.exposition import (
    parse_exposition,
    prometheus_text,
    sanitize_metric_name,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    install,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_tracer",
    "install",
    "merge_histograms",
    "parse_exposition",
    "prometheus_text",
    "sanitize_metric_name",
    "span",
    "tracing",
    "tracing_enabled",
]
