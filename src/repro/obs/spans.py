"""Lightweight tracing spans reaching from the service into the engine.

A *span* measures one stage of work — a chase run, a join-pipeline
evaluation, a WAL append — and attaches counters describing how much
work the stage did (rule firings, tuples in/out, bytes).  Spans are
recorded into the active :class:`Tracer`, which aggregates them into
bounded per-stage latency histograms
(:class:`~repro.obs.histogram.LatencyHistogram`) and summed counters.

The active tracer is resolved through a :class:`contextvars.ContextVar`
with a process-global fallback:

* ``with tracing(tracer): ...`` activates a tracer for the current
  context (and thread) only — used by ``SchemeServer`` so concurrent
  sessions record into the server's tracer;
* :func:`install` sets the global fallback — used by the CLI's
  ``--trace`` flag and ``repro.bench`` so every stage in the process
  reports in.

When no tracer is active, :func:`span` returns a shared no-op handle:
the instrumented hot paths pay one context-var read and a ``with``
block, nothing else — no timestamps, no allocation per call.

Slow-op logging: a tracer constructed with ``slow_log`` writes one
JSONL line per span whose duration reaches ``slow_threshold`` seconds
(0.0 logs every span)::

    {"ts": 1754000000.123, "span": "chase.relations",
     "seconds": 0.0421, "counters": {"rows": 4096, "steps": 511}}
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import IO, Iterator, Optional, Union

from repro.obs.histogram import LatencyHistogram


class _NullSpan:
    """The shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One live measurement: times itself and carries counters."""

    __slots__ = ("_tracer", "name", "_counters", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._counters: dict[str, float] = {}
        self._start = 0.0

    def add(self, counter: str, amount: float = 1) -> None:
        """Accumulate ``amount`` into the span's ``counter``."""
        counters = self._counters
        counters[counter] = counters.get(counter, 0) + amount

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_: object) -> bool:
        elapsed = time.perf_counter() - self._start
        self._tracer.record(self.name, elapsed, self._counters)
        return False


class Tracer:
    """Aggregates spans into per-stage histograms and counters.

    Thread-safe: the serving layer records spans from writer and reader
    threads concurrently.  ``slow_log`` (a path or open text handle)
    enables the JSONL slow-op log for spans at least ``slow_threshold``
    seconds long.
    """

    def __init__(
        self,
        slow_log: Union[str, Path, IO[str], None] = None,
        slow_threshold: float = 0.0,
    ) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}  # guarded-by: _lock
        self._counters: dict[str, float] = {}  # guarded-by: _lock
        self.slow_threshold = slow_threshold
        self._slow_handle: Optional[IO[str]] = None  # guarded-by: _lock
        self._owns_handle = False
        if slow_log is not None:
            if hasattr(slow_log, "write"):
                self._slow_handle = slow_log  # type: ignore[assignment]
            else:
                self._slow_handle = open(slow_log, "a", encoding="utf-8")
                self._owns_handle = True

    # -- recording -------------------------------------------------------------
    def record(
        self,
        name: str,
        seconds: float,
        counters: Optional[dict[str, float]] = None,
    ) -> None:
        """Fold one finished span into the aggregates (and the slow-op
        log when it qualifies)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)
            if counters:
                aggregate = self._counters
                for counter, amount in counters.items():
                    key = f"{name}.{counter}"
                    aggregate[key] = aggregate.get(key, 0) + amount
            handle = self._slow_handle
            if handle is not None and seconds >= self.slow_threshold:
                handle.write(
                    json.dumps(
                        {
                            "ts": round(time.time(), 6),
                            "span": name,
                            "seconds": round(seconds, 9),
                            "counters": counters or {},
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )

    # -- reporting -------------------------------------------------------------
    def histograms(self) -> dict[str, LatencyHistogram]:
        """A shallow copy of the per-stage histograms (stable to
        iterate while spans keep arriving)."""
        with self._lock:
            return dict(self._histograms)

    def span_summaries(self) -> dict[str, dict[str, float]]:
        """Per-stage ``{count, sum, min, max, p50, p95, p99}`` dicts."""
        with self._lock:
            return {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            }

    def counter_snapshot(self) -> dict[str, float]:
        """The summed span counters (``<span>.<counter>`` → total)."""
        with self._lock:
            return dict(self._counters)

    def stats(self) -> dict[str, dict]:
        """Everything an operator asks for: histogram summaries plus
        the summed counters, JSON-ready."""
        return {
            "spans": self.span_summaries(),
            "counters": self.counter_snapshot(),
        }

    def flush(self) -> None:
        with self._lock:
            if self._slow_handle is not None:
                self._slow_handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._slow_handle is not None:
                self._slow_handle.flush()
                if self._owns_handle:
                    self._slow_handle.close()
                self._slow_handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()


#: Context-local active tracer; ``None`` falls back to the global one.
_tracer_var: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_tracer", default=None
)
_global_tracer: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The tracer spans record into right now (context-local first,
    then the installed global), or ``None`` when tracing is off."""
    tracer = _tracer_var.get()
    return tracer if tracer is not None else _global_tracer


def tracing_enabled() -> bool:
    return current_tracer() is not None


def span(name: str) -> Union[Span, _NullSpan]:
    """A measurement handle for the stage ``name``.

    Usage at every instrumentation point::

        with span("chase.relations") as sp:
            ...
            sp.add("steps", steps)

    Returns the shared no-op handle when no tracer is active, so
    disabled tracing costs one context-var read per call site.
    """
    tracer = _tracer_var.get()
    if tracer is None:
        tracer = _global_tracer
        if tracer is None:
            return NULL_SPAN
    return Span(tracer, name)


@contextmanager
def tracing(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Activate ``tracer`` for the current context (no-op for
    ``None``, so callers can pass an optional straight through)."""
    if tracer is None:
        yield None
        return
    token = _tracer_var.set(tracer)
    try:
        yield tracer
    finally:
        _tracer_var.reset(token)


def install(tracer: Optional[Tracer]) -> None:
    """Set (or with ``None`` clear) the process-global fallback tracer."""
    global _global_tracer
    _global_tracer = tracer
