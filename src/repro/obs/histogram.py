"""Bounded latency histograms with percentile estimation.

A :class:`LatencyHistogram` records durations (seconds) into a fixed
set of logarithmically spaced buckets — four per decade from 1 µs to
100 s — so memory stays constant no matter how many observations land
in it, and p50/p95/p99 come out with relative error bounded by the
bucket ratio (≈ 78% per bucket step, interpolated linearly inside the
bucket, clamped by the exact min/max).

The class is deliberately free of locking: the tracer that feeds it
(:mod:`repro.obs.spans`) serializes writers, and single-threaded users
(``repro.bench``) need no lock at all.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

#: Upper bucket boundaries in seconds: 10^(k/4) for k in [-24, 8], i.e.
#: 1 µs … 100 s in steps of ×10^0.25 (~1.78).  Everything above the last
#: boundary lands in one overflow bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (k / 4.0) for k in range(-24, 9)
)


class LatencyHistogram:
    """Fixed-size log-bucketed histogram of durations in seconds."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        # One count per boundary plus the overflow bucket.
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        self.counts[bisect_right(BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one."""
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    # -- percentiles -----------------------------------------------------------
    def percentile(self, fraction: float) -> float:
        """The estimated value at quantile ``fraction`` (0 < f ≤ 1).

        Finds the bucket holding the ranked observation and
        interpolates linearly between its bounds; the result is clamped
        to the exact observed ``[min, max]`` so tiny sample counts never
        report a value outside what was actually seen.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < fraction <= 1.0:
            raise ValueError("percentile fraction must be in (0, 1]")
        rank = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else self.max
                )
                within = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * within
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches rank

    # -- reporting -------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Count, sum and the headline percentiles as a JSON-ready dict."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min, 9),
            "max": round(self.max, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
        }

    def cumulative_buckets(self) -> Iterable[tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs in Prometheus
        ``le`` form, ending with ``(inf, count)``."""
        cumulative = 0
        for bound, bucket_count in zip(BUCKET_BOUNDS, self.counts):
            cumulative += bucket_count
            yield bound, cumulative
        yield float("inf"), self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        summary = self.summary()
        return (
            f"LatencyHistogram(count={summary['count']}, "
            f"p50={summary['p50']}, p95={summary['p95']}, "
            f"p99={summary['p99']})"
        )


def merge_histograms(
    histograms: Sequence[LatencyHistogram],
) -> LatencyHistogram:
    """A new histogram holding every observation of ``histograms``."""
    merged = LatencyHistogram()
    for histogram in histograms:
        merged.merge(histogram)
    return merged
