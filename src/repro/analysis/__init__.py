"""Scheme classification front-end and the invariant linter.

Two residents share this package:

* :func:`analyze_scheme` / :class:`SchemeReport` — the paper-facing
  scheme classification report (independence reducibility, key cover,
  chase strategy).
* The invariant linter behind ``repro lint`` — an AST-based static
  analyzer enforcing the codebase's own runtime invariants: lock
  discipline over ``# guarded-by`` fields, determinism of chase/join
  outputs, span hygiene against the catalogue in
  ``docs/ARCHITECTURE.md``, resource/exception safety, and the
  concurrency packs (async discipline, fork safety, cross-file
  lock-order acyclicity, read-cache invalidation coverage).  See
  ``docs/ANALYSIS.md``.
"""

from repro.analysis.findings import (
    RULE_CODES,
    Finding,
    render_json,
    render_text,
    worst_severity,
)
from repro.analysis.linter import (
    ALL_RULES,
    FILE_RULES,
    PROJECT_RULES,
    Analyzer,
    lint_paths,
)
from repro.analysis.report import SchemeReport, analyze_scheme
from repro.analysis.rules_invalidation import (
    InvalidationConfig,
    default_invalidation_config,
)
from repro.analysis.rules_spans import SpanConfig, default_config

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "FILE_RULES",
    "Finding",
    "InvalidationConfig",
    "PROJECT_RULES",
    "RULE_CODES",
    "SchemeReport",
    "SpanConfig",
    "analyze_scheme",
    "default_config",
    "default_invalidation_config",
    "lint_paths",
    "render_json",
    "render_text",
    "worst_severity",
]
