"""Scheme classification front-end."""

from repro.analysis.report import SchemeReport, analyze_scheme

__all__ = ["SchemeReport", "analyze_scheme"]
