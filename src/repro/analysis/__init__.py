"""Scheme classification front-end and the invariant linter.

Two residents share this package:

* :func:`analyze_scheme` / :class:`SchemeReport` — the paper-facing
  scheme classification report (independence reducibility, key cover,
  chase strategy).
* The invariant linter behind ``repro lint`` — an AST-based static
  analyzer enforcing the codebase's own runtime invariants: lock
  discipline over ``# guarded-by`` fields, determinism of chase/join
  outputs, span hygiene against the catalogue in
  ``docs/ARCHITECTURE.md``, and resource/exception safety.  See
  ``docs/ANALYSIS.md``.
"""

from repro.analysis.findings import (
    Finding,
    render_json,
    render_text,
    worst_severity,
)
from repro.analysis.linter import ALL_RULES, Analyzer, lint_paths
from repro.analysis.report import SchemeReport, analyze_scheme
from repro.analysis.rules_spans import SpanConfig, default_config

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "Finding",
    "SchemeReport",
    "SpanConfig",
    "analyze_scheme",
    "default_config",
    "lint_paths",
    "render_json",
    "render_text",
    "worst_severity",
]
