"""Resource/exception-safety lint: handles are closed on every path.

The durable layer holds real OS resources — WAL file handles, thread
pools — and a handle acquired outside a ``with`` block leaks when the
code between acquisition and ``close()`` raises.  The rule flags an
``open(...)`` / ``ThreadPoolExecutor(...)`` / ``ProcessPoolExecutor``
result that is

* bound to a *local* name,
* not acquired by a ``with`` statement,
* not released by ``.close()`` / ``.shutdown()`` inside a ``finally``
  block of the same function, and
* not *escaping* the function — returned, yielded, stored on ``self``
  or into a container, or passed to another call (whoever receives the
  handle owns its lifetime; ``DurableStore.__init__`` stashing its WAL
  on ``self`` with a paired ``close()`` is the legitimate pattern).

Anonymous acquisition — ``parse(open(path))`` — is flagged too: nobody
holds the handle, so nobody can close it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.astcheck import SourceFile, call_name, parents
from repro.analysis.findings import Finding

RULE_ID = "resource-safety"

#: Acquisition calls → what they acquire (for messages).
ACQUIRERS = {
    "open": "file handle",
    "ThreadPoolExecutor": "thread pool",
    "ProcessPoolExecutor": "process pool",
}

#: Release method per acquisition.
RELEASERS = {
    "open": ("close",),
    "ThreadPoolExecutor": ("shutdown", "close"),
    "ProcessPoolExecutor": ("shutdown", "close"),
}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _owner_function(node: ast.AST) -> Optional[FunctionNode]:
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _is_with_item(call: ast.Call) -> bool:
    """``with open(...) as f:`` — including ``with open(...)`` wrapped
    in ``contextlib.closing`` style calls as a direct context item."""
    parent = getattr(call, "parent", None)
    return isinstance(parent, ast.withitem)


def _assigned_local(call: ast.Call) -> Optional[str]:
    """The local name a call's result is bound to by a simple
    assignment (``handle = open(...)``), else ``None``."""
    parent = getattr(call, "parent", None)
    if isinstance(parent, ast.Assign) and parent.value is call:
        if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
            return parent.targets[0].id
    if (
        isinstance(parent, ast.AnnAssign)
        and parent.value is call
        and isinstance(parent.target, ast.Name)
    ):
        return parent.target.id
    return None


def _finally_blocks(function: FunctionNode) -> Iterator[ast.stmt]:
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            yield from node.finalbody


def _released_in_finally(
    function: FunctionNode, name: str, releasers: tuple[str, ...]
) -> bool:
    for stmt in _finally_blocks(function):
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in releasers
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
    return False


def _mentions(node: ast.expr, name: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == name
        for child in ast.walk(node)
    )


def _self_call_receiver(call: ast.Call, name: str) -> bool:
    """``name.close()`` — the call *on* the handle, which must not count
    as the handle escaping via an argument."""
    return (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == name
    )


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        acquirer = call_name(node)
        if acquirer not in ACQUIRERS:
            continue
        if _is_with_item(node):
            continue
        what = ACQUIRERS[acquirer]
        local = _assigned_local(node)
        function = _owner_function(node)

        if local is None:
            # Anonymous handle used inline: parse(open(path)) — the
            # handle is unreachable after the call, so it cannot be
            # closed.  A bare expression statement open(...) is equally
            # lost.  Module-level `X = open(...)` bound to a global is
            # ignored (process-lifetime handles are a deliberate
            # pattern, e.g. log sinks).
            parent = getattr(node, "parent", None)
            if isinstance(parent, (ast.Call, ast.Expr)):
                findings.append(
                    Finding(
                        path=source.display,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=RULE_ID,
                        severity="error",
                        message=(
                            f"anonymous {what} from {acquirer}(...) can "
                            "never be closed; use `with` or bind it and "
                            "close it in a finally block"
                        ),
                    )
                )
            continue

        if function is None:
            continue  # module-level binding: process-lifetime handle
        if _released_in_finally(function, local, RELEASERS[acquirer]):
            continue
        if _escapes_excluding_release(function, local, RELEASERS[acquirer]):
            continue
        findings.append(
            Finding(
                path=source.display,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=RULE_ID,
                severity="error",
                message=(
                    f"{what} `{local}` from {acquirer}(...) is not "
                    "managed: use `with`, or close it in a finally "
                    "block (it leaks if the code between raises)"
                ),
            )
        )
    return findings


def _escapes_excluding_release(
    function: FunctionNode, name: str, releasers: tuple[str, ...]
) -> bool:
    """Like :func:`_escapes`, but a plain ``name.close()`` call (outside
    finally) does not count as escaping — and does not count as safe
    either, since an exception before it still leaks."""
    for node in ast.walk(function):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and _mentions(value, name):
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _mentions(value, name):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True
        elif isinstance(node, ast.Call):
            if _self_call_receiver(node, name):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
    return False
