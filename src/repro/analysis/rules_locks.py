"""Lock-discipline lint: ``# guarded-by`` annotated fields stay locked.

The serving layer's thread-safety rests on a handful of fields only
ever being touched under a specific lock (``SchemeServer._sessions``
under ``_sessions_lock``, the engine's lazily-built executor under its
guard, every ``LRUCache``/``MetricsRegistry``/``Tracer`` internal dict
under ``self._lock``).  Nothing enforced that — one new method reading
such a field lock-free compiles, passes the single-threaded tests, and
races in production.

The convention: annotate the field's defining assignment (normally in
``__init__``) with a trailing comment::

    self._sessions: dict[str, Session] = {}  # guarded-by: _sessions_lock
    self._state = store.state  # guarded-by: _write_lock (writes)

Then, inside the class, every load or store of ``self.<field>`` must
happen either

* lexically inside a ``with self.<lock>:`` block (multi-item ``with``
  statements count, so ``with self._write_lock, tracing(...):`` is
  recognised), or
* inside ``__init__`` (construction happens-before publication), or
* inside a ``_``-prefixed helper method — assumed to be reached from a
  locked public method; the helper boundary is where this lexical
  analysis stops, exactly as the annotation convention documents.

The ``(writes)`` mode checks stores only: the serving layer's
snapshot-pointer fields are deliberately read lock-free (readers grab
the immutable state object the pointer names), while every writer must
still serialize through the lock.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from repro.analysis.astcheck import (
    GuardAnnotation,
    SourceFile,
    parents,
    self_attribute,
    with_lock_attrs,
)
from repro.analysis.findings import Finding

RULE_ID = "lock-discipline"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _guarded_fields(
    source: SourceFile, class_node: ast.ClassDef
) -> dict[str, GuardAnnotation]:
    """``field → annotation`` for every ``self.X = ...`` assignment in
    the class carrying a ``guarded-by`` comment."""
    guarded: dict[str, GuardAnnotation] = {}
    for node in ast.walk(class_node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            field = self_attribute(target)
            if field is None:
                continue
            annotation = source.guard_annotation(node.lineno)
            if annotation is not None:
                guarded.setdefault(field, annotation)
    return guarded


def _enclosing_method(node: ast.AST, class_node: ast.ClassDef) -> Optional[
    FunctionNode
]:
    """The method of ``class_node`` whose body contains ``node`` —
    the *outermost* function below the class, so code in nested
    closures is attributed to the method that defines them."""
    method: Optional[FunctionNode] = None
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = ancestor
        elif isinstance(ancestor, ast.ClassDef):
            return method if ancestor is class_node else None
    return None


def _locks_held(node: ast.AST, class_node: ast.ClassDef) -> set[str]:
    """Lock attributes taken by ``with`` statements enclosing ``node``
    within the current method."""
    held: set[str] = set()
    for ancestor in parents(node):
        if isinstance(ancestor, ast.With):
            held.update(with_lock_attrs(ancestor))
        elif isinstance(ancestor, ast.ClassDef) and ancestor is class_node:
            break
    return held


def _is_store(node: ast.Attribute) -> bool:
    return isinstance(node.ctx, (ast.Store, ast.Del))


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for class_node in ast.walk(source.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        guarded = _guarded_fields(source, class_node)
        if not guarded:
            continue
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Attribute):
                continue
            field = self_attribute(node)
            if field is None or field not in guarded:
                continue
            annotation = guarded[field]
            is_store = _is_store(node)
            if annotation.mode == "writes" and not is_store:
                continue
            method = _enclosing_method(node, class_node)
            if method is None:
                continue  # class-body level: not runtime access
            if method.name == "__init__":
                continue  # construction happens-before publication
            if method.name.startswith("_") and not (
                method.name.startswith("__") and method.name.endswith("__")
            ):
                continue  # private helper: assumed reached under the lock
            if annotation.lock in _locks_held(node, class_node):
                continue
            access = "write to" if is_store else "read of"
            findings.append(
                Finding(
                    path=source.display,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=RULE_ID,
                    severity="error",
                    message=(
                        f"{access} {class_node.name}.{field} outside "
                        f"`with self.{annotation.lock}:` "
                        f"(field is guarded-by: {annotation.lock}"
                        + (
                            " (writes)"
                            if annotation.mode == "writes"
                            else ""
                        )
                        + f", declared at line {annotation.line})"
                    ),
                )
            )
    return findings
