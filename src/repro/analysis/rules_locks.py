"""Lock-discipline lint: ``# guarded-by`` annotated fields stay locked.

The serving layer's thread-safety rests on a handful of fields only
ever being touched under a specific lock (``SchemeServer._sessions``
under ``_sessions_lock``, the engine's lazily-built executor under its
guard, every ``LRUCache``/``MetricsRegistry``/``Tracer`` internal dict
under ``self._lock``).  Nothing enforced that — one new method reading
such a field lock-free compiles, passes the single-threaded tests, and
races in production.

The convention: annotate the field's defining assignment (normally in
``__init__``) with a trailing comment::

    self._sessions: dict[str, Session] = {}  # guarded-by: _sessions_lock
    self._state = store.state  # guarded-by: _write_lock (writes)

Then, inside the class, every load or store of ``self.<field>`` must
happen either

* lexically inside a ``with self.<lock>:`` block (multi-item ``with``
  statements count, so ``with self._write_lock, tracing(...):`` is
  recognised), or
* lexically inside the body of a ``try`` whose ``finally`` releases
  the lock, paired with a ``self.<lock>.acquire()`` directly before or
  inside the ``try`` — the manual idiom the fan-out path uses to
  release exactly the locks it managed to take, or
* inside ``__init__`` (construction happens-before publication), or
* inside a ``_``-prefixed helper method — assumed to be reached from a
  locked public method; the helper boundary is where this lexical
  analysis stops, exactly as the annotation convention documents.

The ``(writes)`` mode checks stores only: the serving layer's
snapshot-pointer fields are deliberately read lock-free (readers grab
the immutable state object the pointer names), while every writer must
still serialize through the lock.

This module also hosts the project-wide **lock-order** analysis
(:data:`ORDER_RULE_ID`): it collects every lexical nested acquisition
(``with self.A:`` around ``with self.B:``, the acquire/``finally``
idiom included) as an edge ``A → B`` of a lock-acquisition graph, adds
the edges implied by ``# guarded-by`` annotations (a private helper
that touches a field guarded by ``L`` without holding ``L`` is reached
with ``L`` already taken, so any lock it acquires inside is ordered
after ``L``), accumulates the graph *across files*, and errors on
every cycle — two call paths that interleave a cycle's locks in
opposite orders deadlock.  The finding carries the full cycle path.
``# allow-lock-order: <reason>`` on an acquisition suppresses the
edges that acquisition contributes.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Union

from repro.analysis.astcheck import (
    GuardAnnotation,
    SourceFile,
    dotted_name,
    enclosing_class,
    held_lock_attrs,
    is_lockish,
    parents,
    self_attribute,
    try_finally_locks,
)
from repro.analysis.findings import Finding

RULE_ID = "lock-discipline"

#: The project-wide deadlock analysis registered alongside the
#: per-file discipline rule.
ORDER_RULE_ID = "lock-order"

#: The exemption comment marker: ``# allow-lock-order: <reason>``.
ORDER_ALLOW_MARKER = "lock-order"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _guarded_fields(
    source: SourceFile, class_node: ast.ClassDef
) -> dict[str, GuardAnnotation]:
    """``field → annotation`` for every ``self.X = ...`` assignment in
    the class carrying a ``guarded-by`` comment."""
    guarded: dict[str, GuardAnnotation] = {}
    for node in ast.walk(class_node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            field = self_attribute(target)
            if field is None:
                continue
            annotation = source.guard_annotation(node.lineno)
            if annotation is not None:
                guarded.setdefault(field, annotation)
    return guarded


def _enclosing_method(node: ast.AST, class_node: ast.ClassDef) -> Optional[
    FunctionNode
]:
    """The method of ``class_node`` whose body contains ``node`` —
    the *outermost* function below the class, so code in nested
    closures is attributed to the method that defines them."""
    method: Optional[FunctionNode] = None
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = ancestor
        elif isinstance(ancestor, ast.ClassDef):
            return method if ancestor is class_node else None
    return None


def _locks_held(node: ast.AST, class_node: ast.ClassDef) -> set[str]:
    """Lock attributes held at ``node`` within the current class:
    enclosing ``with`` statements plus the acquire/``finally``-release
    idiom (see :func:`~repro.analysis.astcheck.held_lock_attrs`)."""
    return held_lock_attrs(node, stop_class=class_node)


def _is_store(node: ast.Attribute) -> bool:
    return isinstance(node.ctx, (ast.Store, ast.Del))


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for class_node in ast.walk(source.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        guarded = _guarded_fields(source, class_node)
        if not guarded:
            continue
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Attribute):
                continue
            field = self_attribute(node)
            if field is None or field not in guarded:
                continue
            annotation = guarded[field]
            is_store = _is_store(node)
            if annotation.mode == "writes" and not is_store:
                continue
            method = _enclosing_method(node, class_node)
            if method is None:
                continue  # class-body level: not runtime access
            if method.name == "__init__":
                continue  # construction happens-before publication
            if method.name.startswith("_") and not (
                method.name.startswith("__") and method.name.endswith("__")
            ):
                continue  # private helper: assumed reached under the lock
            if annotation.lock in _locks_held(node, class_node):
                continue
            access = "write to" if is_store else "read of"
            findings.append(
                Finding(
                    path=source.display,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=RULE_ID,
                    severity="error",
                    message=(
                        f"{access} {class_node.name}.{field} outside "
                        f"`with self.{annotation.lock}:` "
                        f"(field is guarded-by: {annotation.lock}"
                        + (
                            " (writes)"
                            if annotation.mode == "writes"
                            else ""
                        )
                        + f", declared at line {annotation.line})"
                    ),
                )
            )
    return findings


# -- lock-order analysis (project-wide) ------------------------------------


def _qualify(source: SourceFile, node: ast.AST, attr_or_name: str, bare: bool) -> str:
    """A cross-file node name for one lock: ``ClassName.attr`` for
    ``self.<attr>`` locks (class names are the repo-wide identity — the
    same class linted from two files is the same lock), and
    ``<file>::<name>`` for bare local/module locks (those never alias
    across files)."""
    if bare:
        return f"{source.display}::{attr_or_name}"
    owner = enclosing_class(node)
    prefix = owner.name if owner is not None else source.display
    return f"{prefix}.{attr_or_name}"


def _with_lock_nodes(
    source: SourceFile, node: ast.With
) -> list[str]:
    """The graph nodes a ``with`` statement acquires: lockish ``self``
    attributes and lockish bare names."""
    acquired: list[str] = []
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        attr = self_attribute(expr)
        if attr is not None:
            if is_lockish(attr):
                acquired.append(_qualify(source, node, attr, bare=False))
            continue
        name = dotted_name(expr)
        if name is not None and "." not in name and is_lockish(name):
            acquired.append(_qualify(source, node, name, bare=True))
    return acquired


def _held_nodes(source: SourceFile, node: ast.AST) -> set[str]:
    """Graph nodes for every lock lexically held at ``node``."""
    held: set[str] = set()
    child: ast.AST = node
    for ancestor in parents(node):
        if isinstance(ancestor, ast.With):
            held.update(_with_lock_nodes(source, ancestor))
        elif isinstance(ancestor, ast.Try) and child in ancestor.body:
            held.update(
                _qualify(source, ancestor, attr, bare=False)
                for attr in try_finally_locks(ancestor)
                if is_lockish(attr)
            )
        child = ancestor
    return held


def _add_edge(
    graph: dict[str, dict[str, tuple[str, int]]],
    src: str,
    dst: str,
    site: tuple[str, int],
) -> None:
    if src == dst:
        return
    graph.setdefault(src, {}).setdefault(dst, site)


def _collect_order_edges(
    source: SourceFile, graph: dict[str, dict[str, tuple[str, int]]]
) -> None:
    # Lexical nesting: every acquisition records an edge from each lock
    # already held to each lock it takes.
    for node in ast.walk(source.tree):
        acquired: list[str] = []
        if isinstance(node, ast.With):
            acquired = _with_lock_nodes(source, node)
        elif isinstance(node, ast.Try):
            acquired = [
                _qualify(source, node, attr, bare=False)
                for attr in sorted(try_finally_locks(node))
                if is_lockish(attr)
            ]
        if not acquired:
            continue
        if source.allowance(node.lineno, ORDER_ALLOW_MARKER) is not None:
            continue
        held = _held_nodes(source, node)
        site = (source.display, node.lineno)
        for earlier in held:
            for later in acquired:
                _add_edge(graph, earlier, later, site)
        # A multi-item ``with self.A, self.B:`` orders A before B.
        for index, later in enumerate(acquired):
            for earlier in acquired[:index]:
                _add_edge(graph, earlier, later, site)

    # guarded-by inference: a private helper touching a field guarded
    # by L without lexically holding L runs with L taken by its caller,
    # so locks it acquires inside are ordered after L.
    for class_node in ast.walk(source.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        guarded = _guarded_fields(source, class_node)
        if not guarded:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not method.name.startswith("_") or (
                method.name.startswith("__") and method.name.endswith("__")
            ):
                continue
            assumed: set[str] = set()
            for node in ast.walk(method):
                field = (
                    self_attribute(node)
                    if isinstance(node, ast.Attribute)
                    else None
                )
                if field is None or field not in guarded:
                    continue
                lock = guarded[field].lock
                if lock not in held_lock_attrs(node, stop_class=class_node):
                    assumed.add(_qualify(source, node, lock, bare=False))
            if not assumed:
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.With):
                    continue
                if (
                    source.allowance(node.lineno, ORDER_ALLOW_MARKER)
                    is not None
                ):
                    continue
                site = (source.display, node.lineno)
                for later in _with_lock_nodes(source, node):
                    for earlier in assumed:
                        _add_edge(graph, earlier, later, site)


def _cycles(
    graph: dict[str, dict[str, tuple[str, int]]],
) -> list[list[str]]:
    """One representative simple cycle per cyclic region, found by DFS
    back-edges; deterministic (sorted adjacency, canonical rotation)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    path: list[str] = []
    found: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()

    def visit(node: str) -> None:
        color[node] = GRAY
        path.append(node)
        for succ in sorted(graph.get(node, {})):
            state = color.get(succ, WHITE)
            if state == GRAY:
                cycle = path[path.index(succ):]
                pivot = cycle.index(min(cycle))
                canonical = cycle[pivot:] + cycle[:pivot]
                if tuple(canonical) not in seen:
                    seen.add(tuple(canonical))
                    found.append(canonical)
            elif state == WHITE:
                visit(succ)
        path.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            visit(node)
    return found


def check_order(sources: Iterable[SourceFile]) -> list[Finding]:
    """The project-wide pass: accumulate the acquisition graph over
    every analyzed file, then report each cycle once."""
    graph: dict[str, dict[str, tuple[str, int]]] = {}
    for source in sources:
        _collect_order_edges(source, graph)

    findings: list[Finding] = []
    for cycle in _cycles(graph):
        ring = cycle + [cycle[0]]
        hops = []
        for earlier, later in zip(ring, ring[1:]):
            site_path, _ = graph[earlier][later]
            hops.append(f"{later} after {earlier} ({site_path})")
        closing_path, closing_line = graph[cycle[-1]][cycle[0]]
        findings.append(
            Finding(
                path=closing_path,
                line=closing_line,
                col=1,
                rule=ORDER_RULE_ID,
                severity="error",
                message=(
                    "lock-order cycle "
                    + " → ".join(ring)
                    + ": "
                    + "; ".join(hops)
                    + " — two threads taking these locks in opposite "
                    "orders deadlock; pick one global order or "
                    "annotate `# allow-lock-order: <reason>`"
                ),
            )
        )
    return sorted(findings)
