"""Cache-invalidation lint: every write path stamps the read cache.

The read cache (PR 9) is *exact* because of the paper's boundedness
theorem: a total projection on an independence-reducible scheme is a
predetermined expression over the blocks it touches, so per-block
version counters invalidate precisely.  The runtime half of that
argument is a discipline, not a theorem: every path that produces a
new :class:`~repro.state.database_state.DatabaseState` must stamp the
written block — ``WeakInstanceEngine._note_write`` /
``ReadCache.note_write`` / ``BlockVersions.bump`` — or delegate to a
path that does.  (Identity-keyed lazy versioning keeps a missed stamp
*sound* — a fresh state's relations carry fresh identities — but it
silently degrades the first post-write probe and falsifies the
``writes_observed`` metric the benchmarks report, so the invariant is:
stamp, or be exempted with a reason.)

Mirroring :mod:`repro.analysis.rules_spans`, the rule is config-driven:
:class:`InvalidationConfig` maps ``module-suffix::qualname`` entry
points (the state-mutation map — engine insert/delete/batch sites,
store and WAL-replay apply sites, shard worker commit sites) to the
call names that count as coverage for that entry.  A mutation site
passes when its body contains a call to any acceptable name — a direct
stamp (``_note_write`` / ``note_write`` / ``bump``) or a delegation to
a covered mutator (``insert`` / ``delete`` / ``batch``).  Everything
else in the map must be exempted with a reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

from repro.analysis.astcheck import SourceFile, call_name
from repro.analysis.findings import Finding

RULE_ID = "cache-invalidation"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class InvalidationConfig:
    """The state-mutation map.  Keys are ``module-suffix::qualname``
    strings (``core/engine.py::WeakInstanceEngine.insert``); values of
    ``required`` are the call names accepted as coverage for that
    mutation site."""

    #: mutation site → call names that count as stamping (or as
    #: delegating to a stamping mutator).
    required: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    #: mutation site → reason it legitimately stamps nothing.
    exempt: Mapping[str, str] = field(default_factory=dict)


def default_invalidation_config() -> InvalidationConfig:
    """The repo's real write-path map (see docs/ARCHITECTURE.md,
    "Invariant enforcement")."""
    return InvalidationConfig(
        required={
            # Engine: the mutation kernels stamp directly; the batch
            # tiers delegate into them or stamp per routed block.
            "core/engine.py::WeakInstanceEngine.insert": ("_note_write",),
            "core/engine.py::WeakInstanceEngine.delete": ("_note_write",),
            "core/engine.py::WeakInstanceEngine.modify": ("insert",),
            "core/engine.py::WeakInstanceEngine.batch": (
                "_batch_blocks",
                "_batch_serial",
            ),
            "core/engine.py::WeakInstanceEngine.apply_batch": ("batch",),
            "core/engine.py::WeakInstanceEngine._batch_serial": (
                "insert",
                "delete",
            ),
            "core/engine.py::WeakInstanceEngine._batch_blocks": (
                "note_write",
            ),
            # Store: applies through the engine's stamping mutators —
            # both the live write paths and the WAL-recovery replay.
            "service/store.py::DurableStore.insert": ("insert",),
            "service/store.py::DurableStore.delete": ("delete",),
            "service/store.py::DurableStore.apply_batch": (
                "batch",
                "apply_batch",
            ),
            "service/store.py::_apply_record": (
                "insert",
                "delete",
            ),
            # Follower replay applies shipped records through the
            # engine exactly like recovery does.
            "service/replica.py::FollowerStore.replay": (
                "insert",
                "delete",
            ),
            # Shard worker: apply_slice is the per-shard mutation
            # kernel — its block-routed fast path must stamp the
            # written blocks itself (the serial fallback delegates to
            # engine.insert/delete, which stamp).
            "shard/worker.py::apply_slice": ("note_write",),
        },
        exempt={
            "shard/worker.py::ShardWorker._commit": (
                "installs the state prepared by apply_slice, which "
                "stamped the written blocks"
            ),
            "service/store.py::DurableStore.commit_batch": (
                "logs a batch whose state was produced (and stamped) "
                "by the prepare phase"
            ),
            "service/store.py::DurableStore.log_reject": (
                "rejected update: no state transition, nothing to stamp"
            ),
        },
    )


def _functions_by_qualname(tree: ast.Module) -> dict[str, FunctionNode]:
    table: dict[str, FunctionNode] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table[f"{node.name}.{member.name}"] = member
    return table


def _matches(display: str, module_suffix: str) -> bool:
    return display.replace("\\", "/").endswith(module_suffix)


def _calls_any(function: FunctionNode, acceptable: tuple[str, ...]) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and call_name(node) in acceptable:
            return True
    return False


def check_project(
    sources: Iterable[SourceFile], config: InvalidationConfig
) -> list[Finding]:
    """Cross-check every configured mutation site (cross-file by
    nature: the map spans engine, store, replica and worker)."""
    findings: list[Finding] = []
    for source in sources:
        table = _functions_by_qualname(source.tree)
        for key in config.exempt:
            module_suffix, _, qualname = key.partition("::")
            if not _matches(source.display, module_suffix):
                continue
            if qualname not in table:
                findings.append(
                    Finding(
                        path=source.display,
                        line=1,
                        col=1,
                        rule=RULE_ID,
                        severity="warning",
                        message=(
                            f"exempted mutation site {qualname} no "
                            "longer exists; drop it from the "
                            "cache-invalidation map"
                        ),
                    )
                )
        for key, acceptable in config.required.items():
            module_suffix, _, qualname = key.partition("::")
            if not _matches(source.display, module_suffix):
                continue
            function = table.get(qualname)
            if function is None:
                findings.append(
                    Finding(
                        path=source.display,
                        line=1,
                        col=1,
                        rule=RULE_ID,
                        severity="warning",
                        message=(
                            f"configured mutation site {qualname} no "
                            "longer exists; update the "
                            "cache-invalidation map"
                        ),
                    )
                )
                continue
            if _calls_any(function, acceptable):
                continue
            wanted = " or ".join(f"{name}(...)" for name in acceptable)
            findings.append(
                Finding(
                    path=source.display,
                    line=function.lineno,
                    col=function.col_offset + 1,
                    rule=RULE_ID,
                    severity="error",
                    message=(
                        f"mutation site {qualname} never stamps the "
                        f"read cache: call {wanted} on every produced "
                        "state, or exempt the site with a reason in "
                        "the cache-invalidation map (read-cache "
                        "exactness rests on every write path bumping "
                        "block versions)"
                    ),
                )
            )
    return findings
