"""One-call scheme analysis.

``analyze_scheme`` runs every classifier the paper discusses against a
database scheme and returns a structured report: normal form,
hypergraph acyclicity degrees, independence, the key-equivalent
partition, independence-reducibility and constant-time-maintainability.
This is the "scheme design advisor" view of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ctm import is_ctm
from repro.core.independence import is_independent
from repro.core.key_equivalent import is_key_equivalent
from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.core.split import split_keys
from repro.fd.normal_forms import database_scheme_is_bcnf
from repro.foundations.attrs import fmt_attrs
from repro.hypergraph.acyclicity import (
    is_alpha_acyclic,
    is_beta_acyclic,
    is_gamma_acyclic,
)
from repro.schema.database_scheme import DatabaseScheme


@dataclass(frozen=True)
class SchemeReport:
    """Everything the paper lets us say about one database scheme."""

    scheme: DatabaseScheme
    bcnf: bool
    alpha_acyclic: bool
    beta_acyclic: bool
    gamma_acyclic: bool
    independent: bool
    key_equivalent: bool
    independence_reducible: bool
    recognition: RecognitionResult
    split_keys: tuple[frozenset[str], ...]
    ctm: Optional[bool]
    maintenance_guarantee: str = field(default="")

    def to_dict(self) -> dict:
        """Machine-readable form (used by the CLI's ``--json``)."""
        partition = [
            {
                "name": induced_member.name,
                "attributes": sorted(induced_member.attributes),
                "members": [m.name for m in block.relations],
            }
            for block, induced_member in zip(
                self.recognition.partition, self.recognition.induced
            )
        ]
        return {
            "relations": {
                member.name: {
                    "attributes": sorted(member.attributes),
                    "keys": [sorted(key) for key in member.keys],
                }
                for member in self.scheme.relations
            },
            "bcnf": self.bcnf,
            "alpha_acyclic": self.alpha_acyclic,
            "beta_acyclic": self.beta_acyclic,
            "gamma_acyclic": self.gamma_acyclic,
            "independent": self.independent,
            "key_equivalent": self.key_equivalent,
            "independence_reducible": self.independence_reducible,
            "partition": partition if self.independence_reducible else None,
            "split_keys": [sorted(key) for key in self.split_keys],
            "ctm": self.ctm,
            "maintenance_guarantee": self.maintenance_guarantee,
        }

    def describe(self) -> str:
        lines = [f"scheme: {self.scheme}"]
        lines.append(f"  embedded key dependencies: {self.scheme.fds}")
        lines.append(f"  BCNF:                     {self.bcnf}")
        lines.append(
            "  hypergraph acyclicity:    "
            f"α={self.alpha_acyclic} β={self.beta_acyclic} "
            f"γ={self.gamma_acyclic}"
        )
        lines.append(f"  independent:              {self.independent}")
        lines.append(f"  key-equivalent:           {self.key_equivalent}")
        lines.append(
            f"  independence-reducible:   {self.independence_reducible}"
        )
        if self.independence_reducible:
            for block, member in zip(
                self.recognition.partition, self.recognition.induced
            ):
                names = ", ".join(m.name for m in block.relations)
                lines.append(
                    f"    block {member.name}"
                    f"({fmt_attrs(member.attributes)}) = {{{names}}}"
                )
        if self.split_keys:
            rendered = ", ".join(fmt_attrs(key) for key in self.split_keys)
            lines.append(f"  split keys:               {rendered}")
        ctm_text = "unknown (outside the reducible class)" if self.ctm is None else self.ctm
        lines.append(f"  constant-time-maintainable: {ctm_text}")
        lines.append(f"  maintenance guarantee:    {self.maintenance_guarantee}")
        return "\n".join(lines)


def analyze_scheme(scheme: DatabaseScheme) -> SchemeReport:
    """Run all classifiers on a database scheme."""
    edges = [member.attributes for member in scheme.relations]
    recognition = recognize_independence_reducible(scheme)
    ctm: Optional[bool]
    if recognition.accepted:
        ctm = is_ctm(scheme, recognition)
        # Theorem 5.5's notion of splitness is per partition block.
        reported_split_keys = sorted(
            {
                key
                for block in recognition.partition
                for key in split_keys(block)
            },
            key=lambda key: tuple(sorted(key)),
        )
    else:
        ctm = None
        reported_split_keys = split_keys(scheme)
    if recognition.accepted and ctm:
        guarantee = (
            "bounded; ctm (Algorithm 5 probes are state-size independent)"
        )
    elif recognition.accepted:
        guarantee = (
            "bounded; algebraic-maintainable via predetermined expressions "
            "(Algorithm 2), but not ctm (a key is split)"
        )
    else:
        guarantee = "no guarantee from the paper; full chase required"
    return SchemeReport(
        scheme=scheme,
        bcnf=database_scheme_is_bcnf(edges, scheme.fds),
        alpha_acyclic=is_alpha_acyclic(edges),
        beta_acyclic=is_beta_acyclic(edges),
        gamma_acyclic=is_gamma_acyclic(edges),
        independent=is_independent(scheme),
        key_equivalent=is_key_equivalent(scheme),
        independence_reducible=recognition.accepted,
        recognition=recognition,
        split_keys=tuple(reported_split_keys),
        ctm=ctm,
        maintenance_guarantee=guarantee,
    )
