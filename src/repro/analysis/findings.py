"""Findings: what a lint rule reports and how it is rendered.

A :class:`Finding` anchors one invariant violation to a ``file:line``
location.  Findings carry a stable *fingerprint* — a content hash of the
rule id, the (repo-relative) path and the message — used by the baseline
machinery (:mod:`repro.analysis.baseline`) to suppress known findings
without pinning them to line numbers, which drift on every edit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Severities in increasing order of badness; exit-code policy and the
#: text reporter both rely on this ordering.
SEVERITIES = ("note", "warning", "error")

#: Every rule pack the linter ships: ``rule id → one-line summary``.
#: The CLI builds its ``--rules`` help from this table and the linter
#: asserts its registry stays in sync with it, so a new pack announces
#: itself here or fails loudly.
RULE_CODES: dict[str, str] = {
    "lock-discipline": (
        "guarded-by annotated fields are only touched under their lock"
    ),
    "determinism": (
        "unordered (set / directory) iteration never shapes an ordered "
        "output"
    ),
    "resource-safety": (
        "file handles and pools are closed on every path"
    ),
    "span-hygiene": (
        "entry points open the spans the catalogue documents"
    ),
    "async-discipline": (
        "async bodies never block the event loop or await under a sync "
        "lock"
    ),
    "fork-safety": (
        "fork targets touch no inherited locks, pools or event loops; "
        "forks precede threads"
    ),
    "lock-order": (
        "the cross-file lock-acquisition graph is acyclic (no "
        "potential deadlock)"
    ),
    "cache-invalidation": (
        "every state-mutation site stamps the read cache's block "
        "versions"
    ),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str = field(compare=False)
    severity: str = field(compare=False)
    message: str = field(compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """A line-number-independent identity for baseline matching."""
        body = f"{self.rule}\x1f{self.path}\x1f{self.message}"
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


def render_text(findings: Sequence[Finding]) -> str:
    """The human report: one line per finding, sorted by location, plus
    a per-severity tally."""
    if not findings:
        return "no findings"
    lines = [finding.render() for finding in sorted(findings)]
    tally: dict[str, int] = {}
    for finding in findings:
        tally[finding.severity] = tally.get(finding.severity, 0) + 1
    summary = ", ".join(
        f"{tally[severity]} {severity}(s)"
        for severity in reversed(SEVERITIES)
        if severity in tally
    )
    lines.append(f"{len(findings)} finding(s): {summary}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], suppressed: int = 0
) -> str:
    """The machine report (``repro lint --json``)."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in sorted(findings)],
            "count": len(findings),
            "suppressed": suppressed,
        },
        indent=2,
        sort_keys=True,
    )


def worst_severity(findings: Iterable[Finding]) -> str:
    """The highest severity present (``note`` when empty)."""
    worst = 0
    for finding in findings:
        worst = max(worst, SEVERITIES.index(finding.severity))
    return SEVERITIES[worst]
