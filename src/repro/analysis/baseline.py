"""Baseline suppression for the invariant linter.

A baseline is a committed JSON file mapping finding *fingerprints*
(:attr:`repro.analysis.findings.Finding.fingerprint` — line-number
independent) to how many findings carry that fingerprint.  ``repro
lint --baseline FILE`` subtracts the baseline from the current run:
only *new* findings (fingerprints absent from the baseline, or present
more times than the baseline allows) fail the build.  Fixing a
baselined finding never breaks the build — the baseline is a ceiling,
not a pin — and regenerating with ``--write-baseline`` ratchets it
down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

FORMAT_VERSION = 1


def save(path: Path, findings: Sequence[Finding]) -> None:
    """Write a baseline covering ``findings``.

    Alongside each fingerprint count we record one representative
    ``rule``/``path``/``message`` triple so the file is reviewable in
    a diff; only the counts are consulted when suppressing.
    """
    counts = Counter(finding.fingerprint for finding in findings)
    by_fingerprint = {finding.fingerprint: finding for finding in findings}
    entries = {
        fingerprint: {
            "count": count,
            "rule": by_fingerprint[fingerprint].rule,
            "path": by_fingerprint[fingerprint].path,
            "message": by_fingerprint[fingerprint].message,
        }
        for fingerprint, count in counts.items()
    }
    payload = {
        "version": FORMAT_VERSION,
        "findings": {k: entries[k] for k in sorted(entries)},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load(path: Path) -> dict[str, int]:
    """``fingerprint → allowed count`` from a baseline file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {FORMAT_VERSION})"
        )
    allowed: dict[str, int] = {}
    for fingerprint, entry in payload.get("findings", {}).items():
        count = entry.get("count", 0) if isinstance(entry, dict) else entry
        allowed[fingerprint] = int(count)
    return allowed


def apply(
    findings: Sequence[Finding], allowed: dict[str, int]
) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed-count).

    Findings sharing a fingerprint are suppressed up to the allowed
    count in deterministic (sorted) order, so the *first* occurrences
    are suppressed and any excess — a genuinely new instance of a known
    pattern — surfaces.
    """
    remaining = dict(allowed)
    new: list[Finding] = []
    suppressed = 0
    for finding in sorted(findings):
        budget = remaining.get(finding.fingerprint, 0)
        if budget > 0:
            remaining[finding.fingerprint] = budget - 1
            suppressed += 1
        else:
            new.append(finding)
    return new, suppressed
