"""Determinism lint: unordered iteration must not shape outputs.

Chase output, join results, WAL records and scheme fingerprints are
all asserted byte-identical across processes (and across
``PYTHONHASHSEED`` values) by the differential tests — an iteration
over a ``set``/``frozenset`` whose order leaks into an ordered product
(a list, a tuple, a joined string, a yielded sequence) silently breaks
that guarantee only on *some* hash seeds, which is the worst possible
way to fail.

What fires:

* ``list(s)`` / ``tuple(s)`` / ``"sep".join(s)`` over a set-typed
  expression — materializing an ordered sequence straight from an
  unordered one;
* a ``for`` statement iterating a set-typed expression whose body
  appends/extends/inserts into a sequence, yields, or writes —
  unless the sink is bucketed *by the loop variable itself*
  (``index[attr].append(...)`` builds per-key buckets whose contents
  do not depend on the iteration order);
* list/generator comprehensions over set-typed iterables (set and
  dict comprehensions rebuild unordered containers and are exempt;
  a generator consumed by an order-insensitive reducer such as
  ``sorted``/``min``/``sum``/``any`` is exempt too);
* ``os.listdir`` / ``glob.glob`` / ``Path.iterdir`` / ``Path.glob``
  results consumed without an enclosing ``sorted(...)`` — directory
  order is an OS artifact.

``sorted(...)`` around the unordered expression silences the rule at
the source, which is also the correct fix.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.astcheck import (
    FS_ENUMERATORS,
    SourceFile,
    call_name,
    infer_set_locals,
    is_set_expr,
    parents,
)
from repro.analysis.findings import Finding

RULE_ID = "determinism"

#: Reducers whose result does not depend on element order.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "attrs",
        "union_all",
        "sum",
        "min",
        "max",
        "len",
        "any",
        "all",
        "Counter",
        "update",
        "intersection",
        "union",
        "difference",
    }
)

#: Sequence-building method calls that make a loop order-sensitive.
ORDER_SENSITIVE_SINKS = frozenset(
    {"append", "extend", "insert", "write", "writelines", "add_row"}
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _consumer_call(node: ast.expr) -> Optional[str]:
    """The name of the call directly consuming ``node`` as an argument
    (``sorted`` for ``sorted(x)``), or ``None``."""
    parent = getattr(node, "parent", None)
    if isinstance(parent, ast.Call) and node in parent.args:
        return call_name(parent)
    return None


def _target_names(target: ast.expr) -> set[str]:
    return {
        child.id for child in ast.walk(target) if isinstance(child, ast.Name)
    }


def _subscript_uses_names(node: ast.expr, names: set[str]) -> bool:
    """True when ``node`` contains a subscript whose index mentions one
    of ``names`` — the per-key-bucket pattern."""
    for child in ast.walk(node):
        if isinstance(child, ast.Subscript):
            for inner in ast.walk(child.slice):
                if isinstance(inner, ast.Name) and inner.id in names:
                    return True
    return False


def _loop_sinks(loop: ast.For) -> Iterator[ast.Call]:
    """Order-sensitive sink calls in a loop body (nested loops
    included — their sinks still run once per outer iteration)."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ORDER_SENSITIVE_SINKS
        ):
            yield node


def _comprehension_kind(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.GeneratorExp):
        return "generator"
    return None


def _generator_is_reduced(node: ast.GeneratorExp) -> bool:
    """A generator handed straight to an order-insensitive reducer
    (``sorted(... for ...)``) cannot leak iteration order."""
    name = _consumer_call(node)
    return name in ORDER_INSENSITIVE_CONSUMERS


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    module_sets = frozenset()

    def finding(node: ast.AST, message: str, severity: str = "error") -> None:
        findings.append(
            Finding(
                path=source.display,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=RULE_ID,
                severity=severity,
                message=message,
            )
        )

    def set_names_for(node: ast.AST) -> frozenset[str]:
        for ancestor in parents(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return infer_set_locals(ancestor)
        return module_sets

    for node in ast.walk(source.tree):
        # -- list()/tuple()/join() straight over a set ---------------------
        if isinstance(node, ast.Call):
            name = call_name(node)
            if (
                name in ("list", "tuple")
                and len(node.args) == 1
                and is_set_expr(node.args[0], set_names_for(node))
            ):
                finding(
                    node,
                    f"{name}() over a set-typed expression materializes "
                    "a hash-order-dependent sequence; wrap the set in "
                    "sorted(...)",
                )
            elif (
                name == "join"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, (ast.Constant, ast.Name))
                and len(node.args) == 1
                and is_set_expr(node.args[0], set_names_for(node))
            ):
                finding(
                    node,
                    "str.join over a set-typed expression produces a "
                    "hash-order-dependent string; wrap the set in "
                    "sorted(...)",
                )
            elif name in FS_ENUMERATORS and _consumer_call(node) != "sorted":
                described = FS_ENUMERATORS[name]
                finding(
                    node,
                    f"{described}() yields entries in OS-dependent order; "
                    "wrap the call in sorted(...)",
                    severity="warning",
                )

        # -- for statements over sets with order-sensitive sinks -----------
        elif isinstance(node, ast.For):
            if not is_set_expr(node.iter, set_names_for(node)):
                continue
            loop_names = _target_names(node.target)
            for sink in _loop_sinks(node):
                receiver = sink.func.value  # type: ignore[union-attr]
                if _subscript_uses_names(receiver, loop_names):
                    continue  # per-key bucket: contents are order-free
                if sink.func.attr in (  # type: ignore[union-attr]
                    "add",
                    "update",
                ):
                    continue
                finding(
                    node,
                    "iteration over a set-typed expression feeds "
                    f"an ordered sink (.{sink.func.attr} at line "  # type: ignore[union-attr]
                    f"{sink.lineno}); iterate sorted(...) instead",
                )
                break
            for child in ast.walk(node):
                if isinstance(child, (ast.Yield, ast.YieldFrom)):
                    finding(
                        node,
                        "iteration over a set-typed expression yields "
                        "values in hash order; iterate sorted(...) instead",
                    )
                    break

        # -- comprehensions over sets --------------------------------------
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            kind = _comprehension_kind(node)
            first = node.generators[0]
            if not is_set_expr(first.iter, set_names_for(node)):
                continue
            if isinstance(node, ast.GeneratorExp) and _generator_is_reduced(
                node
            ):
                continue
            if (
                isinstance(node, ast.ListComp)
                and _consumer_call(node) in ORDER_INSENSITIVE_CONSUMERS
            ):
                continue
            finding(
                node,
                f"{kind} over a set-typed expression produces a "
                "hash-order-dependent sequence; iterate sorted(...) "
                "instead",
            )
    return findings
