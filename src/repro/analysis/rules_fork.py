"""Fork-safety lint: fork targets inherit nothing they may touch.

The sharded tier and the replica tier both spawn their per-process
loops with ``multiprocessing.get_context("fork")`` — fork is what makes
worker start-up cheap (the scheme and code arrive by COW page, not by
pickle).  The price is a sharp rule: the child inherits the parent's
entire address space *mid-state* — locks whose owner thread does not
exist in the child, executor pools whose worker threads were not
cloned, an event loop whose selector fd is shared — and touching any
of them deadlocks or corrupts silently.

Two checks, both per-file and deliberately conservative (a one-level
call graph over the module's own ``def``s; cross-module targets are
out of lexical reach and are left to the importing module's review):

* **Inherited-state hazards** — functions reachable from a
  fork-context ``Process(target=...)`` call-site (the target plus the
  module-level functions it calls directly) must not read a
  module-level lock / executor binding and must not call
  ``asyncio.get_event_loop`` / ``get_running_loop``.  The loop and
  every pool a fork target needs must be built *after* the fork, in
  the child.
* **Fork-after-thread ordering** — creating a fork-context ``Process``
  after a ``Thread`` / ``ParallelExecutor`` / ``ThreadPoolExecutor``
  in the same scope is an error: the fork duplicates a process that
  already has running threads, so any lock one of them holds at fork
  time is locked forever in the child.  (The reverse order —
  fork first, threads after, the replica set's pattern — is safe.)

``# allow-fork: <reason>`` on the flagged line is the reviewed escape
hatch.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from repro.analysis.astcheck import (
    SourceFile,
    call_name,
    direct_callees,
    module_concurrency_globals,
    module_functions,
    parents,
)
from repro.analysis.findings import Finding

RULE_ID = "fork-safety"

#: The exemption comment marker: ``# allow-fork: <reason>``.
ALLOW_MARKER = "fork"

#: Calls that hand back the *inherited* event loop.
LOOP_GETTERS = frozenset({"get_event_loop", "get_running_loop"})

#: Constructors whose appearance starts (or may lazily start) threads
#: in the current process — forking after one is the hazard.
THREAD_STARTERS = frozenset(
    {"Thread", "ParallelExecutor", "ThreadPoolExecutor"}
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _fork_context_names(tree: ast.Module) -> set[str]:
    """Names bound (anywhere in the file) to
    ``multiprocessing.get_context("fork")``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_fork_context_call(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_fork_context_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and call_name(node) == "get_context"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "fork"
    )


def _fork_spawns(
    tree: ast.Module, context_names: set[str]
) -> list[ast.Call]:
    """Every ``<fork context>.Process(...)`` call in the file."""
    spawns: list[ast.Call] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "Process"):
            continue
        base = func.value
        if (
            isinstance(base, ast.Name) and base.id in context_names
        ) or _is_fork_context_call(base):
            spawns.append(node)
    return spawns


def _spawn_target(spawn: ast.Call) -> Optional[str]:
    for keyword in spawn.keywords:
        if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
            return keyword.value.id
    return None


def _enclosing_scope(node: ast.AST) -> Optional[FunctionNode]:
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []

    def finding(node: ast.AST, message: str) -> None:
        if source.allowance(node.lineno, ALLOW_MARKER) is not None:
            return
        findings.append(
            Finding(
                path=source.display,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=RULE_ID,
                severity="error",
                message=message,
            )
        )

    tree = source.tree
    context_names = _fork_context_names(tree)
    spawns = _fork_spawns(tree, context_names)
    functions = module_functions(tree)
    inherited = module_concurrency_globals(tree)

    # -- inherited-state hazards in reachable fork targets -----------------
    reachable: dict[str, str] = {}  # function name → spawning target
    for spawn in spawns:
        target = _spawn_target(spawn)
        if target is None or target not in functions:
            continue  # cross-module target: beyond lexical reach
        reachable.setdefault(target, target)
        for callee in sorted(direct_callees(functions[target])):
            if callee in functions:
                reachable.setdefault(callee, target)

    for name, origin in sorted(reachable.items()):
        function = functions[name]
        via = "" if name == origin else f" (reached from fork target {origin})"
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in inherited
            ):
                finding(
                    node,
                    f"fork target {name}{via} touches module-level "
                    f"{inherited[node.id]} `{node.id}`: the child "
                    "inherits it mid-state (its owner thread does not "
                    "exist after fork); build it inside the child "
                    "instead",
                )
            elif (
                isinstance(node, ast.Call)
                and call_name(node) in LOOP_GETTERS
            ):
                finding(
                    node,
                    f"fork target {name}{via} calls "
                    f"{call_name(node)}(): the event loop (and its "
                    "selector fd) is inherited from the parent; create "
                    "a fresh loop in the child with "
                    "asyncio.new_event_loop()",
                )

    # -- fork-after-thread ordering ----------------------------------------
    for spawn in spawns:
        scope = _enclosing_scope(spawn)
        walk_root: ast.AST = scope if scope is not None else tree
        scope_name = scope.name if scope is not None else "module scope"
        for node in ast.walk(walk_root):
            if (
                isinstance(node, ast.Call)
                and call_name(node) in THREAD_STARTERS
                and node.lineno < spawn.lineno
            ):
                finding(
                    spawn,
                    f"fork-context Process spawned after "
                    f"{call_name(node)}(...) in {scope_name}: forking "
                    "a process with live threads can duplicate a held "
                    "lock into the child forever; spawn the fork "
                    "processes first (or use a spawn context)",
                )
                break
    return findings
