"""Span-hygiene lint: entry points open the spans the catalogue says.

The observability layer (PR 3) documents a span catalogue in
``docs/ARCHITECTURE.md`` and instruments every engine/store/server
entry point.  Nothing kept the three in sync: an uninstrumented new
public method silently falls out of the latency histograms, and a span
renamed in code but not in the catalogue lies to whoever reads the
docs.  This rule closes the loop three ways:

1. **Required spans** — each configured entry point (``SpanConfig
   .required``) must contain ``with span("<expected>")`` (or activate
   a tracer with ``tracing(...)``, the server's idiom) somewhere in
   its body.
2. **Surface sweep** — every *public* method of the configured surface
   classes must be required, explicitly exempted (with a reason), a
   property/classmethod/staticmethod accessor, or delegate to a
   required method of the same class.  Anything else is an
   unreviewed entry point.
3. **Catalogue cross-check** — when a catalogue path is configured,
   every ``span("...")`` literal in the analyzed tree must appear in
   the catalogue table, and every catalogued span must occur in code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.astcheck import SourceFile, call_name
from repro.analysis.findings import Finding

RULE_ID = "span-hygiene"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Backticked span-like tokens (``chase.relations``) in a markdown row.
_CATALOGUE_TOKEN = re.compile(r"`([a-z_]+(?:\.[a-z_]+)+)`")


@dataclass(frozen=True)
class SpanConfig:
    """What the rule enforces.  Keys of ``required`` and members of
    ``surface`` / ``exempt`` are ``module-suffix::qualname`` strings,
    e.g. ``core/engine.py::WeakInstanceEngine.insert``."""

    #: entry point → acceptable span names ("tracing" accepts a
    #: ``tracing(...)`` activation instead of a direct span).
    required: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    #: classes (``module-suffix::ClassName``) whose public methods are
    #: swept.
    surface: tuple[str, ...] = ()
    #: entry point → reason it legitimately opens no span.
    exempt: Mapping[str, str] = field(default_factory=dict)
    #: path to the markdown span catalogue (``None`` disables the
    #: cross-check — fixture runs use this).
    catalogue: Optional[Path] = None


def default_config(repo_root: Path) -> SpanConfig:
    """The repo's real invariants, mirroring docs/ARCHITECTURE.md."""
    catalogue = repo_root / "docs" / "ARCHITECTURE.md"
    return SpanConfig(
        required={
            "core/engine.py::WeakInstanceEngine.insert": ("engine.insert",),
            "core/engine.py::WeakInstanceEngine.delete": ("engine.delete",),
            "core/engine.py::WeakInstanceEngine.query": ("engine.query",),
            "core/engine.py::WeakInstanceEngine.plan": ("engine.plan",),
            "core/engine.py::WeakInstanceEngine.batch": ("engine.batch",),
            "core/engine.py::WeakInstanceEngine._query_compiled": (
                "engine.query.compiled",
            ),
            "core/engine.py::WeakInstanceEngine._query_cached": (
                "engine.query.cached",
            ),
            "compile/program.py::compile_expression": ("compile.kernel",),
            "service/store.py::DurableStore.open": ("store.recovery",),
            "service/store.py::DurableStore.insert": ("store.insert",),
            "service/store.py::DurableStore.delete": ("store.delete",),
            "service/store.py::DurableStore.apply_batch": ("store.batch",),
            "service/store.py::DurableStore.query": ("store.query",),
            "service/store.py::DurableStore.snapshot": ("store.snapshot",),
            "service/server.py::SchemeServer.insert": ("tracing",),
            "service/server.py::SchemeServer.delete": ("tracing",),
            "service/server.py::SchemeServer.apply_batch": ("tracing",),
            "service/server.py::SchemeServer.query": ("tracing",),
            "service/server.py::SchemeServer.snapshot": ("tracing",),
            "service/store.py::DurableStore.commit_batch": ("store.batch",),
            "service/store.py::DurableStore.log_reject": ("store.batch",),
            "service/wal.py::WriteAheadLog.append": ("wal.append",),
            "service/wal.py::WriteAheadLog.sync": ("wal.fsync",),
            "service/wal.py::WriteAheadLog.roll": ("wal.roll",),
            "service/replica.py::FollowerStore.replay": ("replica.replay",),
            "service/replica.py::WalShipper.ship": ("replica.ship",),
            "shard/router.py::ShardRouter.insert": ("shard.route",),
            "shard/router.py::ShardRouter.delete": ("shard.route",),
            "shard/router.py::ShardRouter.query": ("shard.route",),
            # apply_batch activates the tracer; the shard.route span
            # opens in _apply_batch_sharded (inline mode delegates to
            # the SchemeServer, which traces itself).
            "shard/router.py::ShardRouter.apply_batch": ("tracing",),
            "shard/router.py::ShardRouter._rpc": ("shard.rpc",),
            "shard/router.py::ShardRouter.snapshot": ("tracing",),
            "shard/frontend.py::ShardFrontend._execute": (
                "front.request",
            ),
            "tableau/chase.py::chase": ("chase.tableau",),
            "tableau/chase.py::chase_relations": ("chase.relations",),
            "tableau/chase.py::DeltaChase.extend": ("chase.delta",),
            "algebra/expressions.py::join_relations": ("join.hash",),
            "algebra/expressions.py::evaluate_natural_join": (
                "join.pipeline",
            ),
        },
        surface=(
            "core/engine.py::WeakInstanceEngine",
            "service/store.py::DurableStore",
            "service/server.py::SchemeServer",
            "service/replica.py::FollowerStore",
            "service/replica.py::WalShipper",
            "shard/router.py::ShardRouter",
            "shard/frontend.py::ShardFrontend",
        ),
        exempt={
            # Engine: accessors and memo plumbing; the chase spans fire
            # inside chase_state/chase_relations on every cache miss.
            "core/engine.py::WeakInstanceEngine.close": "resource teardown",
            "core/engine.py::WeakInstanceEngine.strategy_report": "accessor",
            "core/engine.py::WeakInstanceEngine.empty_state": "accessor",
            "core/engine.py::WeakInstanceEngine.load": (
                "delegates to representative; chase.* spans fire on miss"
            ),
            "core/engine.py::WeakInstanceEngine.representative": (
                "memo probe; chase.tableau/chase.relations spans fire on "
                "miss"
            ),
            "core/engine.py::WeakInstanceEngine.cache_info": "accessor",
            "core/engine.py::WeakInstanceEngine.streaming": "accessor",
            "core/engine.py::WeakInstanceEngine.explain": "accessor",
            # Store: sync's wal.fsync span lives in WriteAheadLog.sync.
            "service/store.py::DurableStore.sync": (
                "delegates to WriteAheadLog.sync (wal.fsync span)"
            ),
            "service/store.py::DurableStore.close": "resource teardown",
            "service/store.py::DurableStore.metrics_snapshot": "reporting",
            # Server: constructors, sessions and reporting never touch
            # the engine's hot paths.
            "service/server.py::SchemeServer.in_memory": "constructor",
            "service/server.py::SchemeServer.serving": "constructor",
            "service/server.py::SchemeServer.session": "session bookkeeping",
            "service/server.py::SchemeServer.session_names": "accessor",
            "service/server.py::SchemeServer.metrics_snapshot": "reporting",
            "service/server.py::SchemeServer.stats": "reporting",
            "service/server.py::SchemeServer.prometheus": "reporting",
            "service/server.py::SchemeServer.close": "resource teardown",
            # Router: constructors and reporting mirror SchemeServer's
            # surface; the routed hot paths all open shard.* spans.
            "shard/router.py::ShardRouter.in_memory": "constructor",
            "shard/router.py::ShardRouter.create": "constructor",
            "shard/router.py::ShardRouter.open": "constructor",
            "shard/router.py::ShardRouter.session": "session bookkeeping",
            "shard/router.py::ShardRouter.session_names": "accessor",
            "shard/router.py::ShardRouter.metrics_snapshot": "reporting",
            "shard/router.py::ShardRouter.stats": "reporting",
            "shard/router.py::ShardRouter.prometheus": "reporting",
            "shard/router.py::ShardRouter.close": "resource teardown",
            # Replica: the hot paths are replay (replica.replay span)
            # and the shipper's ship (replica.ship span); the rest is
            # bootstrap/teardown bookkeeping or lock-free reads.
            "service/replica.py::FollowerStore.status": "accessor",
            "service/replica.py::FollowerStore.bootstrap": (
                "one-time (re)initialisation from a snapshot; the "
                "steady-state path is replay (replica.replay span)"
            ),
            "service/replica.py::FollowerStore.seal": (
                "fsync+close bookkeeping at a segment boundary"
            ),
            "service/replica.py::FollowerStore.query": (
                "lock-free read of an immutable snapshot; served "
                "through handle(), which activates the tracer"
            ),
            "service/replica.py::FollowerStore.promote": (
                "one-shot failover; the promoted DurableStore's own "
                "spans take over"
            ),
            "service/replica.py::FollowerStore.close": "resource teardown",
            "service/replica.py::WalShipper.lag": "reporting",
            # Frontend: lifecycle only; every request runs through
            # _execute, which opens front.request.
            "shard/frontend.py::ShardFrontend.start": "socket bind",
            "shard/frontend.py::ShardFrontend.serve_forever": (
                "accept loop; front.request spans fire per request"
            ),
            "shard/frontend.py::ShardFrontend.close": "resource teardown",
        },
        catalogue=catalogue if catalogue.exists() else None,
    )


def _span_literals(tree: ast.AST) -> list[tuple[str, int]]:
    """Every ``span("<name>")`` literal with its line."""
    names: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and call_name(node) == "span"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.append((node.args[0].value, node.lineno))
    return names


def _opens(function: FunctionNode, expected: Sequence[str]) -> bool:
    """Does the body open one of the expected spans (or a tracer)?"""
    accepts_tracing = "tracing" in expected
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if accepts_tracing and name == "tracing":
                return True
            if (
                name == "span"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value in expected
            ):
                return True
    return False


def _decorator_names(function: FunctionNode) -> set[str]:
    names: set[str] = set()
    for decorator in function.decorator_list:
        if isinstance(decorator, ast.Name):
            names.add(decorator.id)
        elif isinstance(decorator, ast.Attribute):
            names.add(decorator.attr)
    return names


def _delegates_to(
    function: FunctionNode, required_methods: set[str]
) -> bool:
    """Body calls ``self.<m>`` / ``cls.<m>`` for a required method of
    the same class — the wrapper inherits its span."""
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("self", "cls")
            and node.func.attr in required_methods
        ):
            return True
    return False


def load_catalogue(path: Path) -> set[str]:
    """Span names documented in the markdown catalogue table."""
    names: set[str] = set()
    in_section = False
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            in_section = "span catalogue" in stripped.lower()
            continue
        if in_section and stripped.startswith("|"):
            first_cell = stripped.split("|")[1]
            names.update(_CATALOGUE_TOKEN.findall(first_cell))
    return names


def _functions_by_qualname(
    tree: ast.Module,
) -> dict[str, FunctionNode]:
    """``qualname → node`` for module-level functions and methods."""
    table: dict[str, FunctionNode] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table[f"{node.name}.{member.name}"] = member
    return table


def _matches(display: str, module_suffix: str) -> bool:
    return display.replace("\\", "/").endswith(module_suffix)


def check_project(
    sources: Iterable[SourceFile], config: SpanConfig
) -> list[Finding]:
    """The whole-project pass (this rule is cross-file by nature)."""
    findings: list[Finding] = []
    used_spans: dict[str, tuple[str, int]] = {}
    seen_required: set[str] = set()

    for source in sources:
        for name, line in _span_literals(source.tree):
            used_spans.setdefault(name, (source.display, line))
        table = _functions_by_qualname(source.tree)

        for key, expected in config.required.items():
            module_suffix, _, qualname = key.partition("::")
            if not _matches(source.display, module_suffix):
                continue
            seen_required.add(key)
            function = table.get(qualname)
            if function is None:
                findings.append(
                    Finding(
                        path=source.display,
                        line=1,
                        col=1,
                        rule=RULE_ID,
                        severity="warning",
                        message=(
                            f"configured entry point {qualname} no longer "
                            "exists; update the span-hygiene config"
                        ),
                    )
                )
                continue
            if not _opens(function, expected):
                wanted = " or ".join(
                    f'span("{name}")' if name != "tracing" else "tracing(...)"
                    for name in expected
                )
                findings.append(
                    Finding(
                        path=source.display,
                        line=function.lineno,
                        col=function.col_offset + 1,
                        rule=RULE_ID,
                        severity="error",
                        message=(
                            f"{qualname} must open {wanted} (see the span "
                            "catalogue in docs/ARCHITECTURE.md)"
                        ),
                    )
                )

        for surface_key in config.surface:
            module_suffix, _, class_name = surface_key.partition("::")
            if not _matches(source.display, module_suffix):
                continue
            class_node = next(
                (
                    node
                    for node in source.tree.body
                    if isinstance(node, ast.ClassDef)
                    and node.name == class_name
                ),
                None,
            )
            if class_node is None:
                continue
            required_methods = {
                key.partition("::")[2].split(".")[-1]
                for key in config.required
                if key.startswith(f"{module_suffix}::{class_name}.")
            }
            for member in class_node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if member.name.startswith("_"):
                    continue
                key = f"{module_suffix}::{class_name}.{member.name}"
                if key in config.required or key in config.exempt:
                    continue
                decorators = _decorator_names(member)
                if decorators & {"property", "classmethod", "staticmethod"}:
                    if _opens(member, ("tracing",)) or _delegates_to(
                        member, required_methods
                    ):
                        continue
                    if "property" in decorators:
                        continue  # plain accessor
                if _opens(member, ("tracing",)) or _delegates_to(
                    member, required_methods
                ):
                    continue
                if any(
                    isinstance(node, ast.Call) and call_name(node) == "span"
                    for node in ast.walk(member)
                ):
                    continue  # opens some span; catalogue check covers it
                findings.append(
                    Finding(
                        path=source.display,
                        line=member.lineno,
                        col=member.col_offset + 1,
                        rule=RULE_ID,
                        severity="error",
                        message=(
                            f"unreviewed public entry point "
                            f"{class_name}.{member.name}: open a tracer "
                            "span (and catalogue it) or add an exemption "
                            "with a reason to the span-hygiene config"
                        ),
                    )
                )

    if config.catalogue is not None:
        documented = load_catalogue(config.catalogue)
        catalogue_display = str(config.catalogue)
        for name, (display, line) in sorted(used_spans.items()):
            if name not in documented:
                findings.append(
                    Finding(
                        path=display,
                        line=line,
                        col=1,
                        rule=RULE_ID,
                        severity="error",
                        message=(
                            f'span "{name}" is not documented in the span '
                            f"catalogue ({config.catalogue.name})"
                        ),
                    )
                )
        for name in sorted(documented - set(used_spans)):
            findings.append(
                Finding(
                    path=catalogue_display,
                    line=1,
                    col=1,
                    rule=RULE_ID,
                    severity="warning",
                    message=(
                        f'catalogued span "{name}" is never opened in the '
                        "analyzed tree"
                    ),
                )
            )
    return findings
