"""The invariant linter: file collection, rule dispatch, reporting.

:class:`Analyzer` walks the requested paths, parses each ``.py`` file
once into a :class:`~repro.analysis.astcheck.SourceFile`, runs every
registered per-file rule over it, then runs the project-wide rules
(span hygiene and the cache-invalidation map cross-check configured
entry points against the whole tree; lock-order accumulates one
acquisition graph across every file).  Rules are plain functions —
per-file rules take a ``SourceFile``, project rules take the full
list — so adding a rule is one import and one registry entry (plus a
line in :data:`~repro.analysis.findings.RULE_CODES`, which the
registry is asserted against).

Per-path rule selection: ``rule_paths`` restricts a rule to files
whose (root-relative) display path starts with one of the given
prefixes.  The CLI uses it to keep the ``src``-specific configured
rules (span hygiene, the invalidation map) from firing on ``scripts/``
and ``benchmarks/`` while the behavioral packs sweep everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.analysis import (
    rules_asyncio,
    rules_determinism,
    rules_fork,
    rules_invalidation,
    rules_locks,
    rules_resources,
    rules_spans,
)
from repro.analysis.astcheck import SourceFile
from repro.analysis.findings import RULE_CODES, Finding
from repro.analysis.rules_invalidation import InvalidationConfig
from repro.analysis.rules_spans import SpanConfig

FileRule = Callable[[SourceFile], list[Finding]]

#: The per-file rule packs, in report order.
FILE_RULES: dict[str, FileRule] = {
    rules_locks.RULE_ID: rules_locks.check,
    rules_determinism.RULE_ID: rules_determinism.check,
    rules_resources.RULE_ID: rules_resources.check,
    rules_asyncio.RULE_ID: rules_asyncio.check,
    rules_fork.RULE_ID: rules_fork.check,
}

#: The project-wide rules (cross-file by nature).
PROJECT_RULES: tuple[str, ...] = (
    rules_spans.RULE_ID,
    rules_locks.ORDER_RULE_ID,
    rules_invalidation.RULE_ID,
)

ALL_RULES: tuple[str, ...] = tuple(FILE_RULES) + PROJECT_RULES

assert set(ALL_RULES) == set(RULE_CODES), (
    "rule registry and findings.RULE_CODES disagree: "
    f"{sorted(set(ALL_RULES) ^ set(RULE_CODES))}"
)


@dataclass
class Analyzer:
    """One lint run: which paths, which rules, which configs."""

    paths: Sequence[Path]
    root: Optional[Path] = None
    rules: Sequence[str] = field(default_factory=lambda: ALL_RULES)
    span_config: Optional[SpanConfig] = None
    invalidation_config: Optional[InvalidationConfig] = None
    #: rule id → display-path prefixes the rule is confined to; a rule
    #: absent from the mapping runs everywhere.
    rule_paths: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.rules) - set(ALL_RULES)
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))} "
                f"(available: {', '.join(ALL_RULES)})"
            )

    def collect(self) -> list[Path]:
        """Every ``.py`` file under the requested paths, sorted (the
        linter must itself be deterministic)."""
        files: set[Path] = set()
        for path in self.paths:
            if path.is_dir():
                files.update(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.add(path)
        return sorted(files)

    def _display(self, path: Path) -> str:
        if self.root is not None:
            try:
                return path.resolve().relative_to(self.root.resolve()).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    def sources(self) -> Iterator[SourceFile]:
        for path in self.collect():
            yield SourceFile.load(path, display=self._display(path))

    def _in_scope(self, rule_id: str, source: SourceFile) -> bool:
        prefixes = self.rule_paths.get(rule_id)
        if prefixes is None:
            return True
        return source.display.startswith(tuple(prefixes))

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        loaded: list[SourceFile] = []
        for source in self.sources():
            loaded.append(source)
            for rule_id, rule in FILE_RULES.items():
                if rule_id in self.rules and self._in_scope(rule_id, source):
                    findings.extend(rule(source))

        def scoped(rule_id: str) -> list[SourceFile]:
            return [s for s in loaded if self._in_scope(rule_id, s)]

        if rules_spans.RULE_ID in self.rules and self.span_config is not None:
            findings.extend(
                rules_spans.check_project(
                    scoped(rules_spans.RULE_ID), self.span_config
                )
            )
        if rules_locks.ORDER_RULE_ID in self.rules:
            findings.extend(
                rules_locks.check_order(scoped(rules_locks.ORDER_RULE_ID))
            )
        if (
            rules_invalidation.RULE_ID in self.rules
            and self.invalidation_config is not None
        ):
            findings.extend(
                rules_invalidation.check_project(
                    scoped(rules_invalidation.RULE_ID),
                    self.invalidation_config,
                )
            )
        return sorted(findings)


def lint_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    span_config: Optional[SpanConfig] = None,
    invalidation_config: Optional[InvalidationConfig] = None,
    rule_paths: Optional[Mapping[str, tuple[str, ...]]] = None,
) -> list[Finding]:
    """Convenience front door used by the CLI and the tests."""
    analyzer = Analyzer(
        paths=list(paths),
        root=root,
        rules=tuple(rules) if rules is not None else ALL_RULES,
        span_config=span_config,
        invalidation_config=invalidation_config,
        rule_paths=dict(rule_paths) if rule_paths is not None else {},
    )
    return analyzer.run()
