"""The invariant linter: file collection, rule dispatch, reporting.

:class:`Analyzer` walks the requested paths, parses each ``.py`` file
once into a :class:`~repro.analysis.astcheck.SourceFile`, runs every
registered per-file rule over it, then runs the project-wide rules
(span hygiene needs the whole tree at once to cross-check the span
catalogue).  Rules are plain functions — per-file rules take a
``SourceFile``, project rules take the full list — so adding a rule is
one import and one registry entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.analysis import (
    rules_determinism,
    rules_locks,
    rules_resources,
    rules_spans,
)
from repro.analysis.astcheck import SourceFile
from repro.analysis.findings import Finding
from repro.analysis.rules_spans import SpanConfig

FileRule = Callable[[SourceFile], list[Finding]]

#: The four rule packs, in report order.
FILE_RULES: dict[str, FileRule] = {
    rules_locks.RULE_ID: rules_locks.check,
    rules_determinism.RULE_ID: rules_determinism.check,
    rules_resources.RULE_ID: rules_resources.check,
}

ALL_RULES: tuple[str, ...] = tuple(FILE_RULES) + (rules_spans.RULE_ID,)


@dataclass
class Analyzer:
    """One lint run: which paths, which rules, which span config."""

    paths: Sequence[Path]
    root: Optional[Path] = None
    rules: Sequence[str] = field(default_factory=lambda: ALL_RULES)
    span_config: Optional[SpanConfig] = None

    def __post_init__(self) -> None:
        unknown = set(self.rules) - set(ALL_RULES)
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))} "
                f"(available: {', '.join(ALL_RULES)})"
            )

    def collect(self) -> list[Path]:
        """Every ``.py`` file under the requested paths, sorted (the
        linter must itself be deterministic)."""
        files: set[Path] = set()
        for path in self.paths:
            if path.is_dir():
                files.update(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.add(path)
        return sorted(files)

    def _display(self, path: Path) -> str:
        if self.root is not None:
            try:
                return path.resolve().relative_to(self.root.resolve()).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    def sources(self) -> Iterator[SourceFile]:
        for path in self.collect():
            yield SourceFile.load(path, display=self._display(path))

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        loaded: list[SourceFile] = []
        for source in self.sources():
            loaded.append(source)
            for rule_id, rule in FILE_RULES.items():
                if rule_id in self.rules:
                    findings.extend(rule(source))
        if rules_spans.RULE_ID in self.rules and self.span_config is not None:
            findings.extend(
                rules_spans.check_project(loaded, self.span_config)
            )
        return sorted(findings)


def lint_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
    span_config: Optional[SpanConfig] = None,
) -> list[Finding]:
    """Convenience front door used by the CLI and the tests."""
    analyzer = Analyzer(
        paths=list(paths),
        root=root,
        rules=tuple(rules) if rules is not None else ALL_RULES,
        span_config=span_config,
    )
    return analyzer.run()
