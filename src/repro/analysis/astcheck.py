"""Shared AST machinery for the invariant linter.

One :class:`SourceFile` per analyzed module: the parsed tree (with
parent back-links), the raw lines, and the per-line comments extracted
with :mod:`tokenize` — the ``# guarded-by: <lock>`` annotations the
lock-discipline rule consumes live in comments, which ``ast`` alone
does not surface.

The helpers at the bottom answer the questions every rule asks: "is
this expression statically a set?", "what lock attributes does this
``with`` statement take?", "render this attribute chain as a dotted
name".
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

#: ``# guarded-by: <lock attr>`` with an optional mode suffix; the only
#: recognised mode is ``writes`` (reads are lock-free by design — the
#: immutable-snapshot-pointer pattern the serving layer uses).
GUARDED_BY = re.compile(
    r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\s*\(\s*(?P<mode>writes)\s*\))?"
)

#: ``# allow-<marker>: <reason>`` — the reviewed-and-accepted escape
#: hatch of the concurrency rule packs.  Each pack documents its own
#: marker (``allow-blocking``, ``allow-fork``, ``allow-lock-order``); a
#: reason is expected, and exemptions live next to the code they excuse
#: rather than in the baseline file.
ALLOW = re.compile(r"#\s*allow-(?P<marker>[a-z][a-z-]*)(?:\s*:\s*(?P<reason>.*))?")


@dataclass(frozen=True)
class GuardAnnotation:
    """One ``# guarded-by`` comment: which lock, and whether only
    writes are checked (``mode == "writes"``)."""

    lock: str
    mode: str  # "all" | "writes"
    line: int


@dataclass
class SourceFile:
    """A parsed module plus the comment layer the rules need."""

    path: Path
    display: str  # repo-relative path used in findings
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, display: Optional[str] = None) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        attach_parents(tree)
        return cls(
            path=path,
            display=display if display is not None else str(path),
            text=text,
            tree=tree,
            comments=extract_comments(text),
        )

    def guard_annotation(self, line: int) -> Optional[GuardAnnotation]:
        """The ``guarded-by`` annotation on ``line`` or the line above.

        The line above only counts when it is a comment-*only* line (a
        comment of its own directly over the assignment) — a trailing
        comment on the previous statement must not leak onto this one.
        """
        for candidate in (line, line - 1):
            comment = self.comments.get(candidate)
            if comment is None:
                continue
            if candidate == line - 1:
                lines = self.text.splitlines()
                if (
                    candidate < 1
                    or candidate > len(lines)
                    or not lines[candidate - 1].lstrip().startswith("#")
                ):
                    continue
            match = GUARDED_BY.search(comment)
            if match:
                return GuardAnnotation(
                    lock=match.group("lock"),
                    mode="writes" if match.group("mode") else "all",
                    line=candidate,
                )
        return None

    def allowance(self, line: int, marker: str) -> Optional[str]:
        """The reason of an ``# allow-<marker>`` comment on ``line`` or
        on a comment-only line directly above, else ``None``.

        Same placement rules as :meth:`guard_annotation`: a trailing
        comment on the previous *statement* does not leak downward.
        """
        lines = self.text.splitlines()
        for candidate in (line, line - 1):
            comment = self.comments.get(candidate)
            if comment is None:
                continue
            if candidate == line - 1 and (
                candidate < 1
                or candidate > len(lines)
                or not lines[candidate - 1].lstrip().startswith("#")
            ):
                continue
            match = ALLOW.search(comment)
            if match and match.group("marker") == marker:
                return match.group("reason") or ""
        return None


def extract_comments(text: str) -> dict[int, str]:
    """``line → comment text`` for every comment token in ``text``."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        pass
    return comments


def attach_parents(tree: ast.AST) -> None:
    """Set a ``parent`` attribute on every node (rules walk upward to
    find enclosing functions, classes and ``with`` blocks)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def parents(node: ast.AST) -> Iterator[ast.AST]:
    """The chain of ancestors from ``node`` up to the module."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def enclosing_function(
    node: ast.AST,
) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    for ancestor in parents(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for ancestor in parents(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` chains (``None`` for anything fancier)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``sorted`` for ``sorted(x)``, ``glob`` for
    ``glob.glob(x)`` (the last attribute of a dotted callee)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def self_attribute(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def with_lock_attrs(node: ast.With) -> list[str]:
    """The ``X`` of every ``self.X`` context item of a ``with``.

    Recognises both ``with self._lock:`` and
    ``with self._lock, tracing(...):``; non-attribute items (function
    calls such as ``tracing``) contribute nothing.
    """
    locks: list[str] = []
    for item in node.items:
        attr = self_attribute(item.context_expr)
        if attr is not None:
            locks.append(attr)
    return locks


#: Substrings that mark an attribute or variable as a mutual-exclusion
#: primitive.  The repo's own locks are all ``*lock*``-named
#: (``_lock``, ``_write_lock``, ``_locks``); ``mutex``/``sem`` cover
#: the conventional synonyms.  Name-based, so a rule can tell
#: ``with self._write_lock:`` apart from ``with tracing(...):`` without
#: type inference.
LOCKISH = ("lock", "mutex", "sem")

#: Constructors of synchronization / worker-pool objects whose *module
#: level* instances are dangerous to inherit across ``fork``.
CONCURRENCY_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "ParallelExecutor",
    }
)


def is_lockish(name: Optional[str]) -> bool:
    """Does ``name`` look like a mutual-exclusion primitive?"""
    if not name:
        return False
    lowered = name.lower()
    return any(token in lowered for token in LOCKISH)


def lock_attr_of(expr: ast.expr) -> Optional[str]:
    """The lock attribute named by an acquisition expression.

    ``self.X`` and ``self.X[i]`` (one lock of a per-shard list) both
    resolve to ``X``; anything else — calls, plain names, chained
    attributes — yields ``None``, keeping the lexical lock analyses
    conservative.
    """
    node = expr
    if isinstance(node, ast.Subscript):
        node = node.value
    return self_attribute(node)


def module_functions(
    tree: ast.Module,
) -> dict[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """``name → node`` for the module-level function definitions."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def module_concurrency_globals(tree: ast.Module) -> dict[str, str]:
    """Module-level names bound to locks / pools: ``name → constructor``.

    Only simple ``NAME = Lock()`` / ``POOL = ThreadPoolExecutor(...)``
    bindings in the module body count — that is the only shape whose
    fork-inheritance hazard is statically certain.
    """
    globals_: dict[str, str] = {}
    for node in tree.body:
        value: Optional[ast.expr] = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if not isinstance(value, ast.Call):
            continue
        constructor = call_name(value)
        if constructor not in CONCURRENCY_CONSTRUCTORS:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                globals_[target.id] = constructor
    return globals_


def _lock_method_attrs(nodes: Iterator[ast.AST], method: str) -> set[str]:
    """Lock attributes ``X`` with a ``self.X...<method>()`` call in
    ``nodes`` (subscripted per-shard locks ``self.X[i]`` included)."""
    attrs: set[str] = set()
    for node in nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
        ):
            attr = lock_attr_of(node.func.value)
            if attr is not None:
                attrs.add(attr)
    return attrs


def try_finally_locks(try_node: ast.Try) -> set[str]:
    """Lock attributes the manual idiom holds across ``try_node.body``.

    Recognised shape: ``self.X...release()`` in the ``finally`` block,
    paired with ``self.X...acquire()`` either in the statements
    directly preceding the ``try`` or inside its body (the fan-out
    pattern acquires inside the ``try`` so a failure mid-loop releases
    only what was taken).  The held region is approximated as the whole
    ``try`` body — an over-approximation that can only suppress
    discipline findings, never invent them.
    """
    released = _lock_method_attrs(
        (n for stmt in try_node.finalbody for n in ast.walk(stmt)), "release"
    )
    if not released:
        return set()
    acquired = _lock_method_attrs(
        (n for stmt in try_node.body for n in ast.walk(stmt)), "acquire"
    )
    parent = getattr(try_node, "parent", None)
    if parent is not None:
        for _, value in ast.iter_fields(parent):
            if isinstance(value, list) and try_node in value:
                preceding = value[: value.index(try_node)]
                acquired |= _lock_method_attrs(
                    (n for stmt in preceding for n in ast.walk(stmt)),
                    "acquire",
                )
                break
    return released & acquired


def held_lock_attrs(
    node: ast.AST, stop_class: Optional[ast.ClassDef] = None
) -> set[str]:
    """Every lock attribute lexically held at ``node``: enclosing
    ``with self.X:`` statements plus the acquire/``finally``-release
    idiom (:func:`try_finally_locks`).  Stops at ``stop_class`` when
    given (the discipline rule's per-class scope)."""
    held: set[str] = set()
    child: ast.AST = node
    for ancestor in parents(node):
        if isinstance(ancestor, ast.With):
            held.update(with_lock_attrs(ancestor))
        elif isinstance(ancestor, ast.Try) and child in ancestor.body:
            held.update(try_finally_locks(ancestor))
        elif isinstance(ancestor, ast.ClassDef) and ancestor is stop_class:
            break
        child = ancestor
    return held


def direct_callees(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> set[str]:
    """Plain names ``function`` calls directly (``helper(x)``) — the
    one-level call graph the fork-safety rule follows.  Attribute calls
    (``module.helper``) are out of reach of a per-file analysis and are
    deliberately ignored."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


#: Calls that statically return a set.
SET_RETURNING_CALLS = frozenset({"set", "frozenset", "attrs", "union_all"})
#: Set methods that return a set when called on a set-typed receiver.
SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
#: Filesystem enumerators whose order is OS-dependent.
FS_ENUMERATORS = {
    "listdir": "os.listdir",
    "scandir": "os.scandir",
    "iterdir": "Path.iterdir",
    "glob": "glob",
    "iglob": "glob.iglob",
    "rglob": "Path.rglob",
}
#: Annotation names that mark a value as set-typed.
SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "Attrs"})


def annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """True when a type annotation names a set type (``set[str]``,
    ``frozenset``, ``Set[...]`` and the library's ``Attrs`` alias)."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: good enough to check the head.
        head = node.value.split("[", 1)[0].strip()
        return head in SET_ANNOTATIONS
    return False


def is_set_expr(node: ast.expr, set_names: frozenset[str]) -> bool:
    """Conservatively decide whether ``node`` evaluates to a set.

    ``set_names`` are local names the caller has inferred to be
    set-typed (from assignments and annotations).  The test is
    syntactic and errs toward ``False`` — a lint rule must not guess.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in SET_RETURNING_CALLS:
            return True
        if name in SET_METHODS and isinstance(node.func, ast.Attribute):
            return is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra: both operands set-typed (an int ``a - b`` must
        # not match, so require evidence on each side).
        return is_set_expr(node.left, set_names) and is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Attribute):
        # ``self.universe`` / ``scheme.attributes`` style accessors are
        # set-typed throughout this library.
        return node.attr in ("universe", "attributes") or (
            node.attr in set_names
        )
    return False


def infer_set_locals(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> frozenset[str]:
    """Local names that are set-typed somewhere in ``function``.

    One flow-insensitive pass: a name assigned a set expression or
    annotated as a set anywhere counts.  Flow-insensitivity can only
    widen the set of names — acceptable for a linter whose downstream
    check still requires an order-sensitive *consumer* to fire.
    """
    names: set[str] = set()
    for arg in list(function.args.args) + list(function.args.kwonlyargs):
        if annotation_is_set(arg.annotation):
            names.add(arg.arg)
    changed = True
    while changed:
        changed = False
        frozen = frozenset(names)
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and is_set_expr(
                node.value, frozen
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        changed = True
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if annotation_is_set(node.annotation) or (
                    node.value is not None
                    and is_set_expr(node.value, frozen)
                ):
                    if node.target.id not in names:
                        names.add(node.target.id)
                        changed = True
    return frozenset(names)
