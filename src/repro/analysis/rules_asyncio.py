"""Async-discipline lint: the event loop never blocks, locks never
span an ``await``.

The front door (PR 9) is a single asyncio loop multiplexing every
client; one synchronous ``fsync`` or lock acquisition on that loop
stalls *all* in-flight requests, which no single-connection test will
ever notice.  The architecture's rule is lexical and checkable: async
bodies contain only coordination — anything that can touch a disk,
a socket, a subprocess or a sync lock runs on the executor
(``loop.run_in_executor`` / ``asyncio.to_thread``).

What fires, lexically inside an ``async def`` body (code whose nearest
enclosing function is the async one — a nested sync ``def`` is a thunk
handed to the executor, not loop code):

* known blocking calls — ``time.sleep``, sync ``open`` and ``Path``
  file I/O, ``os.fsync``, the ``subprocess`` module, sync socket
  operations (``socket.socket``, ``create_connection``, ``recv`` /
  ``sendall`` / ``accept``), and ``<lock>.acquire()`` — unless the
  call is awaited (then it is the async flavour), routed through
  ``run_in_executor`` / ``to_thread``, or carries an
  ``# allow-blocking: <reason>`` comment;
* a sync ``with <lock>:`` statement (``async with`` is the loop-safe
  form; a sync lock acquisition can park the whole loop behind a
  thread that holds it);
* an ``await`` while a sync lock is lexically held — the lock stays
  taken across the suspension, so every other task (and any executor
  thread contending for it) stalls behind a coroutine that may not be
  rescheduled for a long time.

Lock detection is name-based (:data:`~repro.analysis.astcheck.LOCKISH`):
``with self._write_lock:`` counts, ``with tracing(...):`` does not.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from repro.analysis.astcheck import (
    SourceFile,
    call_name,
    dotted_name,
    is_lockish,
    parents,
    try_finally_locks,
)
from repro.analysis.findings import Finding

RULE_ID = "async-discipline"

#: The exemption comment marker: ``# allow-blocking: <reason>``.
ALLOW_MARKER = "blocking"

#: Dotted call names that block outright.
BLOCKING_DOTTED = {
    "time.sleep": "time.sleep",
    "os.fsync": "os.fsync",
    "os.fdatasync": "os.fdatasync",
    "socket.socket": "socket.socket",
    "socket.create_connection": "socket.create_connection",
    "socket.getaddrinfo": "socket.getaddrinfo",
}

#: Bare names that block (``from time import sleep`` included).
BLOCKING_NAMES = {
    "open": "open",
    "sleep": "time.sleep",
    "Popen": "subprocess.Popen",
}

#: Method names that block regardless of receiver: sync socket
#: operations and ``Path`` file I/O.
BLOCKING_ATTRS = {
    "fsync": "fsync",
    "fdatasync": "fdatasync",
    "recv": "socket recv",
    "recv_into": "socket recv_into",
    "recvfrom": "socket recvfrom",
    "sendall": "socket sendall",
    "accept": "socket accept",
    "read_text": "Path.read_text",
    "read_bytes": "Path.read_bytes",
    "write_text": "Path.write_text",
    "write_bytes": "Path.write_bytes",
}

#: ``subprocess.<member>`` calls that spawn-and-wait.
SUBPROCESS_MEMBERS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)

#: Executor front doors: anything lexically inside their argument list
#: runs off-loop by construction.
EXECUTOR_ROUTES = frozenset({"run_in_executor", "to_thread"})

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _owning_async(node: ast.AST) -> Optional[ast.AsyncFunctionDef]:
    """The async function whose *body* contains ``node`` — ``None``
    when a nested sync ``def`` intervenes (executor thunks)."""
    for ancestor in parents(node):
        if isinstance(ancestor, ast.AsyncFunctionDef):
            return ancestor
        if isinstance(ancestor, ast.FunctionDef):
            return None
    return None


def _routed_to_executor(node: ast.AST, boundary: ast.AST) -> bool:
    """Is ``node`` inside the argument list of a ``run_in_executor`` /
    ``to_thread`` call (up to the async function ``boundary``)?"""
    for ancestor in parents(node):
        if ancestor is boundary:
            return False
        if (
            isinstance(ancestor, ast.Call)
            and call_name(ancestor) in EXECUTOR_ROUTES
        ):
            return True
    return False


def _lock_display(expr: ast.expr) -> Optional[str]:
    """Render a lockish acquisition target (``self._lock``,
    ``self._locks[i]``, bare ``lock``), else ``None``."""
    node = expr
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    if name is None:
        return None
    return name if is_lockish(name.rsplit(".", 1)[-1]) else None


def _sync_locks_held(node: ast.AST, boundary: ast.AST) -> list[str]:
    """Lockish targets taken by sync ``with`` statements (or the
    acquire/``finally`` idiom) between ``node`` and the async function
    ``boundary``."""
    held: list[str] = []
    child: ast.AST = node
    for ancestor in parents(node):
        if ancestor is boundary:
            break
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                display = _lock_display(item.context_expr)
                if display is not None:
                    held.append(display)
        elif isinstance(ancestor, ast.Try) and child in ancestor.body:
            held.extend(
                f"self.{attr}"
                for attr in sorted(try_finally_locks(ancestor))
                if is_lockish(attr)
            )
        child = ancestor
    return held


def _blocking_description(call: ast.Call) -> Optional[str]:
    """What ``call`` blocks on, or ``None`` when it is loop-safe."""
    dotted = (
        dotted_name(call.func)
        if isinstance(call.func, ast.Attribute)
        else None
    )
    if dotted is not None:
        if dotted in BLOCKING_DOTTED:
            return BLOCKING_DOTTED[dotted]
        head, _, member = dotted.rpartition(".")
        if head == "subprocess" and member in SUBPROCESS_MEMBERS:
            return f"subprocess.{member}"
    if isinstance(call.func, ast.Name):
        return BLOCKING_NAMES.get(call.func.id)
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr == "acquire":
            display = _lock_display(call.func.value)
            if display is not None:
                return f"{display}.acquire"
            return None
        return BLOCKING_ATTRS.get(attr)
    return None


def check(source: SourceFile) -> list[Finding]:
    findings: list[Finding] = []

    def finding(node: ast.AST, message: str) -> None:
        if source.allowance(node.lineno, ALLOW_MARKER) is not None:
            return
        findings.append(
            Finding(
                path=source.display,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=RULE_ID,
                severity="error",
                message=message,
            )
        )

    for node in ast.walk(source.tree):
        owner = _owning_async(node)
        if owner is None:
            continue

        if isinstance(node, ast.Call):
            parent = getattr(node, "parent", None)
            if isinstance(parent, ast.Await):
                continue  # awaited: the async flavour of the call
            if _routed_to_executor(node, owner):
                continue
            described = _blocking_description(node)
            if described is not None:
                finding(
                    node,
                    f"blocking call {described}(...) inside async "
                    f"function {owner.name} stalls the event loop; "
                    "route it through loop.run_in_executor(...) / "
                    "asyncio.to_thread(...) or annotate "
                    "`# allow-blocking: <reason>`",
                )

        elif isinstance(node, ast.With):
            for item in node.items:
                display = _lock_display(item.context_expr)
                if display is not None:
                    finding(
                        node,
                        f"sync `with {display}:` inside async function "
                        f"{owner.name} can block the event loop behind "
                        "a thread holding the lock; use asyncio.Lock "
                        "(`async with`) or move the critical section "
                        "to the executor",
                    )
                    break

        elif isinstance(node, ast.Await):
            held = _sync_locks_held(node, owner)
            if held:
                finding(
                    node,
                    f"await while holding sync lock {held[0]} in async "
                    f"function {owner.name}: the lock stays taken "
                    "across the suspension and starves every other "
                    "task contending for it",
                )
    return findings
