"""Independence-reducible database schemes: KEP and the recognition
algorithm (paper, Sections 4, 5.1, 5.2).

``R`` is *independence-reducible* when its relation schemes admit a
partition into key-equivalent blocks whose block-union scheme ``D`` is
independent.  ``KEP`` computes the (unique) key-equivalent partition;
Algorithm 6 accepts exactly the independence-reducible schemes by
testing independence of the scheme induced by that partition
(Theorem 5.1 and Corollary 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.independence import is_independent, uniqueness_violations
from repro.core.key_equivalent import is_key_equivalent
from repro.fd.fdset import FDSet
from repro.foundations.attrs import fmt_attrs, sorted_attrs, union_all
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme


def key_equivalent_partition(
    scheme: DatabaseScheme,
) -> list[DatabaseScheme]:
    """``KEP(R, F)``: the key-equivalent partition of the scheme.

    Members are grouped by their attribute closure under the current
    (sub)scheme's embedded key dependencies; groups are re-partitioned
    recursively under their own embedded dependencies until stable
    (function KEP, Section 5.1).  Each returned block is a sub-scheme
    that is key-equivalent with respect to its own key dependencies
    (Lemma 5.1), and the partition is the coarsest such (Lemma 5.2).
    """
    groups: dict[frozenset[str], list[RelationScheme]] = {}
    for member in scheme.relations:
        closure = scheme.fds.closure(member.attributes)
        groups.setdefault(closure, []).append(member)
    if len(groups) == 1:
        return [scheme]
    partition: list[DatabaseScheme] = []
    for closure in sorted(groups, key=lambda c: tuple(sorted(c))):
        block = scheme.subscheme(groups[closure])
        partition.extend(key_equivalent_partition(block))
    return partition


def induced_scheme(blocks: Sequence[DatabaseScheme]) -> DatabaseScheme:
    """The database scheme ``D = {∪T1, ..., ∪Tk}`` induced by a
    partition: one relation scheme per block over the block's attribute
    union, declaring the minimal keys among the block members' keys.

    Within a key-equivalent block every declared key determines the
    whole block union, so the candidate keys of ``∪Tp`` with respect to
    the block's key dependencies are exactly the inclusion-minimal
    declared keys; the induced key dependencies form a cover of the
    block's (Corollary 4.1).
    """
    members: list[RelationScheme] = []
    for index, block in enumerate(blocks, start=1):
        attributes = union_all(m.attributes for m in block.relations)
        declared = {key for m in block.relations for key in m.keys}
        # Iterate in canonical order: the key list below shapes the
        # induced RelationScheme and must not depend on the hash seed.
        minimal = [
            key
            for key in sorted(declared, key=sorted_attrs)
            if not any(other < key for other in declared)
        ]
        members.append(RelationScheme(f"D{index}", attributes, minimal))
    return DatabaseScheme(members)


@dataclass(frozen=True)
class RecognitionResult:
    """Outcome of Algorithm 6.

    ``accepted`` — whether the scheme is independence-reducible;
    ``partition`` — the key-equivalent partition (always computed);
    ``induced`` — the corresponding induced scheme ``D``;
    ``embedded_cover`` — per-block key-dependency sets ``F1,...,Fn``;
    ``rejection_reason`` — a human-readable account when rejected.
    """

    accepted: bool
    partition: tuple[DatabaseScheme, ...]
    induced: DatabaseScheme
    embedded_cover: tuple[FDSet, ...]
    rejection_reason: Optional[str] = None

    def __bool__(self) -> bool:
        return self.accepted

    def block_of(self, relation_name: str) -> DatabaseScheme:
        """The partition block containing the named relation scheme."""
        for block in self.partition:
            if relation_name in block:
                return block
        raise KeyError(relation_name)

    def describe(self) -> str:
        lines = [
            "independence-reducible" if self.accepted else
            f"NOT independence-reducible: {self.rejection_reason}",
            "key-equivalent partition:",
        ]
        for block, induced_member in zip(self.partition, self.induced):
            names = ", ".join(member.name for member in block.relations)
            lines.append(
                f"  {induced_member.name}"
                f"({fmt_attrs(induced_member.attributes)}) = {{{names}}}"
            )
        return "\n".join(lines)


def recognize_independence_reducible(
    scheme: DatabaseScheme,
) -> RecognitionResult:
    """Algorithm 6: recognize independence-reducible database schemes.

    Step (1) computes the key-equivalent partition via KEP; step (2)
    collects each block's embedded key dependencies; step (3) accepts
    iff the induced scheme ``D`` is independent (uniqueness condition).
    Polynomial in the scheme size (Corollary 5.4).
    """
    partition = tuple(key_equivalent_partition(scheme))
    induced = induced_scheme(partition)
    covers = tuple(block.fds for block in partition)
    if is_independent(induced):
        return RecognitionResult(
            accepted=True,
            partition=partition,
            induced=induced,
            embedded_cover=covers,
        )
    violations = uniqueness_violations(induced)
    detail = "; ".join(
        f"({left})+ under F−F_{right} embeds key dependency "
        f"{fmt_attrs(key)}→{attribute} of {right}"
        for left, right, key, attribute in violations[:3]
    )
    return RecognitionResult(
        accepted=False,
        partition=partition,
        induced=induced,
        embedded_cover=covers,
        rejection_reason=f"induced scheme not independent: {detail}",
    )


def is_independence_reducible(scheme: DatabaseScheme) -> bool:
    """Convenience wrapper around Algorithm 6."""
    return recognize_independence_reducible(scheme).accepted


def _set_partitions(items: Sequence[str]) -> Iterator[list[list[str]]]:
    """All partitions of a sequence (Bell-number many; tiny inputs
    only)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for smaller in _set_partitions(rest):
        for index in range(len(smaller)):
            yield (
                smaller[:index]
                + [[first] + smaller[index]]
                + smaller[index + 1 :]
            )
        yield [[first]] + smaller


def find_reducible_partition_bruteforce(
    scheme: DatabaseScheme, max_relations: int = 9
) -> Optional[list[DatabaseScheme]]:
    """Definitional search: try every partition of the relation schemes
    and return the first independence-reducible one, or None.

    Bell-number blowup — guarded by ``max_relations``.  Used by tests to
    cross-validate that Algorithm 6 accepts exactly the definitional
    class (Corollary 5.1 + Theorem 5.1).
    """
    if len(scheme.relations) > max_relations:
        raise ValueError(
            f"brute-force partition search capped at {max_relations} relations"
        )
    for grouping in _set_partitions(list(scheme.names)):
        blocks = [scheme.subscheme(group) for group in grouping]
        if not all(is_key_equivalent(block) for block in blocks):
            continue
        if is_independent(induced_scheme(blocks)):
            return blocks
    return None
