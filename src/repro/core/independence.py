"""Independent database schemes (paper, Section 2.7).

``R`` is *independent* with respect to ``F`` when local satisfaction
implies global consistency: ``LSAT(R, F) = WSAT(R, F)``.  Under the
paper's standing assumption — a cover of ``F`` embedded as key
dependencies — independence is characterized by Sagiv's *uniqueness
condition*: for all ``Ri ≠ Rj``, the closure of ``Ri`` under ``F − Fj``
contains no key dependency embedded in ``Rj``.

The characterization is the production test; an exhaustive small-state
falsifier is provided for cross-validation in the test suite.
"""

from __future__ import annotations

from itertools import product
from typing import Optional

from repro.foundations.attrs import fmt_attrs
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme
from repro.state.consistency import is_consistent, is_locally_consistent
from repro.state.database_state import DatabaseState


def uniqueness_violations(
    scheme: DatabaseScheme,
) -> list[tuple[str, str, frozenset[str], str]]:
    """All violations of the uniqueness condition.

    Each violation is ``(Ri, Rj, K, A)``: the closure of ``Ri`` under
    ``F − Fj`` contains the key dependency ``K → A`` embedded in ``Rj``
    (``K`` a declared key of ``Rj``, ``A ∈ Rj − K``).
    """
    violations: list[tuple[str, str, frozenset[str], str]] = []
    for left in scheme.relations:
        for right in scheme.relations:
            if left.name == right.name:
                continue
            closure = scheme.fds_excluding(right).closure(left.attributes)
            for key in right.keys:
                if not key <= closure:
                    continue
                for attribute in sorted(right.attributes - key):
                    if attribute in closure:
                        violations.append(
                            (left.name, right.name, key, attribute)
                        )
    return violations


def satisfies_uniqueness_condition(scheme: DatabaseScheme) -> bool:
    """Sagiv's uniqueness condition (paper, Section 2.7)."""
    return not uniqueness_violations(scheme)


def is_independent(scheme: DatabaseScheme) -> bool:
    """Independence test for cover-embedding schemes with embedded key
    dependencies — the uniqueness condition."""
    return satisfies_uniqueness_condition(scheme)


def find_independence_counterexample(
    scheme: DatabaseScheme,
    domain_size: int = 2,
    max_tuples_per_relation: int = 2,
) -> Optional[DatabaseState]:
    """Search tiny states for a member of ``LSAT − WSAT`` — a locally
    consistent but globally inconsistent state.

    Exhaustive over bounded states; exponential and meant only for
    cross-validating the uniqueness condition on small schemes in tests.
    Returns a counterexample state or None.
    """
    domains = {
        attribute: [f"{attribute.lower()}{i}" for i in range(domain_size)]
        for attribute in sorted(scheme.universe)
    }

    def candidate_tuples(member: RelationScheme) -> list[dict[str, str]]:
        ordered = sorted(member.attributes)
        return [
            dict(zip(ordered, combo))
            for combo in product(*(domains[a] for a in ordered))
        ]

    def candidate_relations(member: RelationScheme) -> list[list[dict[str, str]]]:
        tuples = candidate_tuples(member)
        options: list[list[dict[str, str]]] = [[]]
        # Singletons and unordered pairs, capped.
        for i, first in enumerate(tuples):
            options.append([first])
            if max_tuples_per_relation >= 2:
                for second in tuples[i + 1 :]:
                    options.append([first, second])
        return options

    members = list(scheme.relations)
    per_member = [candidate_relations(member) for member in members]
    for assignment in product(*per_member):
        state = DatabaseState(
            scheme,
            {
                member.name: choice
                for member, choice in zip(members, assignment)
            },
        )
        if state.is_empty():
            continue
        if is_locally_consistent(state) and not is_consistent(state):
            return state
    return None


def describe_violations(scheme: DatabaseScheme) -> list[str]:
    """Human-readable uniqueness-condition violations."""
    return [
        f"({left})+ under F−F_{right} embeds the key dependency "
        f"{fmt_attrs(key)}→{attribute} of {right}"
        for left, right, key, attribute in uniqueness_violations(scheme)
    ]
