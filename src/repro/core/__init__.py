"""The paper's contribution: key-equivalent schemes, splitness and ctm,
independence, independence-reducibility, recognition, bounded query
answering and incremental maintenance (paper, Sections 3-5)."""

from repro.core.corresponding import CorrespondingState, corresponding_state
from repro.core.ctm import (
    BlockOutcome,
    InsertMaintainer,
    MaintainerReport,
    is_ctm,
    split_blocks,
)
from repro.core.engine import BatchOutcome, Update, WeakInstanceEngine
from repro.core.parallel import ParallelExecutor
from repro.core.partition import (
    SchemePartition,
    partition_scheme,
    scheme_fingerprint,
)
from repro.core.independence import (
    describe_violations,
    find_independence_counterexample,
    is_independent,
    satisfies_uniqueness_condition,
    uniqueness_violations,
)
from repro.core.key_equivalent import (
    KERepInstance,
    is_key_equivalent,
    key_equivalent_chase,
    key_equivalent_representative_instance,
    require_key_equivalent,
    total_projection_expression,
    total_projection_key_equivalent,
)
from repro.core.maintenance import (
    ChaseRILookup,
    Extension,
    ExpressionRILookup,
    GreatestExpressionRILookup,
    InsertTraceStep,
    StateIndex,
    algebraic_insert,
    ctm_insert,
    extend_tuple,
)
from repro.core.materialized import MaterializedRepInstance
from repro.core.views import BlockMaterializedViews
from repro.core.query import (
    QueryPlan,
    total_projection_plan,
    total_projection_reducible,
)
from repro.core.reducible import (
    RecognitionResult,
    find_reducible_partition_bruteforce,
    induced_scheme,
    is_independence_reducible,
    key_equivalent_partition,
    recognize_independence_reducible,
)
from repro.core.split import (
    SplitWitness,
    find_split_witness,
    is_key_split,
    is_split_free,
    scheme_closure,
    split_keys,
)

__all__ = [
    "BatchOutcome",
    "BlockOutcome",
    "BlockMaterializedViews",
    "ChaseRILookup",
    "CorrespondingState",
    "Update",
    "WeakInstanceEngine",
    "corresponding_state",
    "Extension",
    "ExpressionRILookup",
    "GreatestExpressionRILookup",
    "InsertMaintainer",
    "InsertTraceStep",
    "MaterializedRepInstance",
    "KERepInstance",
    "MaintainerReport",
    "ParallelExecutor",
    "QueryPlan",
    "RecognitionResult",
    "SchemePartition",
    "SplitWitness",
    "StateIndex",
    "algebraic_insert",
    "ctm_insert",
    "describe_violations",
    "extend_tuple",
    "find_independence_counterexample",
    "find_reducible_partition_bruteforce",
    "find_split_witness",
    "induced_scheme",
    "is_ctm",
    "is_independence_reducible",
    "is_independent",
    "is_key_equivalent",
    "is_key_split",
    "is_split_free",
    "key_equivalent_chase",
    "partition_scheme",
    "key_equivalent_partition",
    "key_equivalent_representative_instance",
    "recognize_independence_reducible",
    "require_key_equivalent",
    "satisfies_uniqueness_condition",
    "scheme_closure",
    "scheme_fingerprint",
    "split_blocks",
    "split_keys",
    "total_projection_expression",
    "total_projection_key_equivalent",
    "total_projection_plan",
    "total_projection_reducible",
    "uniqueness_violations",
]
