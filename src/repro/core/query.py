"""Bounded query answering on independence-reducible schemes
(paper, Section 4.1, Theorem 4.1; Example 12).

The X-total projection of the representative instance is computed by a
*predetermined* expression: over the induced scheme ``D``, it is a union
of projections of sequential extension joins covering ``X`` (Sagiv's
evaluation for independent BCNF schemes); each ``Dj``'s contribution is
the ``Yj``-total projection of its block, where
``Yj = Dj ∩ (other Dj's in the join ∪ X)`` — and block total
projections are themselves unions of lossless-subset joins over base
relations (Corollary 3.1(b)).  Fully expanded, the plan is a relational
expression over the stored relations whose shape depends only on the
scheme: that is boundedness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.algebra.expressions import (
    Expression,
    Project,
    evaluate_natural_join,
    join_all,
    union_all_exprs,
)
from repro.core.key_equivalent import (
    key_equivalent_chase,
    total_projection_expression,
)
from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.foundations.attrs import (
    AttrsLike,
    attrs,
    fmt_attrs,
    sorted_attrs,
    union_all,
)
from repro.foundations.errors import (
    InconsistentStateError,
    NotApplicableError,
    SchemaError,
)
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.lossless import extension_join_subsets_covering
from repro.state.database_state import DatabaseState
from repro.state.relation import Relation


@dataclass(frozen=True)
class QueryPlan:
    """A predetermined total-projection plan for ``X`` on an
    independence-reducible scheme.

    ``expression`` is the fully expanded relational expression over the
    base relations; ``branches`` lists, per extension-join subset of the
    induced scheme, the induced relations joined and their ``Yj`` sets.
    The plan depends only on the scheme — evaluating it on any
    consistent state yields exactly ``[X]``.
    """

    target: frozenset[str]
    expression: Expression
    branches: tuple[tuple[tuple[str, frozenset[str]], ...], ...]

    def __str__(self) -> str:
        return f"[{fmt_attrs(self.target)}] = {self.expression}"


def _block_substate(
    state: DatabaseState, block: DatabaseScheme
) -> DatabaseState:
    """The substate of ``state`` on one partition block."""
    return DatabaseState(
        block, {name: list(state[name]) for name in block.names}
    )


def total_projection_plan(
    scheme: DatabaseScheme,
    attributes: AttrsLike,
    recognition: Optional[RecognitionResult] = None,
) -> QueryPlan:
    """Build the Theorem 4.1 expression for ``[X]``.

    Raises :class:`NotApplicableError` when the scheme is not
    independence-reducible, :class:`SchemaError` when ``X`` is not
    coverable by an extension join over ``D``.
    """
    target = attrs(attributes)
    if not target <= scheme.universe:
        raise SchemaError(
            f"{fmt_attrs(target)} is not contained in the universe"
        )
    if recognition is None:
        recognition = recognize_independence_reducible(scheme)
    if not recognition.accepted:
        raise NotApplicableError(
            "Theorem 4.1 applies to independence-reducible schemes only: "
            f"{recognition.rejection_reason}"
        )
    induced = recognition.induced
    blocks = {
        member.name: block
        for member, block in zip(induced, recognition.partition)
    }
    subsets = extension_join_subsets_covering(induced, target)
    if not subsets:
        raise SchemaError(
            f"no extension join over {induced} covers {fmt_attrs(target)}"
        )
    branch_expressions: list[Expression] = []
    branch_meta: list[tuple[tuple[str, frozenset[str]], ...]] = []
    for subset in subsets:
        meta: list[tuple[str, frozenset[str]]] = []
        operands: list[Expression] = []
        for member in subset:
            others = union_all(
                other.attributes for other in subset if other is not member
            )
            y = member.attributes & (others | target)
            # [Yj] over the block: Corollary 3.1(b) expansion.
            operands.append(
                total_projection_expression(blocks[member.name], y)
            )
            meta.append((member.name, y))
        branch_expressions.append(Project(join_all(operands), target))
        branch_meta.append(tuple(meta))
    return QueryPlan(
        target=target,
        expression=union_all_exprs(branch_expressions),
        branches=tuple(branch_meta),
    )


def total_projection_reducible(
    state: DatabaseState,
    attributes: AttrsLike,
    recognition: Optional[RecognitionResult] = None,
    *,
    method: str = "blocks",
) -> set[tuple[Hashable, ...]]:
    """``[X]`` on an independence-reducible scheme without chasing the
    whole state.

    ``method="expression"`` evaluates the fully expanded Theorem 4.1
    plan directly on the stored relations.  ``method="blocks"``
    (default) materializes each block's representative instance with
    Algorithm 1 and joins the blocks' ``Yj``-total projections —
    typically faster and the shape Section 4.1's proof actually
    manipulates.  Both agree with the full-chase baseline; tests verify
    all three.
    """
    target = attrs(attributes)
    scheme = state.scheme
    if recognition is None:
        recognition = recognize_independence_reducible(scheme)
    if not recognition.accepted:
        raise NotApplicableError(
            "Theorem 4.1 applies to independence-reducible schemes only: "
            f"{recognition.rejection_reason}"
        )
    if method == "expression":
        plan = total_projection_plan(scheme, target, recognition)
        relation = plan.expression.evaluate(state)
        columns = relation.columns
        positions = [columns.index(a) for a in sorted_attrs(target)]
        return {
            tuple(row[i] for i in positions) for row in relation.row_vectors
        }
    if method != "blocks":
        raise ValueError(f"unknown method: {method!r}")

    induced = recognition.induced
    blocks = {
        member.name: block
        for member, block in zip(induced, recognition.partition)
    }
    # Materialize each block's representative instance once.
    block_instances = {}
    for name, block in blocks.items():
        instance = key_equivalent_chase(
            _block_substate(state, block), check_scheme=False
        )
        if instance is None:
            raise InconsistentStateError(
                f"block {name} of the state is inconsistent"
            )
        block_instances[name] = instance

    subsets = extension_join_subsets_covering(induced, target)
    ordered_target = sorted_attrs(target)
    result: set[tuple[Hashable, ...]] = set()
    for subset in subsets:
        # One relation of Yj-total value vectors per member, projected
        # out of the block's representative instance (deduplication is
        # free: the rows land in a set).
        operands: list[Relation] = []
        annihilated = False
        identity = True
        for member in subset:
            others = union_all(
                other.attributes for other in subset if other is not member
            )
            y = member.attributes & (others | target)
            ordered_y = tuple(sorted_attrs(y))
            vectors = {
                tuple(row[a] for a in ordered_y)
                for row in block_instances[member.name].classes
                if all(a in row for a in ordered_y)
            }
            if not vectors:
                annihilated = True
                break
            if not ordered_y:
                # Nullary contribution: one empty tuple — the join
                # identity; an empty classes list annihilated above.
                continue
            identity = False
            operands.append(Relation.from_vectors(y, ordered_y, vectors))
        if annihilated:
            continue
        if identity:
            # Every member contributed the nullary identity: the branch
            # yields exactly the empty target tuple (target ⊆ ∪Yj = ∅).
            result.add(())
            continue
        # The optimizer pipeline does the rest: semi-join reduction,
        # greedy ordering, and pushdown of everything but the target and
        # join attributes.
        joined = evaluate_natural_join(operands, needed=target)
        columns = joined.columns
        positions = [columns.index(a) for a in ordered_target]
        result.update(
            tuple(row[i] for i in positions) for row in joined.row_vectors
        )
    return result
