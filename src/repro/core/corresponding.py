"""The corresponding state on the induced scheme (paper, Section 4.1).

Given a consistent state ``r`` on an independence-reducible scheme and
its partition ``T``, the paper constructs the *corresponding state*
``d`` on ``D = {∪Tp}``: each block's substate is padded to the block
union and chased with the block's key dependencies — the resulting
"relation" ``dj`` may contain nulls (here: partial tuples).  Lemma 4.2
shows ``T_r`` chases to a tableau equivalent to ``T_d``, which is what
lets the independent scheme ``D`` answer queries for ``R``.

This module materializes ``d`` explicitly (the query evaluator uses the
same construction inline) and exposes the Lemma 4.2 equivalence check
used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.key_equivalent import KERepInstance, key_equivalent_chase
from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.foundations.errors import InconsistentStateError, NotApplicableError
from repro.state.database_state import DatabaseState
from repro.tableau.state_tableau import state_tableau
from repro.tableau.tableau import Tableau


@dataclass(frozen=True)
class CorrespondingState:
    """The state ``d`` on the induced scheme: one chased block instance
    per induced relation (partial tuples stand in for the paper's
    nulls)."""

    recognition: RecognitionResult
    blocks: dict[str, KERepInstance]

    def tableau(self) -> Tableau:
        """``T_d``: one row per block-instance tuple, padded with fresh
        nondistinguished variables to the universe."""
        universe = frozenset().union(
            *(member.attributes for member in self.recognition.induced)
        )
        # Each block-instance class is a partial tuple on its induced
        # relation; emit it over exactly its constant attributes (its
        # missing attributes become fresh nondistinguished variables —
        # the paper's nulls).
        rows = []
        for member in self.recognition.induced:
            for row in self.blocks[member.name].classes:
                present = frozenset(row)
                rows.append((member.name, present, [dict(row)]))
        return state_tableau(rows, universe=universe)

    def total_projection(self, attributes) -> set[tuple[Hashable, ...]]:
        """Union of the block instances' total projections — only
        meaningful per block; cross-block queries go through
        :func:`repro.core.query.total_projection_reducible`."""
        out: set[tuple[Hashable, ...]] = set()
        for instance in self.blocks.values():
            out |= instance.total_projection(attributes)
        return out


def corresponding_state(
    state: DatabaseState,
    recognition: Optional[RecognitionResult] = None,
) -> CorrespondingState:
    """Construct the paper's corresponding state ``d`` from ``r``.

    Raises :class:`NotApplicableError` outside the reducible class and
    :class:`InconsistentStateError` when a block substate has no weak
    instance.
    """
    if recognition is None:
        recognition = recognize_independence_reducible(state.scheme)
    if not recognition.accepted:
        raise NotApplicableError(
            "corresponding states exist for independence-reducible "
            "schemes only"
        )
    blocks: dict[str, KERepInstance] = {}
    for member, block in zip(recognition.induced, recognition.partition):
        substate = DatabaseState(
            block, {name: list(state[name]) for name in block.names}
        )
        instance = key_equivalent_chase(substate, check_scheme=False)
        if instance is None:
            raise InconsistentStateError(
                f"block {member.name} of the state is inconsistent"
            )
        blocks[member.name] = instance
    return CorrespondingState(recognition=recognition, blocks=blocks)
