"""A weak-instance engine: the library's batteries-included façade.

:class:`WeakInstanceEngine` wraps a database scheme with everything a
downstream application needs:

* cached recognition (Algorithm 6) and per-relation maintenance
  strategies;
* cached total-projection plans per target attribute set (the paper's
  predetermined expressions), with ``explain`` output;
* insert / delete / batch-update against immutable states —
  deletions are always consistency-preserving in the weak-instance
  model (the old weak instance still witnesses the smaller state), so
  only insertions need validation;
* query evaluation routed to the cheapest correct method for the
  scheme's class.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import count
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.compile import KernelSpace
from repro.core.ctm import BlockOutcome, InsertMaintainer
from repro.core.parallel import BACKENDS, ParallelExecutor
from repro.core.partition import SchemePartition, partition_scheme
from repro.core.query import (
    QueryPlan,
    total_projection_plan,
    total_projection_reducible,
)
from repro.core.readcache import ReadCache
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, sorted_attrs
from repro.foundations.cache import MISSING, CacheInfo, LRUCache
from repro.foundations.errors import (
    CompileError,
    InconsistentStateError,
    SchemaError,
    StateError,
)
from repro.io import scheme_from_dict, scheme_to_dict
from repro.obs.spans import current_tracer, span
from repro.schema.database_scheme import DatabaseScheme
from repro.state.consistency import (
    ChaseResult,
    MaintenanceOutcome,
    chase_state,
)
from repro.state.database_state import DatabaseState
from repro.tableau.chase import chase_relations
from repro.tableau.symbols import KIND_NDV
from repro.tableau.tableau import Row, Tableau

#: One batch operation: ("insert" | "delete", relation name, tuple).
Update = tuple[str, str, Mapping[str, Hashable]]


@dataclass(frozen=True)
class BatchOutcome:
    """Result of a batch of updates: the final state when every insert
    validated, or the index and outcome of the first rejection."""

    state: Optional[DatabaseState]
    applied: int
    failed_index: Optional[int] = None
    failure: Optional[MaintenanceOutcome] = None

    def __bool__(self) -> bool:
        return self.state is not None

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready rendering: whether the batch committed, how many
        updates were applied before the verdict, and — on rejection —
        the failing index with the full
        :meth:`~repro.state.consistency.MaintenanceOutcome.to_dict`
        diagnostics.  Used by the CLI and the WAL's ``reject`` records."""
        return {
            "committed": self.state is not None,
            "applied": self.applied,
            "failed_index": self.failed_index,
            "failure": None if self.failure is None else self.failure.to_dict(),
        }


class WeakInstanceEngine:
    """Scheme-bound query/update engine with plan and chase caching.

    The memo layers are bounded LRU caches (see
    :class:`repro.foundations.cache.LRUCache`): ``plan_cache_size``
    bounds the predetermined-plan cache per target attribute set *and*
    the compiled-kernel program cache (keyed by
    ``(scheme fingerprint, plan fingerprint)``), and
    ``chase_cache_size`` bounds the representative-instance cache per
    state.  Chase results are keyed by state *identity* — a
    :class:`DatabaseState` is immutable, so the chase of one particular
    object never changes; the cache entry keeps a strong reference to
    the state so the ``id`` cannot be recycled while the entry lives.

    ``compiled=True`` (the default) routes reducible queries and the
    Algorithm-2 insert validations through the columnar kernels of
    :mod:`repro.compile`; ``compiled=False`` (the CLI's
    ``--no-compile``) keeps every evaluation on the interpreted
    expression walk.

    ``read_cache=True`` (the default) keeps a block-versioned
    query-result cache in front of both query routes (see
    :mod:`repro.core.readcache`): a repeated ``[X]`` against a state
    whose touched blocks are unchanged is a dict probe, and a write
    only stops queries overlapping the written block from hitting.
    ``read_cache_size`` bounds the number of cached answers.
    """

    def __init__(
        self,
        scheme: DatabaseScheme,
        plan_cache_size: int = 256,
        chase_cache_size: int = 64,
        workers: int = 1,
        parallel_backend: str = "thread",
        compiled: bool = True,
        read_cache: bool = True,
        read_cache_size: int = 1024,
    ) -> None:
        if parallel_backend not in BACKENDS:
            raise StateError(
                f"unknown parallel backend {parallel_backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        self.scheme = scheme
        self.partition: SchemePartition = partition_scheme(scheme)
        self._compiled: LRUCache = LRUCache(plan_cache_size)
        self.kernels: Optional[KernelSpace] = (
            KernelSpace(programs=self._compiled) if compiled else None
        )
        self.maintainer = InsertMaintainer(
            scheme,
            partition=self.partition,
            kernels=self.kernels,
            compiled=compiled,
        )
        self.recognition = self.maintainer.recognition
        self.workers = max(1, int(workers))
        self.parallel_backend = parallel_backend
        self._executor_lock = threading.Lock()
        self._executor: Optional[ParallelExecutor] = None  # guarded-by: _executor_lock
        self._plans: LRUCache = LRUCache(plan_cache_size)
        self._chase: LRUCache = LRUCache(chase_cache_size)
        # Representative-instance fragments memoized per (block,
        # relation identities): an insert into one block leaves every
        # other block's Relation objects — hence its cached chase —
        # untouched, so only the written block re-chases.
        self._block_chase: LRUCache = LRUCache(
            max(chase_cache_size, 4 * max(1, len(self.partition.blocks)))
        )
        self.read_cache: Optional[ReadCache] = (
            ReadCache(self.partition, maxsize=read_cache_size)
            if read_cache
            else None
        )

    @property
    def executor(self) -> Optional[ParallelExecutor]:
        """The block-task executor — ``None`` at ``workers=1`` (the
        default), where every path stays strictly single-threaded."""
        if self.workers <= 1:
            return None
        with self._executor_lock:
            if self._executor is None:
                self._executor = ParallelExecutor(
                    self.workers, backend=self.parallel_backend
                )
            return self._executor

    def close(self) -> None:
        """Shut down the worker pool, if one was ever started."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    # -- classification -------------------------------------------------------
    @property
    def reducible(self) -> bool:
        return self.recognition.accepted

    def strategy_report(self) -> str:
        return str(self.maintainer.report())

    # -- states ----------------------------------------------------------------
    def empty_state(self) -> DatabaseState:
        return DatabaseState(self.scheme)

    def load(
        self, relations: Mapping[str, Iterable[Mapping[str, Hashable]]]
    ) -> DatabaseState:
        """Bulk-load a state and verify it is consistent.

        The chase this runs is memoized, so a ``query`` on the loaded
        state reuses the representative instance computed here."""
        state = DatabaseState(self.scheme, relations)
        self.representative(state)  # raises when inconsistent
        return state

    def representative(self, state: DatabaseState) -> Tableau:
        """The representative instance ``CHASE_F(T_r)``, memoized per
        state object.

        Raises :class:`InconsistentStateError` when the state has no
        weak instance (the rejection is memoized too)."""
        key = id(state)
        # Sentinel lookup: the stored entry is a tuple, never None, but
        # the sentinel keeps presence and value strictly separate (see
        # repro.foundations.cache.MISSING).
        entry = self._chase.get(key, MISSING)
        if entry is MISSING or entry[0] is not state:
            if self.partition.parallelizable:
                entry = (state, self._assembled_chase(state))
            else:
                entry = (state, chase_state(state))
            self._chase.put(key, entry)
        result = entry[1]
        if not result.consistent:
            raise InconsistentStateError("state admits no weak instance")
        return result.tableau

    def _block_chase_result(
        self, state: DatabaseState, block_index: int
    ) -> ChaseResult:
        """The chase of one block's substate, memoized per relation
        identities — updates to other blocks reuse this entry."""
        names = self.partition.block_names[block_index]
        relations = tuple(state[name] for name in names)
        key = (block_index,) + tuple(id(relation) for relation in relations)
        entry = self._block_chase.get(key, MISSING)
        if entry is not MISSING and all(
            cached is live for cached, live in zip(entry[0], relations)
        ):
            return entry[1]
        block = self.partition.blocks[block_index]
        result = chase_relations(
            block.universe,
            (
                (name, relation.columns, relation.row_vectors)
                for name, relation in zip(names, relations)
            ),
            block.fds,
        )
        self._block_chase.put(key, (relations, result))
        return result

    def _assembled_chase(self, state: DatabaseState) -> ChaseResult:
        """``CHASE_F(T_r)`` assembled from per-block chases.

        Sound because an accepted partition admits no cross-block rule
        firing: a key of block ``P`` embedded in block ``Q``'s
        attributes would violate the uniqueness condition Algorithm 6
        checks, so chase rules only ever equate symbols within one
        block's rows.  Block-local ndvs are renumbered during assembly
        to keep them distinct across blocks; the padding columns outside
        a block's universe get fresh ndvs, exactly as the global state
        tableau would."""
        results = [
            self._block_chase_result(state, index)
            for index in range(len(self.partition.blocks))
        ]
        steps = sum(result.steps for result in results)
        passes = max((result.passes for result in results), default=1)
        universe = self.scheme.universe
        if not all(result.consistent for result in results):
            return ChaseResult(
                Tableau(universe),
                consistent=False,
                steps=steps,
                passes=passes,
            )
        fresh = count()
        rows: list[Row] = []
        for block, result in zip(self.partition.blocks, results):
            remap: dict = {}
            padding = sorted_attrs(universe - block.universe)
            for row in result.tableau.rows:
                cells: dict = {}
                for attribute, symbol in row.cells.items():
                    if symbol[0] == KIND_NDV:
                        renamed = remap.get(symbol)
                        if renamed is None:
                            renamed = remap[symbol] = (KIND_NDV, next(fresh))
                        cells[attribute] = renamed
                    else:
                        cells[attribute] = symbol
                for attribute in padding:
                    cells[attribute] = (KIND_NDV, next(fresh))
                rows.append(Row(cells, tag=row.tag))
        return ChaseResult(
            Tableau(universe, rows),
            consistent=True,
            steps=steps,
            passes=passes,
        )

    def cache_info(self) -> dict[str, CacheInfo]:
        """Hit/miss/eviction accounting for the engine's memo layers."""
        info = {
            "plans": self._plans.info(),
            "compiled": self._compiled.info(),
            "chase": self._chase.info(),
            "block_chase": self._block_chase.info(),
        }
        if self.read_cache is not None:
            info["read"] = self.read_cache.info()
        return info

    def _note_write(self, state: DatabaseState, relation_name: str) -> None:
        """Stamp a fresh read-cache version on the written relation's
        block of a just-produced state."""
        if self.read_cache is None:
            return
        self.read_cache.note_write(
            state, self.partition.block_index_of(relation_name)
        )

    # -- updates -----------------------------------------------------------------
    def insert(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """Validate and apply one insertion (Algorithm 5 / 2 / chase)."""
        with span("engine.insert") as sp:
            outcome = self.maintainer.insert(state, relation_name, values)
            if outcome.consistent and outcome.state is not None:
                self._note_write(outcome.state, relation_name)
            if sp:
                sp.add("tuples_examined", outcome.tuples_examined)
                sp.add("chase_steps", outcome.chase_steps)
                sp.add("accepted", 1 if outcome.consistent else 0)
                sp.add("rejected", 0 if outcome.consistent else 1)
            return outcome

    def delete(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> DatabaseState:
        """Apply a deletion — always consistency-preserving."""
        with span("engine.delete") as sp:
            result = state.delete(relation_name, values)
            self._note_write(result, relation_name)
            if sp:
                sp.add("deleted", 1)
            return result

    def modify(
        self,
        state: DatabaseState,
        relation_name: str,
        old_values: Mapping[str, Hashable],
        new_values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """Replace one tuple: delete ``old_values`` then validate the
        insertion of ``new_values``.  When the new tuple would be
        inconsistent, the rejecting outcome of the insertion is returned
        as-is — ``witness``, ``chase_steps`` and ``tuples_examined`` all
        survive for diagnostics — and the original state is untouched
        (a rejecting outcome always carries ``state=None``)."""
        if old_values not in state[relation_name]:
            raise StateError(
                f"{dict(old_values)} is not stored in {relation_name}"
            )
        without = state.delete(relation_name, old_values)
        return self.insert(without, relation_name, new_values)

    def batch(
        self, state: DatabaseState, updates: Sequence[Update]
    ) -> BatchOutcome:
        """Apply updates atomically: on the first rejected insert the
        original state is kept and the failure reported.

        With ``workers > 1`` on a decomposable scheme the batch is
        routed per block and the blocks run on the executor; blocks are
        share-nothing, so the outcome — including the identity of the
        first failure and its diagnostics — equals the serial result.
        Batches that cannot be routed (an unknown operation or relation)
        take the serial path so errors surface with their original
        ordering semantics."""
        with span("engine.batch") as sp:
            if sp:
                sp.add("updates", len(updates))
            executor = self.executor
            if executor is not None and self.partition.parallelizable:
                routed = self.partition.route_updates(updates)
                if routed is not None:
                    return self._batch_blocks(
                        state, updates, routed, executor
                    )
            return self._batch_serial(state, updates)

    def apply_batch(
        self, state: DatabaseState, updates: Sequence[Update]
    ) -> BatchOutcome:
        """Alias of :meth:`batch` (the historical name)."""
        return self.batch(state, updates)

    def _batch_serial(
        self, state: DatabaseState, updates: Sequence[Update]
    ) -> BatchOutcome:
        current = state
        for index, (operation, relation_name, values) in enumerate(updates):
            if operation == "insert":
                outcome = self.insert(current, relation_name, values)
                if not outcome.consistent:
                    return BatchOutcome(
                        state=None,
                        applied=index,
                        failed_index=index,
                        failure=outcome,
                    )
                assert outcome.state is not None
                current = outcome.state
            elif operation == "delete":
                current = self.delete(current, relation_name, values)
            else:
                raise StateError(f"unknown batch operation {operation!r}")
        return BatchOutcome(state=current, applied=len(updates))

    def _run_block_task(self, task) -> BlockOutcome:
        """Thread-backend block task: runs under the dispatching
        context (the executor copies contextvars), so the block span and
        every nested chase/join span land in the caller's tracer."""
        block_index, substate, operations = task
        with span("engine.block") as sp:
            outcome = self.maintainer.block_batch(
                substate, block_index, operations
            )
            if sp:
                sp.add("ops", outcome.ops)
                sp.add("applied", outcome.applied)
                sp.add("rejected", 0 if outcome.failed_index is None else 1)
        return outcome

    def _encode_block_task(
        self, state: DatabaseState, block_index: int, operations
    ) -> dict:
        """Primitive payload for the process backend: states and
        relations are slotted immutables that refuse pickling, so the
        child rebuilds the block substate from plain dicts."""
        names = self.partition.block_names[block_index]
        return {
            "block_index": block_index,
            "scheme": scheme_to_dict(self.partition.blocks[block_index]),
            "relations": {
                name: [dict(values) for values in state[name]]
                for name in names
            },
            "operations": [
                (global_index, operation, relation_name, dict(values))
                for global_index, operation, relation_name, values in operations
            ],
        }

    def _decode_block_outcome(self, encoded: dict) -> BlockOutcome:
        substate = None
        if encoded["relations"] is not None:
            substate = DatabaseState(
                self.partition.blocks[encoded["block_index"]],
                encoded["relations"],
            )
        return BlockOutcome(
            block_index=encoded["block_index"],
            substate=substate,
            applied=encoded["applied"],
            ops=encoded["ops"],
            failed_index=encoded["failed_index"],
            failure=encoded["failure"],
            error_index=encoded["error_index"],
            error=encoded["error"],
            seconds=encoded["seconds"],
        )

    def _batch_blocks(
        self,
        state: DatabaseState,
        updates: Sequence[Update],
        routed: Mapping[int, list],
        executor: ParallelExecutor,
    ) -> BatchOutcome:
        ordered = sorted(routed.items())
        if executor.backend == "process":
            payloads = [
                self._encode_block_task(state, block_index, operations)
                for block_index, operations in ordered
            ]
            outcomes = [
                self._decode_block_outcome(encoded)
                for encoded in executor.map(_process_block_task, payloads)
            ]
            # A child process cannot share the parent's tracer; fold the
            # measured block timings in from here instead.
            tracer = current_tracer()
            if tracer is not None:
                for outcome in outcomes:
                    tracer.record(
                        "engine.block",
                        outcome.seconds,
                        {"ops": outcome.ops, "applied": outcome.applied},
                    )
        else:
            tasks = [
                (
                    block_index,
                    self.partition.substate(state, block_index),
                    operations,
                )
                for block_index, operations in ordered
            ]
            outcomes = executor.map(self._run_block_task, tasks)

        events = [
            outcome for outcome in outcomes if outcome.event_index is not None
        ]
        if events:
            first = min(events, key=lambda outcome: outcome.event_index)
            if first.error is not None:
                # The serial loop would have raised here: every earlier
                # update (across all blocks) succeeded.
                raise first.error
            assert first.failed_index is not None
            return BatchOutcome(
                state=None,
                applied=first.failed_index,
                failed_index=first.failed_index,
                failure=first.failure,
            )
        merged: dict[str, object] = {}
        for outcome in outcomes:
            assert outcome.substate is not None
            for name in self.partition.block_names[outcome.block_index]:
                merged[name] = outcome.substate[name]
        relations = {
            name: merged.get(name, state[name]) for name in self.scheme.names
        }
        merged_state = DatabaseState(self.scheme, relations)
        if self.read_cache is not None:
            for block_index in routed:
                self.read_cache.note_write(merged_state, block_index)
        return BatchOutcome(state=merged_state, applied=len(updates))

    def streaming(self, state: DatabaseState):
        """Per-block materialized views over ``state`` — the insert-heavy
        companion API (see :class:`repro.core.views.BlockMaterializedViews`).
        Only available for independence-reducible schemes."""
        from repro.core.views import BlockMaterializedViews

        return BlockMaterializedViews(state, self.recognition)

    # -- queries ------------------------------------------------------------------
    def plan(self, attributes: AttrsLike) -> QueryPlan:
        """The cached predetermined plan for ``[X]`` (reducible schemes
        only)."""
        target = attrs(attributes)
        cached = self._plans.get(target, MISSING)
        if cached is MISSING:
            with span("engine.plan") as sp:
                cached = total_projection_plan(
                    self.scheme, target, self.recognition
                )
                if sp:
                    sp.add("branches", len(cached.branches))
            self._plans.put(target, cached)
        return cached

    def explain(self, attributes: AttrsLike) -> str:
        """Human-readable account of how ``[X]`` will be evaluated."""
        target = attrs(attributes)
        if self.reducible:
            return str(self.plan(target))
        return (
            f"[{fmt_attrs(target)}] = π!_{fmt_attrs(target)}(CHASE_F(T_r)) "
            "(scheme outside the independence-reducible class; "
            "no predetermined expression is available)"
        )

    def _query_compiled(
        self, state: DatabaseState, target: frozenset[str]
    ) -> Optional[set[tuple[Hashable, ...]]]:
        """``[X]`` through the compiled kernel program for the cached
        plan, or ``None`` when the target has no predetermined plan (a
        ``SchemaError`` target falls back to the block route, which
        answers uncoverable targets with the empty set) or the plan
        cannot be flattened into kernels."""
        kernels = self.kernels
        assert kernels is not None
        try:
            plan = self.plan(target)
            program = kernels.expression_program(
                self.partition.fingerprint, plan.expression
            )
        except (SchemaError, CompileError):
            return None
        with span("engine.query.compiled") as sp:
            rows = program.run_decoded(kernels.store, state)
            if sp:
                sp.add("rows_out", len(rows))
        return rows

    def _query_cached(
        self, key: tuple
    ) -> Optional[set[tuple[Hashable, ...]]]:
        """Probe the block-versioned result cache for a prior answer
        under ``key``, or ``None`` on a miss (the caller evaluates and
        fills the entry)."""
        assert self.read_cache is not None
        with span("engine.query.cached") as sp:
            rows = self.read_cache.get(key)
            if sp:
                sp.add("hit", 0 if rows is None else 1)
                if rows is not None:
                    sp.add("rows_out", len(rows))
        return rows

    def query(
        self, state: DatabaseState, attributes: AttrsLike
    ) -> set[tuple[Hashable, ...]]:
        """``[X]`` evaluated by the cheapest correct route: the
        block-versioned result cache first, then the compiled kernels,
        then the interpreted expression walk (or the full chase outside
        the reducible class)."""
        target = attrs(attributes)
        with span("engine.query") as sp:
            rows = None
            key = None
            if self.read_cache is not None:
                key = self.read_cache.key(state, target, self.plan)
                rows = self._query_cached(key)
            if rows is None:
                if self.reducible:
                    if self.kernels is not None:
                        rows = self._query_compiled(state, target)
                    if rows is None:
                        rows = total_projection_reducible(
                            state, target, self.recognition
                        )
                else:
                    rows = self.representative(state).total_projection(target)
                if key is not None:
                    self.read_cache.put(key, rows)
            if sp:
                sp.add("rows_out", len(rows))
            return rows


def _process_block_task(payload: dict) -> dict:
    """Process-backend block task (top level: workers import it by
    name).  Rebuilds the block as a standalone scheme — a single
    key-equivalent block partitions to itself, so maintenance strategy
    selection matches the parent's — applies the slice, and returns a
    picklable rendering of the outcome."""
    block = scheme_from_dict(payload["scheme"])
    maintainer = InsertMaintainer(block)
    substate = DatabaseState(block, payload["relations"])
    outcome = maintainer.block_batch(substate, 0, payload["operations"])
    relations = None
    if outcome.substate is not None:
        relations = {
            name: [dict(values) for values in relation]
            for name, relation in outcome.substate
        }
    return {
        "block_index": payload["block_index"],
        "relations": relations,
        "applied": outcome.applied,
        "ops": outcome.ops,
        "failed_index": outcome.failed_index,
        "failure": outcome.failure,
        "error_index": outcome.error_index,
        "error": outcome.error,
        "seconds": outcome.seconds,
    }
