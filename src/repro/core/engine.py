"""A weak-instance engine: the library's batteries-included façade.

:class:`WeakInstanceEngine` wraps a database scheme with everything a
downstream application needs:

* cached recognition (Algorithm 6) and per-relation maintenance
  strategies;
* cached total-projection plans per target attribute set (the paper's
  predetermined expressions), with ``explain`` output;
* insert / delete / batch-update against immutable states —
  deletions are always consistency-preserving in the weak-instance
  model (the old weak instance still witnesses the smaller state), so
  only insertions need validation;
* query evaluation routed to the cheapest correct method for the
  scheme's class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from repro.core.ctm import InsertMaintainer
from repro.core.query import (
    QueryPlan,
    total_projection_plan,
    total_projection_reducible,
)
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs
from repro.foundations.cache import MISSING, CacheInfo, LRUCache
from repro.foundations.errors import InconsistentStateError, StateError
from repro.obs.spans import span
from repro.schema.database_scheme import DatabaseScheme
from repro.state.consistency import MaintenanceOutcome, chase_state
from repro.state.database_state import DatabaseState
from repro.tableau.tableau import Tableau

#: One batch operation: ("insert" | "delete", relation name, tuple).
Update = tuple[str, str, Mapping[str, Hashable]]


@dataclass(frozen=True)
class BatchOutcome:
    """Result of a batch of updates: the final state when every insert
    validated, or the index and outcome of the first rejection."""

    state: Optional[DatabaseState]
    applied: int
    failed_index: Optional[int] = None
    failure: Optional[MaintenanceOutcome] = None

    def __bool__(self) -> bool:
        return self.state is not None

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready rendering: whether the batch committed, how many
        updates were applied before the verdict, and — on rejection —
        the failing index with the full
        :meth:`~repro.state.consistency.MaintenanceOutcome.to_dict`
        diagnostics.  Used by the CLI and the WAL's ``reject`` records."""
        return {
            "committed": self.state is not None,
            "applied": self.applied,
            "failed_index": self.failed_index,
            "failure": None if self.failure is None else self.failure.to_dict(),
        }


class WeakInstanceEngine:
    """Scheme-bound query/update engine with plan and chase caching.

    Both memo layers are bounded LRU caches (see
    :class:`repro.foundations.cache.LRUCache`): ``plan_cache_size``
    bounds the predetermined-plan cache per target attribute set, and
    ``chase_cache_size`` bounds the representative-instance cache per
    state.  Chase results are keyed by state *identity* — a
    :class:`DatabaseState` is immutable, so the chase of one particular
    object never changes; the cache entry keeps a strong reference to
    the state so the ``id`` cannot be recycled while the entry lives.
    """

    def __init__(
        self,
        scheme: DatabaseScheme,
        plan_cache_size: int = 256,
        chase_cache_size: int = 64,
    ) -> None:
        self.scheme = scheme
        self.maintainer = InsertMaintainer(scheme)
        self.recognition = self.maintainer.recognition
        self._plans: LRUCache = LRUCache(plan_cache_size)
        self._chase: LRUCache = LRUCache(chase_cache_size)

    # -- classification -------------------------------------------------------
    @property
    def reducible(self) -> bool:
        return self.recognition.accepted

    def strategy_report(self) -> str:
        return str(self.maintainer.report())

    # -- states ----------------------------------------------------------------
    def empty_state(self) -> DatabaseState:
        return DatabaseState(self.scheme)

    def load(
        self, relations: Mapping[str, Iterable[Mapping[str, Hashable]]]
    ) -> DatabaseState:
        """Bulk-load a state and verify it is consistent.

        The chase this runs is memoized, so a ``query`` on the loaded
        state reuses the representative instance computed here."""
        state = DatabaseState(self.scheme, relations)
        self.representative(state)  # raises when inconsistent
        return state

    def representative(self, state: DatabaseState) -> Tableau:
        """The representative instance ``CHASE_F(T_r)``, memoized per
        state object.

        Raises :class:`InconsistentStateError` when the state has no
        weak instance (the rejection is memoized too)."""
        key = id(state)
        # Sentinel lookup: the stored entry is a tuple, never None, but
        # the sentinel keeps presence and value strictly separate (see
        # repro.foundations.cache.MISSING).
        entry = self._chase.get(key, MISSING)
        if entry is MISSING or entry[0] is not state:
            entry = (state, chase_state(state))
            self._chase.put(key, entry)
        result = entry[1]
        if not result.consistent:
            raise InconsistentStateError("state admits no weak instance")
        return result.tableau

    def cache_info(self) -> dict[str, CacheInfo]:
        """Hit/miss/eviction accounting for the engine's memo layers."""
        return {"plans": self._plans.info(), "chase": self._chase.info()}

    # -- updates -----------------------------------------------------------------
    def insert(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """Validate and apply one insertion (Algorithm 5 / 2 / chase)."""
        with span("engine.insert") as sp:
            outcome = self.maintainer.insert(state, relation_name, values)
            if sp:
                sp.add("tuples_examined", outcome.tuples_examined)
                sp.add("chase_steps", outcome.chase_steps)
                sp.add("accepted", 1 if outcome.consistent else 0)
                sp.add("rejected", 0 if outcome.consistent else 1)
            return outcome

    def delete(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> DatabaseState:
        """Apply a deletion — always consistency-preserving."""
        return state.delete(relation_name, values)

    def modify(
        self,
        state: DatabaseState,
        relation_name: str,
        old_values: Mapping[str, Hashable],
        new_values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """Replace one tuple: delete ``old_values`` then validate the
        insertion of ``new_values``.  When the new tuple would be
        inconsistent, the rejecting outcome of the insertion is returned
        as-is — ``witness``, ``chase_steps`` and ``tuples_examined`` all
        survive for diagnostics — and the original state is untouched
        (a rejecting outcome always carries ``state=None``)."""
        if old_values not in state[relation_name]:
            raise StateError(
                f"{dict(old_values)} is not stored in {relation_name}"
            )
        without = state.delete(relation_name, old_values)
        return self.insert(without, relation_name, new_values)

    def apply_batch(
        self, state: DatabaseState, updates: Sequence[Update]
    ) -> BatchOutcome:
        """Apply updates atomically: on the first rejected insert the
        original state is kept and the failure reported."""
        current = state
        for index, (operation, relation_name, values) in enumerate(updates):
            if operation == "insert":
                outcome = self.insert(current, relation_name, values)
                if not outcome.consistent:
                    return BatchOutcome(
                        state=None,
                        applied=index,
                        failed_index=index,
                        failure=outcome,
                    )
                assert outcome.state is not None
                current = outcome.state
            elif operation == "delete":
                current = self.delete(current, relation_name, values)
            else:
                raise StateError(f"unknown batch operation {operation!r}")
        return BatchOutcome(state=current, applied=len(updates))

    def streaming(self, state: DatabaseState):
        """Per-block materialized views over ``state`` — the insert-heavy
        companion API (see :class:`repro.core.views.BlockMaterializedViews`).
        Only available for independence-reducible schemes."""
        from repro.core.views import BlockMaterializedViews

        return BlockMaterializedViews(state, self.recognition)

    # -- queries ------------------------------------------------------------------
    def plan(self, attributes: AttrsLike) -> QueryPlan:
        """The cached predetermined plan for ``[X]`` (reducible schemes
        only)."""
        target = attrs(attributes)
        cached = self._plans.get(target, MISSING)
        if cached is MISSING:
            with span("engine.plan") as sp:
                cached = total_projection_plan(
                    self.scheme, target, self.recognition
                )
                if sp:
                    sp.add("branches", len(cached.branches))
            self._plans.put(target, cached)
        return cached

    def explain(self, attributes: AttrsLike) -> str:
        """Human-readable account of how ``[X]`` will be evaluated."""
        target = attrs(attributes)
        if self.reducible:
            return str(self.plan(target))
        return (
            f"[{fmt_attrs(target)}] = π!_{fmt_attrs(target)}(CHASE_F(T_r)) "
            "(scheme outside the independence-reducible class; "
            "no predetermined expression is available)"
        )

    def query(
        self, state: DatabaseState, attributes: AttrsLike
    ) -> set[tuple[Hashable, ...]]:
        """``[X]`` evaluated by the cheapest correct route."""
        target = attrs(attributes)
        with span("engine.query") as sp:
            if self.reducible:
                rows = total_projection_reducible(
                    state, target, self.recognition
                )
            else:
                rows = self.representative(state).total_projection(target)
            if sp:
                sp.add("rows_out", len(rows))
            return rows
