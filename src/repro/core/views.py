"""Per-block materialized views for independence-reducible schemes.

The streaming counterpart of :class:`~repro.core.engine.WeakInstanceEngine`:
one :class:`~repro.core.materialized.MaterializedRepInstance` per
partition block, kept current under validated insertions.  By the
paper's Section 4.2 argument, block-local consistency lifts to global
consistency, so the views jointly decide insertions AND answer
single-block total projections with zero re-chasing; cross-block
queries are delegated to the Theorem 4.1 evaluator over the stored
state.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from repro.core.materialized import MaterializedRepInstance
from repro.core.query import total_projection_reducible
from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.foundations.attrs import AttrsLike, attrs
from repro.foundations.errors import NotApplicableError
from repro.state.database_state import DatabaseState


class BlockMaterializedViews:
    """Materialized representative instances, one per partition block.

    Construction validates the initial state; ``insert`` validates
    block-locally and folds accepted tuples into the owning block's
    view; ``query`` answers from a single block's view when the target
    fits inside one block and falls back to the Theorem 4.1 evaluation
    otherwise (which needs the current stored state, tracked here too).
    """

    def __init__(
        self,
        state: DatabaseState,
        recognition: Optional[RecognitionResult] = None,
    ) -> None:
        scheme = state.scheme
        if recognition is None:
            recognition = recognize_independence_reducible(scheme)
        if not recognition.accepted:
            raise NotApplicableError(
                "block views exist for independence-reducible schemes only"
            )
        self.scheme = scheme
        self.recognition = recognition
        self.state = state
        self._views: dict[str, MaterializedRepInstance] = {}
        self._block_of: dict[str, str] = {}
        for induced_member, block in zip(
            recognition.induced, recognition.partition
        ):
            substate = DatabaseState(
                block, {name: list(state[name]) for name in block.names}
            )
            self._views[induced_member.name] = MaterializedRepInstance(
                substate, check_scheme=False
            )
            for member in block.relations:
                self._block_of[member.name] = induced_member.name

    # -- updates -----------------------------------------------------------------
    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> bool:
        """Validate and apply one insertion.  True when accepted (the
        view and the tracked state advance), False when rejected
        (nothing changes)."""
        block_name = self._block_of.get(relation_name)
        if block_name is None:
            raise NotApplicableError(f"unknown relation {relation_name!r}")
        merged = self._views[block_name].insert(relation_name, values)
        if merged is None:
            return False
        self.state = self.state.insert(relation_name, values)
        return True

    # -- queries -------------------------------------------------------------------
    def query(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        """``[X]`` on the current state.

        Served directly from one block's view when ``X`` fits inside a
        single induced relation; otherwise evaluated with the bounded
        Theorem 4.1 plan over the tracked state.
        """
        target = attrs(attributes)
        for induced_member in self.recognition.induced:
            if target <= induced_member.attributes:
                return self._views[induced_member.name].total_projection(
                    target
                )
        return total_projection_reducible(
            self.state, target, self.recognition
        )

    def view(self, induced_name: str) -> MaterializedRepInstance:
        """The materialized instance of one induced relation."""
        return self._views[induced_name]

    def sizes(self) -> dict[str, int]:
        """Class counts per block view."""
        return {name: len(view) for name, view in self._views.items()}
