"""Key-equivalent database schemes (paper, Section 3).

``S`` is *key-equivalent* with respect to its embedded key dependencies
``F`` when every member's attribute closure is the whole universe:
``Si⁺ = ∪S`` for all ``Si``.  Key-equivalent schemes are BCNF
(Lemma 3.1), bounded (Corollary 3.1) and algebraic-maintainable
(Theorem 3.2).

This module provides the recognition test, Algorithm 1 (the specialized
chase that computes the representative instance by promoting whole
tuples), and the Corollary 3.1(b) total-projection expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Sequence

from repro.algebra.expressions import (
    Expression,
    Project,
    RelationRef,
    join_all,
    union_all_exprs,
)
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, sorted_attrs
from repro.foundations.errors import (
    InconsistentStateError,
    NotApplicableError,
    SchemaError,
)
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.lossless import minimal_lossless_subsets_covering
from repro.state.database_state import DatabaseState
from repro.tableau.symbols import NDVFactory, constant
from repro.tableau.tableau import Row, Tableau


def is_key_equivalent(scheme: DatabaseScheme) -> bool:
    """True iff every member's closure (under the scheme's embedded key
    dependencies) is the whole universe."""
    return all(
        scheme.fds.closure(member.attributes) == scheme.universe
        for member in scheme.relations
    )


def require_key_equivalent(scheme: DatabaseScheme) -> None:
    """Raise :class:`NotApplicableError` unless the scheme is
    key-equivalent."""
    if not is_key_equivalent(scheme):
        raise NotApplicableError(
            f"scheme {scheme} is not key-equivalent; this algorithm's "
            "preconditions (Section 3) do not hold"
        )


@dataclass
class KERepInstance:
    """The representative instance of a consistent state on a
    key-equivalent scheme, as produced by Algorithm 1.

    Each entry of ``classes`` is the constant components of one row of
    the chased tableau (every nondistinguished variable is distinct, so
    only the constants matter — Corollary 3.1(a)).  ``merge_steps``
    counts the tuple-promotion steps Algorithm 1 performed.
    """

    universe: frozenset[str]
    classes: list[dict[str, Hashable]]
    merge_steps: int
    _key_index: dict[tuple, dict[str, Hashable]] = field(
        default_factory=dict, repr=False
    )

    def lookup(
        self, key: AttrsLike, values: Sequence[Hashable]
    ) -> Optional[dict[str, Hashable]]:
        """The unique row total on ``key`` with the given key values (in
        sorted-attribute order), or None.  Uniqueness is Lemma 3.2(c).

        Uses the index built by :meth:`register_keys` when available and
        falls back to a linear scan otherwise.
        """
        ordered = tuple(sorted_attrs(attrs(key)))
        wanted = tuple(values)
        if self._key_index:
            return self._key_index.get((ordered, wanted))
        for row in self.classes:
            if all(a in row for a in ordered):
                if tuple(row[a] for a in ordered) == wanted:
                    return row
        return None

    def register_keys(self, keys: Iterable[AttrsLike]) -> None:
        """Pre-index the rows by the given keys (the scheme's key set);
        subsequent lookups are O(1)."""
        index: dict[tuple, dict[str, Hashable]] = {}
        for key in keys:
            ordered = tuple(sorted_attrs(attrs(key)))
            for row in self.classes:
                if all(a in row for a in ordered):
                    signature = (ordered, tuple(row[a] for a in ordered))
                    existing = index.get(signature)
                    if existing is not None and existing is not row:
                        if existing != row:
                            raise InconsistentStateError(
                                "two representative-instance rows share key "
                                f"{fmt_attrs(frozenset(ordered))}"
                            )
                    index[signature] = row
        self._key_index = index

    def total_projection(self, attributes: AttrsLike) -> set[tuple]:
        """``[X]`` read off the representative instance."""
        ordered = sorted_attrs(attrs(attributes))
        return {
            tuple(row[a] for a in ordered)
            for row in self.classes
            if all(a in row for a in ordered)
        }

    def to_tableau(self) -> Tableau:
        """Materialize as a tableau (constants plus fresh distinct
        nondistinguished variables)."""
        factory = NDVFactory()
        tableau = Tableau(self.universe)
        for row in self.classes:
            cells = {
                a: constant(row[a]) if a in row else factory.fresh()
                for a in sorted(self.universe)
            }
            tableau.add_row(Row(cells))
        return tableau


class _ClassMerger:
    """Union-find over tuple classes whose payload is the merged
    constant-component dict; merging conflicting constants signals an
    inconsistent state."""

    def __init__(self, payloads: list[dict[str, Hashable]]) -> None:
        self.payloads = payloads
        self.parent = list(range(len(payloads)))
        self.steps = 0

    def find(self, index: int) -> int:
        root = index
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[index] != root:
            self.parent[index], index = root, self.parent[index]
        return root

    def union(self, left: int, right: int) -> bool:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        big = self.payloads[left_root]
        small = self.payloads[right_root]
        if len(big) < len(small):
            left_root, right_root = right_root, left_root
            big, small = small, big
        for attribute, value in small.items():
            # Membership, not None checks: None is a legal constant.
            if attribute not in big:
                big[attribute] = value
            elif big[attribute] != value:
                raise InconsistentStateError(
                    f"conflicting constants for {attribute}: "
                    f"{big[attribute]!r} vs {value!r}"
                )
        self.parent[right_root] = left_root
        self.steps += 1
        return True


def key_equivalent_chase(
    state: DatabaseState, *, check_scheme: bool = True
) -> Optional[KERepInstance]:
    """Algorithm 1: chase a state on a key-equivalent scheme.

    Returns the representative instance, or None when the state is
    inconsistent (the paper's algorithm assumes consistency; detecting
    the contradiction instead of presuming it makes the routine usable
    as a consistency check as well).

    Step (1) merges any two tuples that agree on a key embedded in the
    scheme but whose constant components differ, promoting constants in
    both directions; step (2) drops duplicate classes.
    """
    scheme = state.scheme
    if check_scheme:
        require_key_equivalent(scheme)
    payloads: list[dict[str, Hashable]] = []
    for name, relation in state:
        for values in relation:
            payloads.append(dict(values))
    merger = _ClassMerger(payloads)
    keys = [tuple(sorted_attrs(key)) for key in scheme.all_keys()]

    try:
        changed = True
        while changed:
            changed = False
            for ordered_key in keys:
                anchors: dict[tuple, int] = {}
                for index in range(len(payloads)):
                    root = merger.find(index)
                    row = payloads[root]
                    if not all(a in row for a in ordered_key):
                        continue
                    signature = tuple(row[a] for a in ordered_key)
                    anchor = anchors.setdefault(signature, root)
                    if anchor != root and merger.union(anchor, root):
                        changed = True
    except InconsistentStateError:
        return None

    distinct: list[dict[str, Hashable]] = []
    seen_roots: set[int] = set()
    seen_rows: set[tuple] = set()
    for index in range(len(payloads)):
        root = merger.find(index)
        if root in seen_roots:
            continue
        seen_roots.add(root)
        row = payloads[root]
        identity = tuple(sorted(row.items()))
        if identity not in seen_rows:
            seen_rows.add(identity)
            distinct.append(row)
    instance = KERepInstance(
        universe=scheme.universe, classes=distinct, merge_steps=merger.steps
    )
    instance.register_keys(scheme.all_keys())
    return instance


def key_equivalent_representative_instance(
    state: DatabaseState,
) -> KERepInstance:
    """Algorithm 1, raising on inconsistent input."""
    instance = key_equivalent_chase(state)
    if instance is None:
        raise InconsistentStateError("state admits no weak instance")
    return instance


def total_projection_expression(
    scheme: DatabaseScheme, attributes: AttrsLike
) -> Expression:
    """The predetermined expression of Corollary 3.1(b): the X-total
    projection equals the union of projections onto ``X`` of the joins
    of (minimal) lossless subsets of the scheme covering ``X``.

    Minimal subsets suffice: a larger lossless join projects to a subset
    of what any of its lossless sub-joins projects to.
    """
    target = attrs(attributes)
    subsets = minimal_lossless_subsets_covering(scheme, target)
    if not subsets:
        raise SchemaError(
            f"no lossless subset of {scheme} covers {fmt_attrs(target)}"
        )
    branches = [
        Project(
            join_all(
                [RelationRef(member.name, member.attributes) for member in subset]
            ),
            target,
        )
        for subset in subsets
    ]
    return union_all_exprs(branches)


def total_projection_key_equivalent(
    state: DatabaseState, attributes: AttrsLike
) -> set[tuple]:
    """Evaluate the Corollary 3.1(b) expression on a state, returning
    value tuples in canonical attribute order."""
    target = attrs(attributes)
    expression = total_projection_expression(state.scheme, target)
    relation = expression.evaluate(state)
    ordered = sorted_attrs(target)
    return {tuple(row[a] for a in ordered) for row in relation}
