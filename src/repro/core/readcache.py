"""Block-scoped query-result caching for the read path.

The paper's boundedness result makes caching a theorem, not a
heuristic: on an independence-reducible scheme every total projection
``[X]`` is a *predetermined* expression over the relations of the
blocks it touches, so the answer is a pure function of ``(X, contents
of the touched blocks)``.  A write confined to one block provably
cannot change the answer of a query whose plan never reads that block
— which means per-block version counters give *exact* invalidation:

* :class:`BlockVersions` assigns a monotonically increasing version to
  each distinct ``(block, relation identities)`` it sees.  States are
  immutable and an update rebuilds only the written block's
  :class:`~repro.state.relation.Relation` objects, so an unchanged
  block keeps its version across writes while the mutated block earns
  a fresh one.
* :class:`ReadCache` keys cached answers by ``(scheme fingerprint,
  target attributes, tuple of touched-block versions)``.  A hit is a
  dict probe; a write "invalidates" nothing explicitly — the version
  tuple of overlapping queries simply stops matching.

Schemes outside the reducible class (and targets without a
predetermined plan) still cache soundly: their touched set degrades to
*every* block, so any write anywhere changes the key.
"""

from __future__ import annotations

import threading
from itertools import count
from typing import Callable, Hashable, Optional

from repro.core.partition import SchemePartition
from repro.core.query import QueryPlan
from repro.foundations.cache import MISSING, CacheInfo, LRUCache
from repro.foundations.errors import SchemaError
from repro.state.database_state import DatabaseState

#: A plan provider: ``target -> QueryPlan`` (the engine's memoized
#: :meth:`~repro.core.engine.WeakInstanceEngine.plan`).  May raise
#: :class:`SchemaError` for targets no predetermined expression covers.
PlanProvider = Callable[[frozenset], QueryPlan]


class BlockVersions:
    """Monotonic per-block version counters over immutable states.

    Versions are assigned lazily per ``(block index, identities of the
    block's relations)`` — the same identity-keyed memo discipline as
    the engine's block-chase cache.  Entries keep strong references to
    the relation objects (so an ``id`` cannot be recycled while its
    entry lives) and every lookup re-verifies identity before trusting
    the key.  Eviction is harmless: a re-seen block merely earns a new,
    larger version, which can only turn would-be hits into misses,
    never a stale hit.
    """

    __slots__ = ("_partition", "_versions", "_counter", "_lock", "_writes")

    def __init__(
        self, partition: SchemePartition, maxsize: Optional[int] = None
    ) -> None:
        self._partition = partition
        if maxsize is None:
            maxsize = 16 * max(1, len(partition.blocks))
        self._versions: LRUCache = LRUCache(maxsize)
        self._counter = count(1)
        self._lock = threading.Lock()
        self._writes = 0  # guarded-by: _lock

    def _relations(self, state: DatabaseState, block_index: int) -> tuple:
        names = self._partition.block_names[block_index]
        return tuple(state[name] for name in names)

    def version(self, state: DatabaseState, block_index: int) -> int:
        """The version of one block of ``state``, assigning a fresh one
        the first time this exact block content (by relation identity)
        is seen."""
        relations = self._relations(state, block_index)
        key = (block_index,) + tuple(id(relation) for relation in relations)
        entry = self._versions.get(key, MISSING)
        if entry is not MISSING and all(
            cached is live for cached, live in zip(entry[0], relations)
        ):
            return entry[1]
        with self._lock:
            version = next(self._counter)
        self._versions.put(key, (relations, version))
        return version

    def bump(self, state: DatabaseState, block_index: int) -> int:
        """Stamp a *fresh* version on one block of a just-written state.

        Correctness never depends on this being called — a new state's
        written block carries new relation identities, so the lazy path
        would version it anyway — but the write paths call it to keep
        the "writes observed" count honest and the first post-write
        query probe cheap."""
        relations = self._relations(state, block_index)
        key = (block_index,) + tuple(id(relation) for relation in relations)
        with self._lock:
            version = next(self._counter)
            self._writes += 1
        self._versions.put(key, (relations, version))
        return version

    @property
    def writes(self) -> int:
        """How many block writes were stamped via :meth:`bump`."""
        with self._lock:
            return self._writes


class ReadCache:
    """The query-result cache: ``(fingerprint, target, versions) ->
    frozenset of rows``.

    ``touched_blocks`` is memoized per target: reducible schemes read
    the plan's relation names and map them to blocks; uncoverable
    targets (``SchemaError``) and non-reducible schemes degrade to all
    blocks, which is sound — their answers may depend on the whole
    state, so any write must change the key.
    """

    __slots__ = ("_partition", "versions", "_results", "_touched", "_lock")

    def __init__(
        self, partition: SchemePartition, maxsize: int = 1024
    ) -> None:
        self._partition = partition
        self.versions = BlockVersions(partition)
        self._results: LRUCache = LRUCache(maxsize)
        self._touched: dict = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def touched_blocks(
        self, target: frozenset, plan_for: PlanProvider
    ) -> tuple[int, ...]:
        """The block indices whose contents the answer of ``[target]``
        can depend on (memoized per target)."""
        with self._lock:
            cached = self._touched.get(target)
        if cached is not None:
            return cached
        partition = self._partition
        every = tuple(range(len(partition.blocks)))
        if not partition.accepted:
            blocks = every
        else:
            try:
                plan = plan_for(target)
            except SchemaError:
                # No extension join covers the target: the answer is
                # empty whatever the data, but keying on every block
                # keeps the entry trivially sound.
                blocks = every
            else:
                blocks = tuple(
                    sorted(
                        {
                            partition.block_index_of(name)
                            for name in plan.expression.relation_names()
                        }
                    )
                    or every
                )
        with self._lock:
            self._touched[target] = blocks
        return blocks

    def key(
        self,
        state: DatabaseState,
        target: frozenset,
        plan_for: PlanProvider,
    ) -> tuple:
        """The cache key of ``[target]`` over ``state``: fingerprint,
        target, and the current versions of the touched blocks."""
        versions = tuple(
            self.versions.version(state, block_index)
            for block_index in self.touched_blocks(target, plan_for)
        )
        return (self._partition.fingerprint, target, versions)

    def get(self, key: tuple) -> Optional[set[tuple[Hashable, ...]]]:
        """The cached answer as a fresh mutable set, or ``None``."""
        rows = self._results.get(key, MISSING)
        if rows is MISSING:
            return None
        return set(rows)

    def put(self, key: tuple, rows: set[tuple[Hashable, ...]]) -> None:
        self._results.put(key, frozenset(rows))

    def note_write(self, state: DatabaseState, block_index: int) -> None:
        """Record one block write on a just-produced state (see
        :meth:`BlockVersions.bump`)."""
        self.versions.bump(state, block_index)

    def info(self) -> CacheInfo:
        """Hit/miss/eviction accounting of the result cache."""
        return self._results.info()

    def stats(self) -> dict[str, float]:
        """A JSON-ready accounting snapshot, with the derived hit rate
        and the observed write count (benchmark-metadata honesty)."""
        info = self.info()
        probes = info.hits + info.misses
        return {
            "hits": info.hits,
            "misses": info.misses,
            "evictions": info.evictions,
            "size": info.size,
            "maxsize": info.maxsize,
            "hit_rate": (info.hits / probes) if probes else 0.0,
            "writes_observed": self.versions.writes,
        }
