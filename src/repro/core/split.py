"""Split keys and split-freeness (paper, Section 3.3).

Algorithm 3 computes ``Si⁺`` as a growing union of relation schemes: a
scheme is absorbed once one of its declared keys lies inside the current
closure.  A key ``K`` is *split* in ``Si⁺`` when some computation covers
``K`` by absorbing a scheme that completes ``K`` without containing it —
intuitively, ``K``'s value can only be assembled from fragments, which
is exactly what defeats constant-time maintenance (Theorem 3.4).

Two tests are provided:

* :func:`split_keys` / :func:`is_split_free` — the efficient test of
  Lemma 3.8: ``K`` is split in some member's closure iff some member not
  containing ``K`` reaches ``K`` in its attribute closure under the key
  dependencies of the schemes that do not contain ``K`` (the BMSU
  closed form of the chase of ``T_W``).
* :func:`find_split_witness` — the definitional exhaustive search over
  Algorithm 3 computations, used by the test suite to cross-validate
  Lemma 3.8 on small schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fd.fdset import FDSet
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme


def scheme_closure(
    members: Sequence[RelationScheme], start: AttrsLike
) -> frozenset[str]:
    """Algorithm 3: the closure of ``start`` as a union of absorbed
    relation schemes (greedy; the final closure is order-independent)."""
    closure = set(attrs(start))
    remaining = list(members)
    absorbed = True
    while absorbed:
        absorbed = False
        for member in list(remaining):
            if member.attributes <= closure:
                remaining.remove(member)
                continue
            if any(key <= closure for key in member.keys):
                closure |= member.attributes
                remaining.remove(member)
                absorbed = True
    return frozenset(closure)


def _schemes_avoiding(
    scheme: DatabaseScheme, key: frozenset[str]
) -> list[RelationScheme]:
    """``W``: the members that do not contain ``key`` (Lemma 3.8)."""
    return [
        member for member in scheme.relations if not key <= member.attributes
    ]


def is_key_split(scheme: DatabaseScheme, key: AttrsLike) -> bool:
    """Lemma 3.8: is ``key`` split in some member's closure?

    ``key`` is split iff some member of ``W`` (the members avoiding the
    key) has the key inside its attribute closure under ``G``, the key
    dependencies embedded in ``W``.
    """
    key_set = attrs(key)
    avoiding = _schemes_avoiding(scheme, key_set)
    if not avoiding:
        return False
    fds = FDSet()
    for member in avoiding:
        fds = fds | member.key_dependencies
    return any(
        key_set <= fds.closure(member.attributes) for member in avoiding
    )


def split_keys(scheme: DatabaseScheme) -> list[frozenset[str]]:
    """All declared keys of the scheme that are split (Lemma 3.8)."""
    return [key for key in scheme.all_keys() if is_key_split(scheme, key)]


def is_split_free(scheme: DatabaseScheme) -> bool:
    """True iff no declared key of the scheme is split.

    For key-equivalent schemes this characterizes constant-time
    maintainability (Corollary 3.3).
    """
    return not split_keys(scheme)


@dataclass(frozen=True)
class SplitWitness:
    """A definitional witness that a key is split: the member whose
    closure computation splits the key, the sequence of schemes absorbed
    (in order), and the scheme that completed the key."""

    key: frozenset[str]
    start: RelationScheme
    computation: tuple[RelationScheme, ...]
    completer: RelationScheme

    def __str__(self) -> str:
        chain = " , ".join(member.name for member in self.computation)
        return (
            f"key {fmt_attrs(self.key)} split in {self.start.name}+ via "
            f"[{chain}]; completed by {self.completer.name} "
            f"({fmt_attrs(self.completer.attributes)}) which does not "
            "contain it"
        )


def find_split_witness(
    scheme: DatabaseScheme, key: AttrsLike
) -> Optional[SplitWitness]:
    """Exhaustive search over Algorithm 3 computations for a witness that
    ``key`` is split (definition in Section 3.3).

    Exponential in the number of members; used to cross-validate the
    Lemma 3.8 test on small schemes.
    """
    key_set = attrs(key)

    def explore(
        start: RelationScheme,
        closure: frozenset[str],
        used: tuple[RelationScheme, ...],
    ) -> Optional[SplitWitness]:
        if key_set <= closure:
            return None  # key already covered; later completion impossible
        for member in scheme.relations:
            if member in used or member is start:
                continue
            if member.attributes <= closure:
                continue
            if not any(k <= closure for k in member.keys):
                continue
            new_part = member.attributes - closure
            completes = (key_set - closure) and new_part >= (key_set - closure)
            if completes and not key_set <= member.attributes:
                return SplitWitness(
                    key=key_set,
                    start=start,
                    computation=used + (member,),
                    completer=member,
                )
            witness = explore(start, closure | member.attributes, used + (member,))
            if witness is not None:
                return witness
        return None

    for start in scheme.relations:
        witness = explore(start, start.attributes, ())
        if witness is not None:
            return witness
    return None
