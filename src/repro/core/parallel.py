"""A pluggable executor for share-nothing block tasks.

The independence decomposition guarantees block tasks touch disjoint
relations, so they can run on a thread pool (the default: zero setup
cost, shared immutable inputs) or a process pool (a config switch for
CPU-bound fleets: inputs must be picklable, so callers hand the process
backend primitive payloads).

``workers=1`` — the default everywhere — never builds a pool and runs
tasks inline, preserving single-threaded behavior byte-for-byte.

Thread tasks run under :func:`contextvars.copy_context`, so the caller's
ambient tracer (see :mod:`repro.obs.spans`) keeps collecting the spans
a worker emits; process workers cannot share a tracer, so per-block
spans are recorded by the parent from returned timings instead.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.foundations.errors import StateError

Item = TypeVar("Item")
Result = TypeVar("Result")

BACKENDS = ("thread", "process")


class ParallelExecutor:
    """Map a function over independent items on a worker pool.

    The pool is created lazily on the first parallel map and reused for
    the executor's lifetime; :meth:`close` (or use as a context manager)
    shuts it down.  With ``workers <= 1`` or fewer than two items the
    map degenerates to an inline loop — no pool, no threads.
    """

    def __init__(self, workers: int = 1, backend: str = "thread") -> None:
        if backend not in BACKENDS:
            raise StateError(
                f"unknown parallel backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        self.workers = max(1, int(workers))
        self.backend = backend
        self._pool: Optional[Executor] = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._pool is None:
                if self.backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-block",
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
            return self._pool

    def map(
        self,
        function: Callable[[Item], Result],
        items: Iterable[Item],
    ) -> List[Result]:
        """Apply ``function`` to every item; results in item order.

        The first task exception propagates to the caller (remaining
        tasks are left to finish in the pool — block tasks are pure
        functions of their inputs, so abandoning them is safe)."""
        materialized: Sequence[Item] = list(items)
        if self.workers <= 1 or len(materialized) <= 1:
            return [function(item) for item in materialized]
        pool = self._ensure_pool()
        if self.backend == "thread":
            # Propagate contextvars (the ambient span tracer) into the
            # pool: ThreadPoolExecutor workers do not inherit them.
            futures = [
                pool.submit(contextvars.copy_context().run, function, item)
                for item in materialized
            ]
        else:
            futures = [pool.submit(function, item) for item in materialized]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"backend={self.backend!r})"
        )
