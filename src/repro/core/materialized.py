"""Incrementally maintained representative instances.

Section 3.2 shows constraint enforcement on key-equivalent schemes is
incremental: an insertion's effect on the representative instance is
local to the classes that share a key with the (extended) new tuple.
:class:`MaterializedRepInstance` exploits this to keep the instance
materialized across a stream of insertions — Algorithm 1 runs once at
construction, and each accepted insert merges the new tuple's class in,
cascading only through the merges the new constants enable.

This is the natural "view maintenance" companion to Algorithm 2: the
outcome decisions are identical (validated against the full rebuild by
property tests), queries read the always-current instance, and the work
per insert is proportional to the merged classes, not to the state.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional

from repro.core.key_equivalent import require_key_equivalent
from repro.foundations.attrs import sorted_attrs
from repro.foundations.errors import StateError
from repro.schema.database_scheme import DatabaseScheme
from repro.state.database_state import DatabaseState


class MaterializedRepInstance:
    """A representative instance kept current under insertions.

    Classes are stored as constant-component dicts; an index per
    declared key maps key values to the unique class total on that key
    (Lemma 3.2(c) guarantees uniqueness on consistent data).
    """

    def __init__(self, state: DatabaseState, *, check_scheme: bool = True) -> None:
        scheme = state.scheme
        if check_scheme:
            require_key_equivalent(scheme)
        self.scheme: DatabaseScheme = scheme
        self._keys = [tuple(sorted_attrs(key)) for key in scheme.all_keys()]
        self._classes: dict[int, dict[str, Hashable]] = {}
        self._next_id = 0
        self._index: dict[tuple, int] = {}
        self.merges = 0
        for name, relation in state:
            for values in relation:
                if self._absorb(dict(values)) is None:
                    raise StateError(
                        "cannot materialize an inconsistent state"
                    )

    # -- internals -------------------------------------------------------------
    def _signatures(self, row: Mapping[str, Hashable]) -> list[tuple]:
        """Index signatures for every declared key the row is total on."""
        out = []
        for ordered in self._keys:
            if all(a in row for a in ordered):
                out.append((ordered, tuple(row[a] for a in ordered)))
        return out

    def _absorb(
        self, row: dict[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        """Merge a new constant-dict into the instance, cascading through
        key agreements.  Returns the final merged class, or None when a
        constant conflict was found (in which case the instance is left
        unchanged)."""
        merged = dict(row)
        victims: set[int] = set()
        # Cascade: repeatedly look for a class agreeing with `merged` on
        # a key; only `merged` ever grows, so the loop terminates.
        changed = True
        while changed:
            changed = False
            for signature in self._signatures(merged):
                class_id = self._index.get(signature)
                if class_id is None or class_id in victims:
                    continue
                other = self._classes[class_id]
                for attribute, value in other.items():
                    if attribute in merged and merged[attribute] != value:
                        return None  # conflict; nothing was mutated yet
                    merged[attribute] = value
                victims.add(class_id)
                changed = True
        # Commit: remove absorbed classes, insert the merged one.  (The
        # merge counter moves here so a rejected insert — which must
        # leave the instance untouched — also leaves the counter alone.)
        self.merges += len(victims)
        for class_id in victims:
            self._drop(class_id)
        self._add(merged)
        return merged

    def _add(self, row: dict[str, Hashable]) -> None:
        class_id = self._next_id
        self._next_id += 1
        self._classes[class_id] = row
        for signature in self._signatures(row):
            self._index[signature] = class_id

    def _drop(self, class_id: int) -> None:
        row = self._classes.pop(class_id)
        for signature in self._signatures(row):
            if self._index.get(signature) == class_id:
                del self._index[signature]

    # -- public API ----------------------------------------------------------------
    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        """Validate one insertion and, when consistent, fold it into the
        materialized instance.

        Returns the merged class (the paper's output tuple ``q``) on
        acceptance, None on rejection; the instance is untouched on
        rejection.
        """
        member = self.scheme[relation_name]
        if frozenset(values) != member.attributes:
            raise StateError(
                f"tuple attributes do not match {relation_name}'s scheme"
            )
        return self._absorb(dict(values))

    def lookup(
        self, key: Iterable[str], values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        """The class total on ``key`` with the given values, or None."""
        ordered = tuple(sorted_attrs(frozenset(key)))
        class_id = self._index.get(
            (ordered, tuple(values[a] for a in ordered))
        )
        return None if class_id is None else dict(self._classes[class_id])

    def total_projection(self, attributes) -> set[tuple[Hashable, ...]]:
        """``[X]`` read off the materialized instance."""
        ordered = sorted_attrs(frozenset(attributes))
        out: set[tuple[Hashable, ...]] = set()
        for row in self._classes.values():
            if all(a in row for a in ordered):
                out.add(tuple(row[a] for a in ordered))
        return out

    def classes(self) -> list[dict[str, Hashable]]:
        """Snapshot of the current classes (copies)."""
        return [dict(row) for row in self._classes.values()]

    def __len__(self) -> int:
        return len(self._classes)
