"""Constant-time maintainability and the unified maintenance front-end
(paper, Sections 3.3, 4.2, 5.4).

Theorem 5.5: an independence-reducible scheme is ctm iff every block of
its independence-reducible partition is split-free.  Section 4.2: to
validate an insertion it suffices to validate it inside the block
containing the target relation — independence of the induced scheme
lifts block consistency to global consistency.

:class:`InsertMaintainer` packages this: at construction it recognizes
the scheme, partitions it, and chooses per-block strategies (Algorithm 5
for split-free blocks, Algorithm 2 otherwise); inserts are validated
against the block substate only, with the full-chase baseline available
for schemes outside the class.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.core.maintenance import (
    ExpressionRILookup,
    StateIndex,
    algebraic_insert,
    ctm_insert,
)
from repro.core.partition import RoutedUpdate, SchemePartition, partition_scheme
from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.core.split import is_split_free
from repro.foundations.errors import NotApplicableError
from repro.schema.database_scheme import DatabaseScheme
from repro.state.consistency import MaintenanceOutcome, maintain_by_chase
from repro.state.database_state import DatabaseState
from repro.tableau.chase import DeltaChase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compile import KernelSpace


def is_ctm(
    scheme: DatabaseScheme,
    recognition: Optional[RecognitionResult] = None,
) -> bool:
    """Theorem 5.5: an independence-reducible scheme is ctm iff it is
    split-free (every partition block is split-free).

    Raises :class:`NotApplicableError` for schemes outside the
    independence-reducible class, where the paper gives no
    characterization.
    """
    if recognition is None:
        recognition = recognize_independence_reducible(scheme)
    if not recognition.accepted:
        raise NotApplicableError(
            "the ctm characterization (Theorem 5.5) applies to "
            "independence-reducible schemes only"
        )
    return all(is_split_free(block) for block in recognition.partition)


def split_blocks(
    recognition: RecognitionResult,
) -> list[DatabaseScheme]:
    """The partition blocks that are split (hence maintained by
    Algorithm 2 rather than Algorithm 5)."""
    return [
        block for block in recognition.partition if not is_split_free(block)
    ]


@dataclass(frozen=True)
class MaintainerReport:
    """How the maintainer will treat each relation scheme."""

    reducible: bool
    ctm: bool
    strategy_by_relation: dict[str, str]

    def __str__(self) -> str:
        lines = [
            f"independence-reducible: {self.reducible}; ctm: {self.ctm}",
        ]
        for name, strategy in sorted(self.strategy_by_relation.items()):
            lines.append(f"  {name}: {strategy}")
        return "\n".join(lines)


class InsertMaintainer:
    """Unified incremental constraint enforcement for a database scheme.

    Per Section 4.2, an insertion into a relation of block ``Tp`` is
    globally safe iff the updated substate on ``Tp`` is consistent; the
    maintainer therefore restricts work to the block and picks:

    * **Algorithm 5** when the block is split-free (ctm; probes
      independent of state size),
    * **Algorithm 2** otherwise (algebraic-maintainable; a bounded
      number of predetermined expressions),
    * the **full chase** when the scheme is not independence-reducible
      at all (no guarantee from the paper; correctness only).
    """

    def __init__(
        self,
        scheme: DatabaseScheme,
        partition: Optional[SchemePartition] = None,
        kernels: Optional["KernelSpace"] = None,
        compiled: bool = True,
    ) -> None:
        self.scheme = scheme
        self.partition = (
            partition if partition is not None else partition_scheme(scheme)
        )
        # Algorithm-2 validations run their bounded selections through
        # compiled columnar kernels unless opted out; a maintainer built
        # by an engine shares that engine's KernelSpace (program memo +
        # column store), a standalone maintainer owns one.
        if kernels is None and compiled:
            from repro.compile import KernelSpace

            kernels = KernelSpace()
        self.kernels = kernels if compiled else None
        self.recognition = self.partition.recognition
        self._strategy: dict[str, str] = {}
        self._block_of: dict[str, DatabaseScheme] = {}
        if self.recognition.accepted:
            for block, block_ctm in zip(
                self.partition.blocks, self.partition.block_ctm
            ):
                for member in block.relations:
                    self._block_of[member.name] = block
                    self._strategy[member.name] = (
                        "algorithm-5 (ctm)" if block_ctm else "algorithm-2"
                    )
        else:
            for member in scheme.relations:
                self._strategy[member.name] = "full-chase"
        # Delta-chase basis for the full-chase strategy: the last
        # accepted state and its persistent chased fixpoint, so the next
        # insert on that exact state extends instead of re-chasing.
        self._delta_lock = threading.Lock()
        self._delta: Optional[tuple[DatabaseState, DeltaChase]] = None

    def report(self) -> MaintainerReport:
        """Describe the chosen strategies."""
        ctm = self.recognition.accepted and all(
            strategy.startswith("algorithm-5")
            for strategy in self._strategy.values()
        )
        return MaintainerReport(
            reducible=self.recognition.accepted,
            ctm=ctm,
            strategy_by_relation=dict(self._strategy),
        )

    def _lookup(self, substate: DatabaseState):
        """The RI lookup for one Algorithm-2 validation: compiled
        kernels when enabled, the interpreted expression walk otherwise.
        The Corollary 3.1(b) branches are always scans, joins and
        projections, all inside the kernel set."""
        if self.kernels is not None:
            from repro.compile import CompiledRILookup

            return CompiledRILookup(substate, self.kernels)
        return ExpressionRILookup(substate)

    def _substate(
        self, state: DatabaseState, block: DatabaseScheme
    ) -> DatabaseState:
        # Immutable Relation objects are shared, not re-normalized.
        return DatabaseState(
            block, {name: state[name] for name in block.names}
        )

    def _insert_full_chase(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """The full-chase strategy, incrementalized.

        A persistent :class:`DeltaChase` basis keyed by state identity
        absorbs each accepted insert as a one-row delta; only a basis
        miss (first insert, or an insert against a state the maintainer
        has not seen) re-chases from scratch.  Diagnostics — and on
        rejection the entire outcome, via the chase oracle — match
        :func:`maintain_by_chase` exactly: cumulative delta steps equal
        the from-scratch step count on consistent histories."""
        with self._delta_lock:
            basis = self._delta
            if basis is None or basis[0] is not state:
                chase = DeltaChase(self.scheme.universe, self.scheme.fds)
                seeded = chase.extend(
                    (name, relation.columns, relation.row_vectors)
                    for name, relation in state
                )
                if not seeded.consistent:
                    # The base state itself admits no weak instance;
                    # defer to the oracle for the historical outcome.
                    self._delta = None
                    return maintain_by_chase(state, relation_name, values)
                basis = (state, chase)
                self._delta = basis
            chase = basis[1]
            updated = state.insert(relation_name, values)
            relation = updated[relation_name]
            if values in state[relation_name]:
                # Set semantics: a duplicate changes no stored row, so
                # the fixpoint is already exact — rebind the basis to
                # the fresh state object and report as the oracle would.
                self._delta = (updated, chase)
                return MaintenanceOutcome(
                    consistent=True,
                    state=updated,
                    tuples_examined=updated.total_tuples(),
                    chase_steps=chase.steps,
                )
            vector = tuple(values[a] for a in relation.columns)
            outcome = chase.extend(
                [(relation_name, relation.columns, (vector,))]
            )
            if outcome.consistent:
                self._delta = (updated, chase)
                return MaintenanceOutcome(
                    consistent=True,
                    state=updated,
                    tuples_examined=updated.total_tuples(),
                    chase_steps=chase.steps,
                )
            # Rejected: the extension rolled back, so the basis still
            # serves `state`.  Re-run the oracle for the diagnostics (a
            # from-scratch rejection counts every merge before its
            # contradiction, which a delta cannot know).
            return maintain_by_chase(state, relation_name, values)

    def block_batch(
        self,
        substate: DatabaseState,
        block_index: int,
        operations: Sequence[RoutedUpdate],
    ) -> "BlockOutcome":
        """Apply one block's slice of a batch to its substate.

        Blocks are share-nothing, so the slice's outcome is exactly what
        the serial batch would decide at each of these global indexes —
        the earliest rejection (or raised error) across all blocks is
        the serial batch's first failure.  One :class:`StateIndex` is
        kept exact across the loop for ctm blocks, replacing the
        per-insert rebuild of the single-insert path."""
        started = time.perf_counter()
        is_ctm = self.partition.block_ctm[block_index]
        index = StateIndex(substate) if is_ctm else None
        current = substate
        applied = 0
        for global_index, operation, relation_name, values in operations:
            try:
                if operation == "insert":
                    if is_ctm:
                        assert index is not None
                        duplicate = values in current[relation_name]
                        outcome = ctm_insert(
                            current,
                            relation_name,
                            values,
                            index=index,
                            check_scheme=False,
                        )
                        if outcome.consistent and not duplicate:
                            assert outcome.state is not None
                            index.absorb(
                                relation_name, values, outcome.state
                            )
                    else:
                        outcome = algebraic_insert(
                            current,
                            relation_name,
                            values,
                            lookup=self._lookup(current),
                            check_scheme=False,
                        )
                    if not outcome.consistent:
                        return BlockOutcome(
                            block_index=block_index,
                            substate=None,
                            applied=applied,
                            failed_index=global_index,
                            failure=outcome,
                            seconds=time.perf_counter() - started,
                            ops=len(operations),
                        )
                    assert outcome.state is not None
                    current = outcome.state
                else:  # "delete" — route_updates admits nothing else
                    current = current.delete(relation_name, values)
                    if index is not None:
                        index.evict(relation_name, current)
            except Exception as error:  # noqa: BLE001 — replayed by rank
                # Captured, not raised: the serial batch only reaches
                # this op when every earlier op succeeded, so the error
                # counts as an event at this global index and the
                # engine re-raises it iff it is the earliest event.
                return BlockOutcome(
                    block_index=block_index,
                    substate=None,
                    applied=applied,
                    error_index=global_index,
                    error=error,
                    seconds=time.perf_counter() - started,
                    ops=len(operations),
                )
            applied += 1
        return BlockOutcome(
            block_index=block_index,
            substate=current,
            applied=applied,
            seconds=time.perf_counter() - started,
            ops=len(operations),
        )

    def insert(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """Validate and apply one insertion on a consistent state.

        Returns the block-level decision lifted to the full state: the
        outcome's ``state`` is the updated full state when consistent.
        """
        strategy = self._strategy.get(relation_name)
        if strategy is None:
            raise NotApplicableError(f"unknown relation {relation_name!r}")
        if strategy == "full-chase":
            return self._insert_full_chase(state, relation_name, values)
        block = self._block_of[relation_name]
        substate = self._substate(state, block)
        if strategy.startswith("algorithm-5"):
            outcome = ctm_insert(
                substate,
                relation_name,
                values,
                index=StateIndex(substate),
                check_scheme=False,
            )
        else:
            outcome = algebraic_insert(
                substate,
                relation_name,
                values,
                lookup=self._lookup(substate),
                check_scheme=False,
            )
        # Lift the block-level decision to the full state, preserving the
        # diagnostics (witness, chase steps) the block algorithm produced.
        if not outcome.consistent:
            return MaintenanceOutcome(
                consistent=False,
                state=None,
                tuples_examined=outcome.tuples_examined,
                chase_steps=outcome.chase_steps,
                witness=outcome.witness,
            )
        return MaintenanceOutcome(
            consistent=True,
            state=state.insert(relation_name, values),
            tuples_examined=outcome.tuples_examined,
            chase_steps=outcome.chase_steps,
            witness=outcome.witness,
        )


@dataclass(frozen=True)
class BlockOutcome:
    """One block's verdict on its slice of a batch.

    Exactly one of three shapes: success (``substate`` set), rejection
    (``failed_index``/``failure`` set, block-level diagnostics intact),
    or a captured error (``error_index``/``error`` set).  Indexes are
    global batch positions, so the engine can take the minimum across
    blocks to reproduce the serial batch's first failure."""

    block_index: int
    substate: Optional[DatabaseState]
    applied: int
    ops: int = 0
    failed_index: Optional[int] = None
    failure: Optional[MaintenanceOutcome] = None
    error_index: Optional[int] = None
    error: Optional[BaseException] = None
    seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.substate is not None

    @property
    def event_index(self) -> Optional[int]:
        """The global index of this block's failure event, if any."""
        if self.failed_index is not None:
            return self.failed_index
        return self.error_index
