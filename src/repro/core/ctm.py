"""Constant-time maintainability and the unified maintenance front-end
(paper, Sections 3.3, 4.2, 5.4).

Theorem 5.5: an independence-reducible scheme is ctm iff every block of
its independence-reducible partition is split-free.  Section 4.2: to
validate an insertion it suffices to validate it inside the block
containing the target relation — independence of the induced scheme
lifts block consistency to global consistency.

:class:`InsertMaintainer` packages this: at construction it recognizes
the scheme, partitions it, and chooses per-block strategies (Algorithm 5
for split-free blocks, Algorithm 2 otherwise); inserts are validated
against the block substate only, with the full-chase baseline available
for schemes outside the class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional

from repro.core.maintenance import (
    ExpressionRILookup,
    StateIndex,
    algebraic_insert,
    ctm_insert,
)
from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.core.split import is_split_free
from repro.foundations.errors import NotApplicableError
from repro.schema.database_scheme import DatabaseScheme
from repro.state.consistency import MaintenanceOutcome, maintain_by_chase
from repro.state.database_state import DatabaseState


def is_ctm(
    scheme: DatabaseScheme,
    recognition: Optional[RecognitionResult] = None,
) -> bool:
    """Theorem 5.5: an independence-reducible scheme is ctm iff it is
    split-free (every partition block is split-free).

    Raises :class:`NotApplicableError` for schemes outside the
    independence-reducible class, where the paper gives no
    characterization.
    """
    if recognition is None:
        recognition = recognize_independence_reducible(scheme)
    if not recognition.accepted:
        raise NotApplicableError(
            "the ctm characterization (Theorem 5.5) applies to "
            "independence-reducible schemes only"
        )
    return all(is_split_free(block) for block in recognition.partition)


def split_blocks(
    recognition: RecognitionResult,
) -> list[DatabaseScheme]:
    """The partition blocks that are split (hence maintained by
    Algorithm 2 rather than Algorithm 5)."""
    return [
        block for block in recognition.partition if not is_split_free(block)
    ]


@dataclass(frozen=True)
class MaintainerReport:
    """How the maintainer will treat each relation scheme."""

    reducible: bool
    ctm: bool
    strategy_by_relation: dict[str, str]

    def __str__(self) -> str:
        lines = [
            f"independence-reducible: {self.reducible}; ctm: {self.ctm}",
        ]
        for name, strategy in sorted(self.strategy_by_relation.items()):
            lines.append(f"  {name}: {strategy}")
        return "\n".join(lines)


class InsertMaintainer:
    """Unified incremental constraint enforcement for a database scheme.

    Per Section 4.2, an insertion into a relation of block ``Tp`` is
    globally safe iff the updated substate on ``Tp`` is consistent; the
    maintainer therefore restricts work to the block and picks:

    * **Algorithm 5** when the block is split-free (ctm; probes
      independent of state size),
    * **Algorithm 2** otherwise (algebraic-maintainable; a bounded
      number of predetermined expressions),
    * the **full chase** when the scheme is not independence-reducible
      at all (no guarantee from the paper; correctness only).
    """

    def __init__(self, scheme: DatabaseScheme) -> None:
        self.scheme = scheme
        self.recognition = recognize_independence_reducible(scheme)
        self._strategy: dict[str, str] = {}
        self._block_of: dict[str, DatabaseScheme] = {}
        if self.recognition.accepted:
            for block in self.recognition.partition:
                block_ctm = is_split_free(block)
                for member in block.relations:
                    self._block_of[member.name] = block
                    self._strategy[member.name] = (
                        "algorithm-5 (ctm)" if block_ctm else "algorithm-2"
                    )
        else:
            for member in scheme.relations:
                self._strategy[member.name] = "full-chase"

    def report(self) -> MaintainerReport:
        """Describe the chosen strategies."""
        ctm = self.recognition.accepted and all(
            strategy.startswith("algorithm-5")
            for strategy in self._strategy.values()
        )
        return MaintainerReport(
            reducible=self.recognition.accepted,
            ctm=ctm,
            strategy_by_relation=dict(self._strategy),
        )

    def _substate(
        self, state: DatabaseState, block: DatabaseScheme
    ) -> DatabaseState:
        return DatabaseState(
            block, {name: list(state[name]) for name in block.names}
        )

    def insert(
        self,
        state: DatabaseState,
        relation_name: str,
        values: Mapping[str, Hashable],
    ) -> MaintenanceOutcome:
        """Validate and apply one insertion on a consistent state.

        Returns the block-level decision lifted to the full state: the
        outcome's ``state`` is the updated full state when consistent.
        """
        strategy = self._strategy.get(relation_name)
        if strategy is None:
            raise NotApplicableError(f"unknown relation {relation_name!r}")
        if strategy == "full-chase":
            return maintain_by_chase(state, relation_name, values)
        block = self._block_of[relation_name]
        substate = self._substate(state, block)
        if strategy.startswith("algorithm-5"):
            outcome = ctm_insert(
                substate,
                relation_name,
                values,
                index=StateIndex(substate),
                check_scheme=False,
            )
        else:
            outcome = algebraic_insert(
                substate,
                relation_name,
                values,
                lookup=ExpressionRILookup(substate),
                check_scheme=False,
            )
        # Lift the block-level decision to the full state, preserving the
        # diagnostics (witness, chase steps) the block algorithm produced.
        if not outcome.consistent:
            return MaintenanceOutcome(
                consistent=False,
                state=None,
                tuples_examined=outcome.tuples_examined,
                chase_steps=outcome.chase_steps,
                witness=outcome.witness,
            )
        return MaintenanceOutcome(
            consistent=True,
            state=state.insert(relation_name, values),
            tuples_examined=outcome.tuples_examined,
            chase_steps=outcome.chase_steps,
            witness=outcome.witness,
        )
