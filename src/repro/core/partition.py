"""Scheme partitioning for block-parallel evaluation.

An accepted recognition (Algorithm 6) certifies more than membership:
the uniqueness condition forces every key of a block to stay outside the
attribute closure of every other block, so no fd-rule can fire across
blocks and the chase of a state decomposes exactly into the chases of
its block substates.  The partition is therefore a *parallelization
certificate* — updates and total projections route to one block each,
and distinct blocks share nothing.

:func:`partition_scheme` computes the decomposition once per scheme and
memoizes it by :func:`scheme_fingerprint`, so every engine, maintainer
and server bound to (a copy of) the same scheme shares one recognition
run and one routing table.
"""

from __future__ import annotations

import hashlib
import json
from typing import Hashable, Mapping, Optional, Sequence, Tuple

from repro.core.reducible import (
    RecognitionResult,
    recognize_independence_reducible,
)
from repro.core.split import is_split_free
from repro.foundations.cache import MISSING, LRUCache
from repro.foundations.errors import StateError
from repro.io import scheme_to_dict
from repro.schema.database_scheme import DatabaseScheme
from repro.state.database_state import DatabaseState

#: One batch operation routed to a block:
#: ``(global index, "insert" | "delete", relation name, tuple)``.
RoutedUpdate = Tuple[int, str, str, Mapping[str, Hashable]]


def scheme_fingerprint(scheme: DatabaseScheme) -> str:
    """A stable content hash of a scheme.

    Canonical JSON (sorted keys, sorted attribute lists — see
    :func:`repro.io.scheme_to_dict`) hashed with SHA-256, so two equal
    schemes fingerprint identically across processes and sessions.  Used
    to key the partition cache and to tag benchmark records."""
    payload = json.dumps(
        scheme_to_dict(scheme), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SchemePartition:
    """The independence decomposition of one scheme, with routing.

    ``blocks`` are the key-equivalent partition blocks (sub-schemes);
    ``block_ctm[i]`` says whether block ``i`` is split-free (Algorithm 5
    applies); ``parallelizable`` is true when the scheme was accepted
    and has at least two blocks, i.e. when block-local work is provably
    independent.
    """

    def __init__(self, scheme: DatabaseScheme) -> None:
        self.scheme = scheme
        self.fingerprint = scheme_fingerprint(scheme)
        self.recognition: RecognitionResult = (
            recognize_independence_reducible(scheme)
        )
        self.blocks: tuple[DatabaseScheme, ...] = self.recognition.partition
        self.block_names: tuple[tuple[str, ...], ...] = tuple(
            tuple(member.name for member in block.relations)
            for block in self.blocks
        )
        self.block_ctm: tuple[bool, ...] = tuple(
            is_split_free(block) for block in self.blocks
        )
        self._block_index: dict[str, int] = {}
        for index, names in enumerate(self.block_names):
            for name in names:
                self._block_index[name] = index

    @property
    def accepted(self) -> bool:
        return self.recognition.accepted

    @property
    def parallelizable(self) -> bool:
        """Block-local evaluation is sound and there is more than one
        block to spread work over."""
        return self.recognition.accepted and len(self.blocks) > 1

    def block_index_of(self, relation_name: str) -> int:
        """The index of the block containing the named relation."""
        try:
            return self._block_index[relation_name]
        except KeyError:
            raise StateError(f"no relation named {relation_name!r}") from None

    def substate(self, state: DatabaseState, block_index: int) -> DatabaseState:
        """The state restricted to one block's relations.

        Relation objects are reused as-is (states are immutable), so
        extraction is one small dict build, not a re-normalization of
        every stored tuple."""
        names = self.block_names[block_index]
        return DatabaseState(
            self.blocks[block_index], {name: state[name] for name in names}
        )

    def route_updates(
        self, updates: Sequence[tuple[str, str, Mapping[str, Hashable]]]
    ) -> Optional[dict[int, list[RoutedUpdate]]]:
        """Group a batch by target block, preserving global order.

        Returns ``None`` when the batch cannot be routed — an unknown
        operation or relation — so callers fall back to the serial path
        and surface the error with its original semantics (an unknown
        op after a rejected insert must still report the rejection)."""
        grouped: dict[int, list[RoutedUpdate]] = {}
        for index, (operation, relation_name, values) in enumerate(updates):
            if operation not in ("insert", "delete"):
                return None
            block = self._block_index.get(relation_name)
            if block is None:
                return None
            grouped.setdefault(block, []).append(
                (index, operation, relation_name, values)
            )
        return grouped


#: Partitions are pure functions of scheme content; a handful of schemes
#: is plenty for any one process.
_PARTITIONS: LRUCache = LRUCache(64)


def partition_scheme(scheme: DatabaseScheme) -> SchemePartition:
    """The memoized :class:`SchemePartition` for a scheme.

    Keyed by content fingerprint, so equal schemes (even distinct
    objects, e.g. one per server restart) share one recognition run."""
    fingerprint = scheme_fingerprint(scheme)
    cached = _PARTITIONS.get(fingerprint, MISSING)
    if cached is MISSING:
        cached = SchemePartition(scheme)
        _PARTITIONS.put(fingerprint, cached)
    return cached
