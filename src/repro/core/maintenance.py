"""Incremental constraint enforcement (paper, Sections 3.2 and 3.3).

Three maintenance strategies for insertions into consistent states on
key-equivalent schemes, all validated against the full-chase baseline:

* **Algorithm 5** (:func:`ctm_insert`) — for *split-free* key-equivalent
  schemes: extend the inserted tuple along each of its keys with
  Algorithm 4 (:func:`extend_tuple`) and join the extensions; the number
  of tuples retrieved depends only on the scheme (Theorem 3.3).
* **Algorithm 2** (:func:`algebraic_insert`) — for any key-equivalent
  scheme: repeatedly join the inserted tuple with the representative-
  instance tuple sharing each newly available key (Theorem 3.1).  The
  representative-instance lookup is pluggable: a chase-backed index
  (ground truth) or the predetermined lossless-join expressions of
  Theorem 3.2 (:class:`ExpressionRILookup`), which make the scheme
  algebraic-maintainable.
* **Full chase** — :func:`repro.state.consistency.maintain_by_chase`.

Every routine reports how many stored tuples it retrieved, which is the
quantity the paper's ctm lower bound (Theorem 3.4) speaks about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Protocol

from repro.algebra.expressions import Select
from repro.core.key_equivalent import (
    KERepInstance,
    key_equivalent_chase,
    require_key_equivalent,
    total_projection_expression,
)
from repro.core.split import is_split_free
from repro.foundations.attrs import fmt_attrs, sorted_attrs
from repro.foundations.errors import (
    InconsistentStateError,
    NotApplicableError,
    StateError,
)
from repro.state.consistency import MaintenanceOutcome
from repro.state.database_state import DatabaseState


class StateIndex:
    """Hash indexes over a state's relations, by (relation, key attrs).

    Models the storage layer the ctm definition assumes: a single-tuple
    conjunctive selection ``σ_{K='k'}(π_X(Ri))`` is one indexed probe.
    Retrieved-tuple counts are accumulated for the experiments.
    """

    def __init__(self, state: DatabaseState) -> None:
        self.state = state
        self.scheme = state.scheme
        self.tuples_retrieved = 0
        self.probes = 0
        self._indexes: dict[
            tuple[str, tuple[str, ...]], dict[tuple, list[dict[str, Hashable]]]
        ] = {}

    def _index_for(
        self, relation_name: str, key_attrs: tuple[str, ...]
    ) -> dict[tuple, list[dict[str, Hashable]]]:
        signature = (relation_name, key_attrs)
        index = self._indexes.get(signature)
        if index is None:
            index = {}
            for values in self.state[relation_name]:
                key_values = tuple(values[a] for a in key_attrs)
                index.setdefault(key_values, []).append(values)
            self._indexes[signature] = index
        return index

    def lookup(
        self,
        relation_name: str,
        key: frozenset[str],
        key_values: Mapping[str, Hashable],
    ) -> list[dict[str, Hashable]]:
        """All tuples of the relation matching the key values; counts the
        probe and the retrieved tuples."""
        ordered = tuple(sorted_attrs(key))
        index = self._index_for(relation_name, ordered)
        matches = index.get(tuple(key_values[a] for a in ordered), [])
        self.probes += 1
        self.tuples_retrieved += len(matches)
        return matches

    def absorb(
        self,
        relation_name: str,
        values: Mapping[str, Hashable],
        state: DatabaseState,
    ) -> None:
        """Register one just-inserted tuple and adopt the updated state.

        Keeps every already-built index of the relation exact, so a
        batch loop can probe one persistent index instead of rebuilding
        from scratch per insert (lazily built indexes read the adopted
        state).  Callers must not absorb a tuple the relation already
        stored — relations are sets, so a duplicate insert changes
        nothing and must leave the index alone."""
        self.state = state
        stored = dict(values)
        for (name, key_attrs), index in self._indexes.items():
            if name != relation_name:
                continue
            key_values = tuple(stored[a] for a in key_attrs)
            index.setdefault(key_values, []).append(stored)

    def evict(self, relation_name: str, state: DatabaseState) -> None:
        """Drop the relation's built indexes (e.g. after a deletion) and
        adopt the updated state; the next probe rebuilds lazily."""
        self.state = state
        for signature in [
            signature
            for signature in self._indexes
            if signature[0] == relation_name
        ]:
            del self._indexes[signature]


@dataclass(frozen=True)
class Extension:
    """Result of Algorithm 4: the extended total tuple ``t'`` on the
    attribute set ``C`` it reached."""

    values: dict[str, Hashable]
    attributes: frozenset[str]


def extend_tuple(
    index: StateIndex,
    key: frozenset[str],
    key_values: Mapping[str, Hashable],
) -> Extension:
    """Algorithm 4: extend a tuple on a key as far as the stored tuples
    allow, following declared keys.

    While some member ``Si`` has a declared key inside the current
    attribute set ``C``, contributes new attributes, and stores a tuple
    matching the extension on that key, absorb that tuple.  On a
    consistent state the result is independent of the absorption order
    (Lemma 3.3(b)); conflicting absorptions mean the input state was
    inconsistent.
    """
    scheme = index.scheme
    extension: dict[str, Hashable] = {a: key_values[a] for a in key}
    covered = set(key)
    grew = True
    while grew:
        grew = False
        for member in scheme.relations:
            if member.attributes <= covered:
                continue
            for member_key in member.keys:
                if not member_key <= covered:
                    continue
                matches = index.lookup(
                    member.name, member_key, extension
                )
                if len(matches) > 1:
                    raise InconsistentStateError(
                        f"{member.name} stores {len(matches)} tuples for key "
                        f"{fmt_attrs(member_key)}; the state violates its "
                        "key dependencies"
                    )
                if not matches:
                    continue
                match = matches[0]
                for attribute, value in match.items():
                    # Membership, not truthiness/None checks: stored
                    # constants may legitimately be None or falsy.
                    if attribute in extension and extension[attribute] != value:
                        raise InconsistentStateError(
                            "conflicting extensions; the input state was "
                            "not consistent"
                        )
                    extension[attribute] = value
                covered |= member.attributes
                grew = True
                break
    return Extension(values=extension, attributes=frozenset(covered))


def _join_partial(
    left: dict[str, Hashable], right: Mapping[str, Hashable]
) -> Optional[dict[str, Hashable]]:
    """Join two partial tuples on their common attributes; None when the
    join is empty (a disagreement)."""
    merged = dict(left)
    for attribute, value in right.items():
        if attribute in merged and merged[attribute] != value:
            return None
        merged[attribute] = value
    return merged


def ctm_insert(
    state: DatabaseState,
    relation_name: str,
    values: Mapping[str, Hashable],
    *,
    index: Optional[StateIndex] = None,
    check_scheme: bool = True,
) -> MaintenanceOutcome:
    """Algorithm 5: constant-time maintenance for split-free
    key-equivalent schemes.

    For each key of the target relation, extend the inserted tuple with
    Algorithm 4 and join the extensions with the tuple; the insertion is
    consistent iff the join is non-empty (Lemma 3.4).
    """
    scheme = state.scheme
    if check_scheme:
        require_key_equivalent(scheme)
        if not is_split_free(scheme):
            raise NotApplicableError(
                "Algorithm 5 requires a split-free scheme (Theorem 3.3); "
                "use algebraic_insert for split key-equivalent schemes"
            )
    member = scheme[relation_name]
    if frozenset(values) != member.attributes:
        raise StateError(
            f"tuple attributes do not match {relation_name}'s scheme"
        )
    if index is None:
        index = StateIndex(state)
    before = index.tuples_retrieved
    joined: Optional[dict[str, Hashable]] = dict(values)
    for key in member.keys:
        extension = extend_tuple(index, key, {a: values[a] for a in key})
        joined = _join_partial(joined, extension.values) if joined else None
        if joined is None:
            break
    retrieved = index.tuples_retrieved - before
    if joined is None:
        return MaintenanceOutcome(
            consistent=False, state=None, tuples_examined=retrieved
        )
    return MaintenanceOutcome(
        consistent=True,
        state=state.insert(relation_name, values),
        tuples_examined=retrieved,
        witness=joined,
    )


class RILookup(Protocol):
    """Find the representative-instance row total on a key with the given
    values — the step-(4) lookup of Algorithm 2."""

    def find(
        self, key: frozenset[str], values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]: ...

    @property
    def tuples_retrieved(self) -> int: ...


class ChaseRILookup:
    """Ground-truth lookup: materialize the representative instance with
    Algorithm 1 and index it by the scheme's keys.  Reads the whole
    state once (reported in ``tuples_retrieved``)."""

    def __init__(self, state: DatabaseState) -> None:
        instance = key_equivalent_chase(state, check_scheme=False)
        if instance is None:
            raise InconsistentStateError(
                "cannot maintain an inconsistent state"
            )
        self.instance: KERepInstance = instance
        self.tuples_retrieved = state.total_tuples()

    def find(
        self, key: frozenset[str], values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        ordered = sorted_attrs(key)
        return self.instance.lookup(key, [values[a] for a in ordered])


class ExpressionRILookup:
    """Theorem 3.2's lookup: assemble the representative-instance row for
    a key value by single-tuple conjunctive selections over the
    predetermined lossless-join expressions.

    For each key that becomes total in the accumulating row, evaluate
    ``σ_{K='k'}`` over each branch of the Corollary 3.1(b) expression
    for that key (a join of a minimal lossless subset covering it); the
    non-empty results are single tuples of the unique representative-
    instance row and are merged until a fixpoint.  The number of
    selections depends only on the scheme — this is what makes
    key-equivalent schemes algebraic-maintainable — while the *cost* of
    evaluating a branch still scales with the state, which is why split
    schemes are nonetheless not ctm (Theorem 3.4).
    """

    def __init__(self, state: DatabaseState) -> None:
        self.state = state
        self.scheme = state.scheme
        self.tuples_retrieved = 0
        self.selections_issued = 0
        self._branches: dict[frozenset[str], list] = {}

    def _branches_for(self, key: frozenset[str]) -> list:
        branches = self._branches.get(key)
        if branches is None:
            expression = total_projection_expression(self.scheme, key)
            # A union's branches are the per-subset joins; a single
            # subset yields the projection itself.
            from repro.algebra.expressions import UnionExpr

            if isinstance(expression, UnionExpr):
                branches = list(expression.operands)
            else:
                branches = [expression]
            # Selections need the full join (not the projection onto the
            # key), so peel the projection and keep its operand.
            from repro.algebra.expressions import Project

            branches = [
                branch.operand if isinstance(branch, Project) else branch
                for branch in branches
            ]
            self._branches[key] = branches
        return branches

    def find(
        self, key: frozenset[str], values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        row: dict[str, Hashable] = {a: values[a] for a in key}
        matched = False
        grew = True
        while grew:
            grew = False
            for probe_key in self.scheme.all_keys():
                if not probe_key <= set(row):
                    continue
                condition = {a: row[a] for a in probe_key}
                for branch in self._branches_for(probe_key):
                    selection = Select(branch, condition)
                    result = selection.evaluate(self.state)
                    self.selections_issued += 1
                    if len(result) > 1:
                        raise InconsistentStateError(
                            "a lossless-join selection returned more than "
                            "one tuple; the state is inconsistent"
                        )
                    for match in result:
                        matched = True
                        self.tuples_retrieved += 1
                        merged = _join_partial(row, match)
                        if merged is None:
                            raise InconsistentStateError(
                                "lossless-join selections disagree; the "
                                "state is inconsistent"
                            )
                        if len(merged) > len(row):
                            grew = True
                        row = merged
        return row if matched else None


class GreatestExpressionRILookup:
    """The paper's literal Theorem 3.2 / Example 7 mechanism: evaluate
    ``σ_{K='k'}`` over the join of *every* lossless subset covering
    ``K`` and keep the greatest non-empty one (the expression over the
    largest subset; the paper shows the non-empty results are totally
    informative and the greatest carries the whole representative-
    instance row).

    Exponential in the number of relation schemes — this class exists
    for fidelity and cross-validation; :class:`ExpressionRILookup` is
    the practical backend with identical answers (property-tested).
    """

    def __init__(self, state: DatabaseState, max_relations: int = 12) -> None:
        scheme = state.scheme
        if len(scheme.relations) > max_relations:
            raise NotApplicableError(
                "GreatestExpressionRILookup enumerates every lossless "
                "subset of the scheme (exponential in the relation "
                f"count) and is capped at {max_relations} relation "
                f"schemes; this scheme has {len(scheme.relations)}. "
                "Use ExpressionRILookup, the practical backend with "
                "identical answers, or raise max_relations explicitly."
            )
        self.state = state
        self.scheme = scheme
        self.tuples_retrieved = 0
        self.selections_issued = 0
        self._subsets_by_key: dict[frozenset[str], list] = {}

    def _subsets_for(self, key: frozenset[str]) -> list:
        cached = self._subsets_by_key.get(key)
        if cached is None:
            from itertools import combinations

            from repro.schema.lossless import is_lossless_subset

            members = self.scheme.relations
            cached = []
            for size in range(1, len(members) + 1):
                for combo in combinations(members, size):
                    union = frozenset().union(
                        *(m.attributes for m in combo)
                    )
                    if not key <= union:
                        continue
                    if is_lossless_subset(
                        list(combo), self.scheme.fds, self.scheme.universe
                    ):
                        cached.append(combo)
            self._subsets_by_key[key] = cached
        return cached

    def find(
        self, key: frozenset[str], values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        from repro.algebra.expressions import RelationRef, Select, join_all

        condition = {a: values[a] for a in key}
        merged: Optional[dict[str, Hashable]] = None
        for subset in self._subsets_for(key):
            expression = Select(
                join_all(
                    [RelationRef(m.name, m.attributes) for m in subset]
                ),
                condition,
            )
            result = expression.evaluate(self.state)
            self.selections_issued += 1
            if len(result) > 1:
                raise InconsistentStateError(
                    "a lossless-join selection returned more than one "
                    "tuple; the state is inconsistent"
                )
            for match in result:
                self.tuples_retrieved += 1
                if merged is None:
                    merged = dict(match)
                    continue
                # All non-empty results are fragments of the unique
                # representative-instance row (Lemma 3.2(c)); the
                # greatest expression's output is their union, which we
                # assemble directly.
                joined = _join_partial(merged, match)
                if joined is None:
                    raise InconsistentStateError(
                        "lossless-join selections disagree; the state "
                        "is inconsistent"
                    )
                merged = joined
        return merged


@dataclass(frozen=True)
class InsertTraceStep:
    """One iteration of Algorithm 2's while loop: the key processed,
    the representative-instance row found for it (None when absent),
    and the accumulated tuple ``q`` after the join (None when the join
    emptied and the insert was rejected)."""

    key: frozenset[str]
    found: Optional[dict[str, Hashable]]
    joined: Optional[dict[str, Hashable]]

    def render(self) -> str:
        key_text = fmt_attrs(self.key)
        if self.joined is None:
            return (
                f"key {key_text}: found {self.found} — join EMPTY, output no"
            )
        found_text = self.found if self.found is not None else "(no row)"
        return f"key {key_text}: found {found_text} → q = {self.joined}"


def algebraic_insert(
    state: DatabaseState,
    relation_name: str,
    values: Mapping[str, Hashable],
    *,
    lookup: Optional[RILookup] = None,
    check_scheme: bool = True,
    trace: Optional[list[InsertTraceStep]] = None,
) -> MaintenanceOutcome:
    """Algorithm 2: insert validation for key-equivalent schemes.

    Starting from the keys of the target relation, repeatedly join the
    inserted tuple with the representative-instance row sharing each
    processed key; newly covered attributes may embed further keys,
    which are processed in turn.  The updated state is consistent iff no
    join ever empties (Theorem 3.1).

    Pass a list as ``trace`` to receive one :class:`InsertTraceStep`
    per loop iteration — the paper's Example 6 walk-through, machine
    readable.
    """
    scheme = state.scheme
    if check_scheme:
        require_key_equivalent(scheme)
    member = scheme[relation_name]
    if frozenset(values) != member.attributes:
        raise StateError(
            f"tuple attributes do not match {relation_name}'s scheme"
        )
    if lookup is None:
        lookup = ChaseRILookup(state)

    unprocessed = {frozenset(key) for key in member.keys}
    processed: set[frozenset[str]] = set()
    closure = set(member.attributes)
    joined: dict[str, Hashable] = dict(values)

    while unprocessed:
        key = min(unprocessed, key=lambda k: tuple(sorted(k)))
        row = lookup.find(key, joined)
        if row is not None:
            piece: Mapping[str, Hashable] = row
            covered = frozenset(row)
        else:
            piece = {a: joined[a] for a in key}
            covered = key
        merged = _join_partial(joined, piece)
        if trace is not None:
            trace.append(
                InsertTraceStep(
                    key=key,
                    found=dict(row) if row is not None else None,
                    joined=dict(merged) if merged is not None else None,
                )
            )
        if merged is None:
            return MaintenanceOutcome(
                consistent=False,
                state=None,
                tuples_examined=lookup.tuples_retrieved,
            )
        joined = merged
        closure |= covered
        processed.add(key)
        unprocessed = {
            frozenset(k) for k in scheme.keys_embedded_in(closure)
        } - processed

    return MaintenanceOutcome(
        consistent=True,
        state=state.insert(relation_name, values),
        tuples_examined=lookup.tuples_retrieved,
        witness=joined,
    )
