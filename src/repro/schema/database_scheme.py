"""Database schemes.

A database scheme is a collection of relation schemes whose union is the
universe (paper, Section 2.1).  :class:`DatabaseScheme` additionally
carries each member's declared keys, exposing the induced set of
embedded key dependencies ``F = F1 ∪ ... ∪ Fn`` that the whole paper
quantifies over.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Union

from repro.fd.fdset import FDSet
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, union_all
from repro.foundations.errors import SchemaError
from repro.schema.relation_scheme import RelationScheme

#: Spec entry: attributes, or (attributes, keys).
SpecEntry = Union[AttrsLike, tuple]


class DatabaseScheme:
    """An immutable, ordered collection of relation schemes.

    Names must be unique.  The universe is the union of the member
    attribute sets.  ``fds`` is the union of the members' embedded key
    dependencies — the constraint set the paper assumes throughout.
    """

    __slots__ = ("relations", "_by_name", "universe", "_fds")

    def __init__(self, relations: Iterable[RelationScheme]) -> None:
        members = tuple(relations)
        if not members:
            raise SchemaError("a database scheme needs at least one relation")
        by_name: dict[str, RelationScheme] = {}
        for member in members:
            if not isinstance(member, RelationScheme):
                raise SchemaError(f"not a RelationScheme: {member!r}")
            if member.name in by_name:
                raise SchemaError(f"duplicate relation name: {member.name}")
            by_name[member.name] = member
        object.__setattr__(self, "relations", members)
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(
            self, "universe", union_all(member.attributes for member in members)
        )
        fds = FDSet()
        for member in members:
            fds = fds | member.key_dependencies
        object.__setattr__(self, "_fds", fds)

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("DatabaseScheme is immutable")

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping[str, SpecEntry]) -> "DatabaseScheme":
        """Build from a compact mapping, mirroring the paper's notation::

            DatabaseScheme.from_spec({
                "R1": ("HRC", ["HR"]),
                "R2": ("HTR", ["HT", "HR"]),
                "R4": "CSG",          # all-key
            })
        """
        members = []
        for name, entry in spec.items():
            if isinstance(entry, tuple):
                attributes, keys = entry
                members.append(RelationScheme(name, attributes, keys))
            else:
                members.append(RelationScheme(name, entry))
        return cls(members)

    # -- container protocol ---------------------------------------------------
    def __iter__(self) -> Iterator[RelationScheme]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def __getitem__(self, name: str) -> RelationScheme:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            return item in self._by_name
        return item in self.relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseScheme):
            return NotImplemented
        return self.relations == other.relations

    def __hash__(self) -> int:
        return hash(self.relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(member.name for member in self.relations)

    # -- dependencies ----------------------------------------------------------
    @property
    def fds(self) -> FDSet:
        """The embedded key dependencies ``F = F1 ∪ ... ∪ Fn``."""
        return self._fds

    def fds_of(self, name_or_scheme: Union[str, RelationScheme]) -> FDSet:
        """``F_i``: the key dependencies embedded in one member."""
        member = self._resolve(name_or_scheme)
        return member.key_dependencies

    def fds_excluding(self, name_or_scheme: Union[str, RelationScheme]) -> FDSet:
        """``F − F_j``: the key dependencies of all *other* members, as
        used by the uniqueness-condition independence test (Section 2.7)."""
        excluded = self._resolve(name_or_scheme)
        fds = FDSet()
        for member in self.relations:
            if member.name != excluded.name:
                fds = fds | member.key_dependencies
        return fds

    def _resolve(self, name_or_scheme: Union[str, RelationScheme]) -> RelationScheme:
        if isinstance(name_or_scheme, RelationScheme):
            return self[name_or_scheme.name]
        return self[name_or_scheme]

    # -- keys --------------------------------------------------------------------
    def all_keys(self) -> list[frozenset[str]]:
        """All distinct declared keys across the scheme, sorted."""
        keys = {key for member in self.relations for key in member.keys}
        return sorted(keys, key=lambda key: tuple(sorted(key)))

    def keys_embedded_in(self, attribute_set: AttrsLike) -> list[frozenset[str]]:
        """Declared keys contained in ``attribute_set`` — the "keys
        embedded in closure" step of Algorithm 2."""
        bound = attrs(attribute_set)
        return [key for key in self.all_keys() if key <= bound]

    # -- sub-schemes -----------------------------------------------------------
    def subscheme(
        self, members: Iterable[Union[str, RelationScheme]]
    ) -> "DatabaseScheme":
        """The database scheme consisting of the named members, keeping
        this scheme's member order."""
        wanted = {
            member if isinstance(member, str) else member.name for member in members
        }
        missing = wanted - set(self.names)
        if missing:
            raise SchemaError(f"unknown relations: {sorted(missing)}")
        return DatabaseScheme(
            member for member in self.relations if member.name in wanted
        )

    def named_attribute_sets(self) -> list[tuple[str, frozenset[str]]]:
        """``(name, attributes)`` pairs, e.g. for tableau construction."""
        return [(member.name, member.attributes) for member in self.relations]

    def schemes_containing(self, attribute_set: AttrsLike) -> list[RelationScheme]:
        """Members whose attributes contain ``attribute_set``."""
        bound = attrs(attribute_set)
        return [
            member for member in self.relations if bound <= member.attributes
        ]

    # -- rendering -----------------------------------------------------------------
    def __str__(self) -> str:
        parts = ", ".join(
            f"{member.name}({fmt_attrs(member.attributes)})"
            for member in self.relations
        )
        return "{" + parts + "}"

    def __repr__(self) -> str:
        return f"DatabaseScheme({list(self.relations)!r})"


def scheme(spec: Mapping[str, SpecEntry]) -> DatabaseScheme:
    """Shorthand for :meth:`DatabaseScheme.from_spec`."""
    return DatabaseScheme.from_spec(spec)
