"""3NF synthesis (Bernstein / Biskup–Dayal–Bernstein).

The paper's standing assumption — a cover of the fds embedded as key
dependencies — is exactly what normalization-by-synthesis produces.
This module implements the classic algorithm so that users can go from
a raw fd set to a cover-embedding database scheme and then ask the
paper's questions about it (is it independent? independence-reducible?
ctm?).

Algorithm: take a minimal cover; group fds by equivalent left-hand
sides (X ≡ Y when X → Y and Y → X); emit one relation scheme per group
over the group's attributes, declaring the equivalent left-hand sides
as keys; add a candidate key of the universe when no scheme contains
one (losslessness); drop schemes contained in others.  The result is
dependency-preserving, lossless and in 3NF.
"""

from __future__ import annotations

from typing import Optional

from repro.fd.cover import minimal_cover
from repro.fd.fdset import FDSet, FDsLike
from repro.fd.keys import minimize_superkey
from repro.foundations.attrs import AttrsLike, attrs, union_all
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.operations import normalize_keys
from repro.schema.relation_scheme import RelationScheme


def synthesize_3nf(
    fds: FDsLike,
    universe: Optional[AttrsLike] = None,
    *,
    ensure_lossless: bool = True,
    name_prefix: str = "R",
) -> DatabaseScheme:
    """Synthesize a cover-embedding 3NF database scheme from fds.

    ``universe`` defaults to the attributes the fds mention.  With
    ``ensure_lossless`` a relation scheme over a candidate key of the
    universe is added when no synthesized scheme contains one, making
    the scheme lossless.  Declared keys are normalized to full
    candidate-key sets afterwards, matching the paper's convention.
    """
    fd_set = FDSet(fds)
    full = attrs(universe) if universe is not None else fd_set.attributes
    if not full:
        raise ValueError("cannot synthesize a scheme over an empty universe")
    missing = fd_set.attributes - full
    if missing:
        raise ValueError(
            f"fds mention attributes outside the universe: {sorted(missing)}"
        )

    cover = minimal_cover(fd_set)

    # Group by equivalent left-hand sides.
    groups: list[dict] = []
    for dependency in cover:
        placed = False
        for group in groups:
            representative = group["lhs_list"][0]
            if fd_set.determines(
                representative, dependency.lhs
            ) and fd_set.determines(dependency.lhs, representative):
                if dependency.lhs not in group["lhs_list"]:
                    group["lhs_list"].append(dependency.lhs)
                group["fds"].append(dependency)
                placed = True
                break
        if not placed:
            groups.append(
                {"lhs_list": [dependency.lhs], "fds": [dependency]}
            )

    members: list[RelationScheme] = []
    for index, group in enumerate(groups, start=1):
        attributes = union_all(
            [lhs for lhs in group["lhs_list"]]
            + [dependency.rhs for dependency in group["fds"]]
        )
        members.append(
            RelationScheme(
                f"{name_prefix}{index}", attributes, group["lhs_list"]
            )
        )

    # Attributes mentioned by no fd still belong to the universe; give
    # them a home (they are all-key there).
    leftover = full - union_all(member.attributes for member in members)
    if leftover:
        members.append(
            RelationScheme(f"{name_prefix}{len(members) + 1}", leftover)
        )

    if ensure_lossless:
        universe_key = minimize_superkey(full, full, fd_set)
        if not any(universe_key <= member.attributes for member in members):
            members.append(
                RelationScheme(
                    f"{name_prefix}{len(members) + 1}", universe_key
                )
            )

    # Prune members properly contained in another — but only when the
    # member's key dependencies are implied by the survivors', since a
    # subset relation can carry a key dependency its superset does not
    # (e.g. A→B lives in AB but not in ABC when F = {A→B, BC→A}: A is
    # not a key of ABC).  Blind reduction would lose dependencies.
    kept = list(members)
    for member in list(kept):
        contained = any(
            member.attributes < other.attributes
            for other in kept
            if other is not member
        )
        if not contained:
            continue
        remaining = FDSet()
        for other in kept:
            if other is not member:
                remaining = remaining | other.key_dependencies
        if remaining.covers(member.key_dependencies):
            kept.remove(member)
    return normalize_keys(DatabaseScheme(kept))
