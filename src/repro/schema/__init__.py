"""Database schemes with embedded keys, cover-embedding, lossless
subsets and the SUBSET/AUG/RED operations (paper, Sections 2.1, 2.3, 4.3)."""

from repro.schema.database_scheme import DatabaseScheme, scheme
from repro.schema.decompose import decompose_bcnf
from repro.schema.embedded import (
    declared_keys_cover_fds,
    embedded_cover,
    is_cover_embedding,
)
from repro.schema.lossless import (
    extension_join_subsets_covering,
    is_lossless_subset,
    lossless_subset_attributes,
    minimal_lossless_subsets_covering,
    subset_embedded_fds,
)
from repro.schema.operations import (
    augment,
    is_reduced,
    normalize_keys,
    reduce_scheme,
    subset_family,
)
from repro.schema.relation_scheme import RelationScheme, relation
from repro.schema.synthesis import synthesize_3nf

__all__ = [
    "DatabaseScheme",
    "RelationScheme",
    "augment",
    "declared_keys_cover_fds",
    "decompose_bcnf",
    "embedded_cover",
    "extension_join_subsets_covering",
    "is_cover_embedding",
    "is_lossless_subset",
    "is_reduced",
    "lossless_subset_attributes",
    "minimal_lossless_subsets_covering",
    "normalize_keys",
    "reduce_scheme",
    "relation",
    "scheme",
    "subset_embedded_fds",
    "subset_family",
    "synthesize_3nf",
]
