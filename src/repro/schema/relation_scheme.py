"""Relation schemes with declared keys.

The paper's standing assumption is that a cover of the fds is embedded
in the database scheme *as keys*: each relation scheme carries a set of
declared candidate keys, and the constraint set is the induced set of
key dependencies (Section 2.3).  :class:`RelationScheme` bundles a name,
an attribute set and the declared keys.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.fd.fdset import FDSet
from repro.fd.keydeps import key_dependencies_of
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs
from repro.foundations.errors import SchemaError


class RelationScheme:
    """An immutable relation scheme: name, attributes, declared keys.

    When no keys are declared the scheme is *all-key* (its only key is
    the full attribute set, contributing no non-trivial dependency).
    """

    __slots__ = ("name", "attributes", "keys")

    def __init__(
        self,
        name: str,
        attributes: AttrsLike,
        keys: Optional[Iterable[AttrsLike]] = None,
    ) -> None:
        if not name:
            raise SchemaError("relation scheme name must be non-empty")
        attribute_set = attrs(attributes)
        if not attribute_set:
            raise SchemaError(f"relation scheme {name} has no attributes")
        if keys is None:
            key_sets: tuple[frozenset[str], ...] = (attribute_set,)
        else:
            key_sets = tuple(
                sorted({attrs(key) for key in keys}, key=lambda k: tuple(sorted(k)))
            )
            if not key_sets:
                key_sets = (attribute_set,)
        for key in key_sets:
            if not key:
                raise SchemaError(f"relation scheme {name} declares an empty key")
            if not key <= attribute_set:
                raise SchemaError(
                    f"key {fmt_attrs(key)} of {name} is not contained in "
                    f"{fmt_attrs(attribute_set)}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attribute_set)
        object.__setattr__(self, "keys", key_sets)

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("RelationScheme is immutable")

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationScheme):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.keys == other.keys
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.keys))

    # -- semantics ------------------------------------------------------------
    @property
    def key_dependencies(self) -> FDSet:
        """The key dependencies ``K → attributes − K`` this scheme embeds."""
        return key_dependencies_of(self.attributes, self.keys)

    def is_all_key(self) -> bool:
        """True iff the only declared key is the full attribute set."""
        return self.keys == (self.attributes,)

    def embeds_key(self, key: AttrsLike) -> bool:
        """True iff ``key ⊆ attributes`` (the key *fits inside* the scheme,
        whether or not it is one of this scheme's declared keys)."""
        return attrs(key) <= self.attributes

    def declares_key(self, key: AttrsLike) -> bool:
        """True iff ``key`` is one of this scheme's declared keys."""
        return attrs(key) in self.keys

    def rename(self, name: str) -> "RelationScheme":
        """A copy under a different name."""
        return RelationScheme(name, self.attributes, self.keys)

    # -- rendering ------------------------------------------------------------
    def __str__(self) -> str:
        keys = ", ".join(fmt_attrs(key) for key in self.keys)
        return f"{self.name}({fmt_attrs(self.attributes)}; keys: {keys})"

    def __repr__(self) -> str:
        return (
            f"RelationScheme({self.name!r}, {fmt_attrs(self.attributes)!r}, "
            f"keys={[fmt_attrs(key) for key in self.keys]})"
        )


def relation(
    name: str, attributes: AttrsLike, keys: Optional[Sequence[AttrsLike]] = None
) -> RelationScheme:
    """Shorthand constructor mirroring the paper's ``R1(HRC)`` notation:
    ``relation("R1", "HRC", ["HR"])``."""
    return RelationScheme(name, attributes, keys)
