"""Scheme operations: SUBSET, AUG and RED (paper, Section 4.3).

``SUBSET(R)`` is the family of non-empty subsets of members of ``R``;
``AUG(R) = R ∪ S`` for some ``S ⊆ SUBSET(R)``; ``RED(R)`` removes
members that are proper subsets of other members.  Theorem 4.3 shows the
class of independence-reducible schemes is closed under augmentation,
and Corollary 4.2 that reducibility is invariant under reduction.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Sequence, Tuple

from repro.fd.keys import candidate_keys
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs
from repro.foundations.errors import SchemaError
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme


def subset_family(scheme: DatabaseScheme) -> list[frozenset[str]]:
    """``SUBSET(R)``: every non-empty subset of some member's attributes.

    Exponential in member width by definition; intended for the small
    schemes of examples and tests.
    """
    subsets: set[frozenset[str]] = set()
    for member in scheme.relations:
        ordered = sorted(member.attributes)
        for size in range(1, len(ordered) + 1):
            for combo in combinations(ordered, size):
                subsets.add(frozenset(combo))
    return sorted(subsets, key=lambda s: (len(s), tuple(sorted(s))))


def augment(
    scheme: DatabaseScheme,
    additions: Iterable[Tuple[str, AttrsLike]],
    keys_for: Optional[dict[str, Sequence[AttrsLike]]] = None,
) -> DatabaseScheme:
    """``AUG(R)``: add new relation schemes, each a subset of an existing
    member.

    Declared keys for an addition are taken from ``keys_for`` when given,
    otherwise derived as the candidate keys of the attribute set with
    respect to the scheme's embedded key dependencies — so the augmented
    scheme still embeds (a cover of) the same constraint set.
    """
    new_members = list(scheme.relations)
    for name, attribute_spec in additions:
        attribute_set = attrs(attribute_spec)
        if not any(
            attribute_set <= member.attributes for member in scheme.relations
        ):
            raise SchemaError(
                f"augmentation {fmt_attrs(attribute_set)} is not a subset of "
                "any existing relation scheme"
            )
        if keys_for and name in keys_for:
            keys: Sequence[AttrsLike] = keys_for[name]
        else:
            keys = candidate_keys(attribute_set, scheme.fds)
        new_members.append(RelationScheme(name, attribute_set, keys))
    return DatabaseScheme(new_members)


def reduce_scheme(scheme: DatabaseScheme) -> DatabaseScheme:
    """``RED(R)``: drop members that are proper subsets of another member
    (and later duplicates of an identical attribute set)."""
    kept: list[RelationScheme] = []
    seen_attribute_sets: set[frozenset[str]] = set()
    for member in scheme.relations:
        if member.attributes in seen_attribute_sets:
            continue
        properly_contained = any(
            member.attributes < other.attributes for other in scheme.relations
        )
        if not properly_contained:
            kept.append(member)
            seen_attribute_sets.add(member.attributes)
    return DatabaseScheme(kept)


def normalize_keys(scheme: DatabaseScheme) -> DatabaseScheme:
    """Redeclare every member's keys as its full candidate-key set with
    respect to the scheme's embedded key dependencies.

    The paper's notion of "keys embedded in R" means *all* candidate
    keys under ``F⁺``, not just the generators of ``F``; under-declared
    derived keys would weaken the splitness test (Lemma 3.8 quantifies
    over the key dependencies embedded in ``W``) and hide lossless
    subsets.  Since a derived key's dependency is already implied,
    normalization never changes ``F⁺`` and is idempotent.
    """
    fds = scheme.fds
    members = [
        RelationScheme(
            member.name,
            member.attributes,
            candidate_keys(member.attributes, fds),
        )
        for member in scheme.relations
    ]
    return DatabaseScheme(members)


def is_reduced(scheme: DatabaseScheme) -> bool:
    """True iff no member is a proper subset of another member."""
    for member in scheme.relations:
        for other in scheme.relations:
            if member.name != other.name and member.attributes < other.attributes:
                return False
    return True
