"""Cover-embedding.

A database scheme ``R`` is *cover embedding* with respect to fds ``F``
when some cover ``G`` of ``F`` has each fd embedded in some member of
``R`` (paper, Section 2.3).  The canonical test: the union over members
of covers of the projections ``F⁺|Ri`` is itself a cover of ``F``.
"""

from __future__ import annotations

from typing import Iterable

from repro.fd.fdset import FDSet, FDsLike
from repro.fd.projection import project_fds
from repro.foundations.attrs import AttrsLike, attrs
from repro.schema.database_scheme import DatabaseScheme


def embedded_cover(schemes: Iterable[AttrsLike], fds: FDsLike) -> FDSet:
    """The union of projection covers ``∪i cover(F⁺|Ri)`` — the largest
    embedded fd set derivable from ``F``."""
    fd_set = FDSet(fds)
    union = FDSet()
    for scheme in schemes:
        union = union | project_fds(fd_set, attrs(scheme))
    return union


def is_cover_embedding(schemes: Iterable[AttrsLike], fds: FDsLike) -> bool:
    """True iff a cover of ``fds`` is embedded in the schemes."""
    fd_set = FDSet(fds)
    return embedded_cover(schemes, fd_set).covers(fd_set)


def declared_keys_cover_fds(scheme: DatabaseScheme, fds: FDsLike) -> bool:
    """True iff the scheme's declared key dependencies form a cover of
    ``fds`` — i.e. the declared keys genuinely embed the constraint set,
    which is the paper's standing assumption."""
    return scheme.fds.equivalent_to(FDSet(fds))
