"""BCNF decomposition.

The paper's desirable classes live among *BCNF* cover-embedding schemes
(key-equivalent schemes are BCNF by Lemma 3.1; the Theorem 5.2/5.3
containments are stated for BCNF schemes).  This module provides the
classic lossless BCNF decomposition so users can drive an arbitrary
relation into the paper's setting:

    while some relation scheme violates BCNF, pick a violating fd
    ``X → Y`` (X not a superkey) and split the scheme into
    ``X⁺ ∩ R`` and ``(R − X⁺) ∪ X``.

The result is lossless by construction but, unlike 3NF synthesis, not
always dependency-preserving — the classic ``CSZ`` example
(``CS → Z, Z → C``) loses ``CS → Z``; callers can check with
:func:`repro.schema.embedded.is_cover_embedding`.
"""

from __future__ import annotations

from typing import Optional

from repro.fd.fdset import FDSet, FDsLike
from repro.fd.keys import is_superkey
from repro.fd.projection import project_fds
from repro.foundations.attrs import AttrsLike, attrs
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.operations import normalize_keys
from repro.schema.relation_scheme import RelationScheme


def _find_violation(
    scheme_attrs: frozenset[str], fds: FDSet
) -> Optional[tuple[frozenset[str], frozenset[str]]]:
    """A BCNF violation ``(X, X⁺ ∩ R)`` in the scheme, or None.

    Violations are drawn from the projected cover so that dependencies
    routed through external attributes are seen; the widest right-hand
    side is preferred to keep the decomposition shallow.
    """
    best: Optional[tuple[frozenset[str], frozenset[str]]] = None
    for dependency in project_fds(fds, scheme_attrs).nontrivial():
        if is_superkey(dependency.lhs, scheme_attrs, fds):
            continue
        reach = fds.closure(dependency.lhs) & scheme_attrs
        if best is None or len(reach) > len(best[1]):
            best = (dependency.lhs, reach)
    return best


def decompose_bcnf(
    universe: AttrsLike,
    fds: FDsLike,
    name_prefix: str = "R",
    max_fragments: int = 64,
) -> DatabaseScheme:
    """Losslessly decompose ``universe`` into BCNF relation schemes.

    Fragment keys are the full candidate-key sets under ``fds``
    (normalized), matching the paper's embedded-keys convention.
    ``max_fragments`` guards against pathological blowup.
    """
    fd_set = FDSet(fds)
    full = attrs(universe)
    if not full:
        raise ValueError("cannot decompose an empty universe")
    missing = fd_set.attributes - full
    if missing:
        raise ValueError(
            f"fds mention attributes outside the universe: {sorted(missing)}"
        )

    fragments: list[frozenset[str]] = [full]
    finished: list[frozenset[str]] = []
    while fragments:
        if len(fragments) + len(finished) > max_fragments:
            raise ValueError("decomposition exceeded max_fragments")
        current = fragments.pop()
        violation = _find_violation(current, fd_set)
        if violation is None:
            finished.append(current)
            continue
        lhs, reach = violation
        fragments.append(reach)
        fragments.append((current - reach) | lhs)

    # Drop fragments contained in others (pure attribute subsets carry
    # no information in a lossless decomposition).
    reduced = [
        fragment
        for fragment in finished
        if not any(
            fragment < other for other in finished if other is not fragment
        )
    ]
    # Deduplicate identical fragments.
    unique: list[frozenset[str]] = []
    for fragment in reduced:
        if fragment not in unique:
            unique.append(fragment)
    unique.sort(key=lambda fragment: tuple(sorted(fragment)))
    members = [
        RelationScheme(f"{name_prefix}{index}", fragment)
        for index, fragment in enumerate(unique, start=1)
    ]
    return normalize_keys(DatabaseScheme(members))
