"""Lossless subsets covering an attribute set.

``S ⊆ R`` is a *lossless subset of R covering X* when ``∪S ⊇ X`` and
``S`` is lossless with respect to the fds embedded in ``S`` (paper,
Section 2.3).  Corollary 3.1(b) computes total projections over
key-equivalent schemes as unions of projections of joins of such
subsets, so enumerating the *minimal* ones is a core operation.

Two subtleties fix the semantics:

* "the fds embedded in S" means the projection ``F⁺|∪S`` of the *whole*
  scheme's dependency closure onto the subset's attribute union — not
  merely the members' own key dependencies.  Example 4 forces this
  reading: ``{AB, AC, EB, EC}`` is a lossless subset covering ``AE``
  only because ``BC → AE ∈ F⁺`` (routed through the attribute ``D`` of
  relations outside the subset).  The test below therefore chases
  ``T_S`` padded to the full universe under the full ``F`` and accepts
  when some row's distinguished-variable set covers ``∪S`` — chasing
  with the padding attributes as existentials computes exactly
  ``F⁺|∪S`` implication.
* Subsets built by *rooted key-growth* (start anywhere, absorb a
  relation once one of its declared keys is inside the accumulated
  attributes) are always lossless and correspond to the sequential
  extension joins of Section 2.6; they are complete for split-free
  schemes (Corollary 3.2(a)) but miss "converging" subsets such as the
  Example 4 one, whose join assembles a split key from fragments.  Both
  enumerations are exposed: the exact exponential one and the rooted
  polynomial one.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs, union_all
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme
from repro.tableau.chase import chase
from repro.tableau.scheme_tableau import scheme_tableau
from repro.tableau.symbols import is_dv


def subset_embedded_fds(members: Sequence[RelationScheme]) -> FDSet:
    """The members' own key dependencies (NOT the full ``F⁺|∪S``; see the
    module docstring — this weaker set drives the rooted construction)."""
    fds = FDSet()
    for member in members:
        fds = fds | member.key_dependencies
    return fds


def is_lossless_subset(
    members: Sequence[RelationScheme],
    fds: Optional[FDsLike] = None,
    universe: Optional[AttrsLike] = None,
) -> bool:
    """Is this set of relation schemes a lossless subset?

    ``fds`` should be the *whole* scheme's embedded key dependencies
    (defaults to the members' own when omitted); ``universe`` the whole
    scheme's universe (defaults to the union of the full fd set's
    attributes and the members').  The test chases ``T_S`` padded to the
    universe under ``fds`` and accepts when some row carries
    distinguished variables on all of ``∪S`` — i.e. ``S`` is lossless
    with respect to ``F⁺|∪S``.
    """
    if not members:
        return False
    fd_set = subset_embedded_fds(members) if fds is None else FDSet(fds)
    joint = union_all(member.attributes for member in members)
    full = (
        attrs(universe)
        if universe is not None
        else joint | fd_set.attributes
    )
    tableau = scheme_tableau(
        [(member.name, member.attributes) for member in members], full
    )
    chased = chase(tableau, fd_set).tableau
    for row in chased:
        if all(is_dv(row[a]) for a in joint):
            return True
    return False


def minimal_lossless_subsets_covering(
    scheme: DatabaseScheme,
    target: AttrsLike,
    max_relations: int = 14,
) -> list[tuple[RelationScheme, ...]]:
    """All minimal lossless subsets of ``scheme`` covering ``target``
    (exact; exponential in the number of relation schemes).

    Subsets are enumerated by increasing size so supersets of found
    subsets are pruned; each candidate is tested with the chase-based
    losslessness check under the scheme's full dependency set.  Raises
    ``ValueError`` beyond ``max_relations`` members — use
    :func:`extension_join_subsets_covering` for large split-free inputs.
    """
    if len(scheme.relations) > max_relations:
        raise ValueError(
            "exact lossless-subset enumeration capped at "
            f"{max_relations} relations; use extension_join_subsets_covering"
        )
    target_set = attrs(target)
    members = scheme.relations
    found: list[frozenset[int]] = []
    results: list[tuple[RelationScheme, ...]] = []
    for size in range(1, len(members) + 1):
        for combo in combinations(range(len(members)), size):
            chosen = frozenset(combo)
            if any(previous <= chosen for previous in found):
                continue
            subset = tuple(members[i] for i in combo)
            union = union_all(member.attributes for member in subset)
            if not target_set <= union:
                continue
            if is_lossless_subset(subset, scheme.fds, scheme.universe):
                found.append(chosen)
                results.append(subset)
    return sorted(results, key=lambda subset: tuple(m.name for m in subset))


def extension_join_subsets_covering(
    scheme: DatabaseScheme, target: AttrsLike
) -> list[tuple[RelationScheme, ...]]:
    """Minimal subsets constructible by rooted key-growth covering the
    target — the subsets realizable as sequential extension joins
    (Section 2.6).

    Polynomial-ish and always sound (every result is lossless); complete
    for split-free schemes (Corollary 3.2(a)) and for the induced scheme
    of Theorem 4.1, where Sagiv's evaluation uses exactly these access
    paths.
    """
    target_set = attrs(target)
    members = scheme.relations
    index_of = {member.name: i for i, member in enumerate(members)}
    found: set[frozenset[str]] = set()
    visited: set[frozenset[str]] = set()

    def explore(current_names: frozenset[str], current_attrs: frozenset[str]) -> None:
        if current_names in visited:
            return
        visited.add(current_names)
        if target_set <= current_attrs:
            found.add(current_names)
            return
        for member in members:
            if member.name in current_names:
                continue
            if any(key <= current_attrs for key in member.keys):
                explore(
                    current_names | {member.name},
                    current_attrs | member.attributes,
                )

    for root in members:
        explore(frozenset({root.name}), root.attributes)

    minimal = [
        chosen
        for chosen in sorted(found, key=sorted)
        if not any(other < chosen for other in found)
    ]
    subsets = [
        tuple(
            sorted((scheme[name] for name in chosen), key=lambda m: index_of[m.name])
        )
        for chosen in minimal
    ]
    return sorted(subsets, key=lambda subset: tuple(m.name for m in subset))


def lossless_subset_attributes(
    subset: Sequence[RelationScheme],
) -> frozenset[str]:
    """``∪S`` for a subset of relation schemes."""
    return union_all(member.attributes for member in subset)
