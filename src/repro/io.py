"""JSON serialization for schemes and states.

Formats (used by the CLI and handy for fixtures):

Scheme::

    {
      "relations": {
        "R1": {"attributes": ["H", "R", "C"], "keys": [["H", "R"]]},
        "R4": {"attributes": "CSG", "keys": ["CS"]}
      }
    }

``attributes`` and each key accept either a list of attribute names or
the paper's compact single-character string.  ``keys`` may be omitted
for an all-key relation.

State::

    {"R1": [{"H": "9am", "R": "DC128", "C": "CS445"}], "R4": []}
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Union

from repro.foundations.attrs import attrs, sorted_attrs
from repro.foundations.errors import SchemaError, StateError
from repro.schema.database_scheme import DatabaseScheme
from repro.schema.relation_scheme import RelationScheme
from repro.state.database_state import DatabaseState

PathLike = Union[str, Path]


def dump_json_atomic(data: Any, path: PathLike) -> None:
    """Write ``data`` as JSON so that a crash leaves either the old file
    or the new one, never a torn mixture: write to a sibling temp file,
    fsync it, then ``os.replace`` over the destination.

    The durable store's snapshots depend on this guarantee; the plain
    ``dump_scheme`` / ``dump_state`` helpers use it too so every file
    this module produces is crash-clean."""
    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def load_json(path: PathLike) -> Any:
    with open(path) as handle:
        return json.load(handle)


# -- schemes ----------------------------------------------------------------


def scheme_to_dict(scheme: DatabaseScheme) -> dict[str, Any]:
    """Serialize a scheme to the JSON structure above."""
    return {
        "relations": {
            member.name: {
                "attributes": sorted_attrs(member.attributes),
                "keys": [sorted_attrs(key) for key in member.keys],
            }
            for member in scheme.relations
        }
    }


def scheme_from_dict(data: Mapping[str, Any]) -> DatabaseScheme:
    """Deserialize a scheme; raises :class:`SchemaError` on malformed
    input."""
    if not isinstance(data, Mapping) or "relations" not in data:
        raise SchemaError("scheme JSON must be an object with 'relations'")
    relations = data["relations"]
    if not isinstance(relations, Mapping) or not relations:
        raise SchemaError("'relations' must be a non-empty object")
    members = []
    for name, spec in relations.items():
        if isinstance(spec, str):
            members.append(RelationScheme(name, attrs(spec)))
            continue
        if not isinstance(spec, Mapping) or "attributes" not in spec:
            raise SchemaError(
                f"relation {name!r} needs an 'attributes' field"
            )
        keys = spec.get("keys")
        members.append(
            RelationScheme(
                name,
                attrs(spec["attributes"]),
                None if keys is None else [attrs(key) for key in keys],
            )
        )
    return DatabaseScheme(members)


def load_scheme(path: PathLike) -> DatabaseScheme:
    """Load a scheme from a JSON file."""
    with open(path) as handle:
        return scheme_from_dict(json.load(handle))


def dump_scheme(scheme: DatabaseScheme, path: PathLike) -> None:
    """Write a scheme to a JSON file (atomically)."""
    dump_json_atomic(scheme_to_dict(scheme), path)


# -- states -------------------------------------------------------------------


def state_to_dict(state: DatabaseState) -> dict[str, Any]:
    """Serialize a state to ``{relation: [tuple, ...]}``."""
    return {
        name: sorted(
            (dict(values) for values in relation),
            key=lambda row: tuple(sorted(row.items())),
        )
        for name, relation in state
    }


def state_from_dict(
    scheme: DatabaseScheme, data: Mapping[str, Any]
) -> DatabaseState:
    """Deserialize a state over ``scheme``."""
    if not isinstance(data, Mapping):
        raise StateError("state JSON must be an object")
    return DatabaseState(scheme, data)


def load_state(scheme: DatabaseScheme, path: PathLike) -> DatabaseState:
    """Load a state (over a known scheme) from a JSON file."""
    with open(path) as handle:
        return state_from_dict(scheme, json.load(handle))


def dump_state(state: DatabaseState, path: PathLike) -> None:
    """Write a state to a JSON file (atomically)."""
    dump_json_atomic(state_to_dict(state), path)
