"""Relations: finite sets of total tuples on a relation scheme.

Tuples are plain ``{attribute: value}`` mappings; internally each is
normalized to a value vector in the scheme's canonical attribute order,
so relations behave as proper sets with cheap hashing (paper, Section
2.1: a relation is a set of total tuples).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.fd.fd import FD
from repro.fd.fdset import FDSet, FDsLike
from repro.foundations.attrs import AttrsLike, attrs, sorted_attrs
from repro.foundations.errors import StateError

#: A tuple given by the user: attribute → constant.
TupleLike = Mapping[str, Hashable]


class Relation:
    """An immutable set of total tuples over a fixed attribute set."""

    __slots__ = ("attributes", "_order", "_rows")

    def __init__(
        self, attributes: AttrsLike, tuples: Iterable[TupleLike] = ()
    ) -> None:
        attribute_set = attrs(attributes)
        if not attribute_set:
            raise StateError("a relation needs at least one attribute")
        order = tuple(sorted_attrs(attribute_set))
        rows: set[tuple[Hashable, ...]] = set()
        for values in tuples:
            rows.add(_normalize(values, attribute_set, order))
        object.__setattr__(self, "attributes", attribute_set)
        object.__setattr__(self, "_order", order)
        object.__setattr__(self, "_rows", frozenset(rows))

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("Relation is immutable")

    # -- vector access (the algebra/chase fast paths) --------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        """The canonical (sorted) attribute order of the value vectors."""
        return self._order

    @property
    def row_vectors(self) -> frozenset[tuple[Hashable, ...]]:
        """The stored tuples as value vectors in ``columns`` order."""
        return self._rows

    @classmethod
    def from_vectors(
        cls,
        attributes: AttrsLike,
        order: tuple[str, ...],
        rows: Iterable[tuple[Hashable, ...]],
    ) -> "Relation":
        """Build a relation from value vectors laid out in ``order``.

        The fast constructor behind the tuple-vector evaluation
        pipeline: vectors already in canonical order are adopted
        directly; otherwise they are permuted once.  Callers are trusted
        to pass vectors of the right width.
        """
        attribute_set = attrs(attributes)
        if not attribute_set:
            raise StateError("a relation needs at least one attribute")
        canonical = tuple(sorted_attrs(attribute_set))
        if tuple(order) == canonical:
            vectors = frozenset(rows)
        else:
            if frozenset(order) != attribute_set:
                raise StateError(
                    f"vector order {list(order)} does not match relation "
                    f"attributes {sorted(attribute_set)}"
                )
            permutation = [order.index(a) for a in canonical]
            vectors = frozenset(
                tuple(row[i] for i in permutation) for row in rows
            )
        return _from_rows(attribute_set, canonical, vectors)

    # -- container protocol ---------------------------------------------------
    def __iter__(self) -> Iterator[dict[str, Hashable]]:
        for row in sorted(self._rows, key=repr):
            yield dict(zip(self._order, row))

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, values: TupleLike) -> bool:
        try:
            return _normalize(values, self.attributes, self._order) in self._rows
        except StateError:
            return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.attributes == other.attributes and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.attributes, self._rows))

    # -- algebra-lite (full algebra lives in repro.algebra) --------------------
    def with_tuple(self, values: TupleLike) -> "Relation":
        """A copy with one more tuple."""
        row = _normalize(values, self.attributes, self._order)
        return _from_rows(self.attributes, self._order, self._rows | {row})

    def without_tuple(self, values: TupleLike) -> "Relation":
        """A copy with one tuple removed (no error if absent)."""
        row = _normalize(values, self.attributes, self._order)
        return _from_rows(self.attributes, self._order, self._rows - {row})

    def union(self, other: "Relation") -> "Relation":
        """Set union; both relations must share the attribute set."""
        if self.attributes != other.attributes:
            raise StateError("union of relations over different attributes")
        return _from_rows(self.attributes, self._order, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; both relations must share the attribute set."""
        if self.attributes != other.attributes:
            raise StateError("difference of relations over different attributes")
        return _from_rows(self.attributes, self._order, self._rows - other._rows)

    # -- dependency satisfaction ------------------------------------------------
    def satisfies_fd(self, dependency: FD) -> bool:
        """True iff no two tuples agree on ``lhs`` but differ on ``rhs``.

        Dependencies not embedded in this relation's attributes are
        vacuously satisfied (a relation only constrains its own columns).
        """
        if not dependency.is_embedded_in(self.attributes):
            return True
        lhs = sorted_attrs(dependency.lhs)
        rhs = sorted_attrs(dependency.rhs)
        lhs_index = [self._order.index(a) for a in lhs]
        rhs_index = [self._order.index(a) for a in rhs]
        seen: dict[tuple, tuple] = {}
        for row in self._rows:
            left = tuple(row[i] for i in lhs_index)
            right = tuple(row[i] for i in rhs_index)
            previous = seen.setdefault(left, right)
            if previous != right:
                return False
        return True

    def satisfies(self, fds: FDsLike) -> bool:
        """True iff every embedded fd of ``fds`` holds in this relation."""
        return all(self.satisfies_fd(dependency) for dependency in FDSet(fds))

    # -- rendering -------------------------------------------------------------
    def __str__(self) -> str:
        header = " ".join(self._order)
        lines = [header]
        for values in self:
            lines.append(" ".join(str(values[a]) for a in self._order))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Relation({''.join(self._order)}, |tuples|={len(self._rows)})"


def _normalize(
    values: TupleLike,
    attribute_set: frozenset[str],
    order: tuple[str, ...],
) -> tuple[Hashable, ...]:
    if frozenset(values) != attribute_set:
        raise StateError(
            f"tuple attributes {sorted(values)} do not match relation "
            f"attributes {sorted(attribute_set)}"
        )
    return tuple(values[a] for a in order)


def _from_rows(
    attribute_set: frozenset[str],
    order: tuple[str, ...],
    rows: frozenset[tuple[Hashable, ...]],
) -> Relation:
    relation = Relation.__new__(Relation)
    object.__setattr__(relation, "attributes", attribute_set)
    object.__setattr__(relation, "_order", order)
    object.__setattr__(relation, "_rows", rows)
    return relation
