"""Weak-instance consistency (paper, Sections 2.5 and 2.7).

A state is *consistent* when a weak instance exists — equivalently when
the chase of its state tableau does not find a contradiction (Honeyman).
``CHASE_F(T_r)`` is then the *representative instance*, and the X-total
projection ``[X]`` is the restricted projection of its total-on-X rows.

These chase-based routines are the library's ground-truth baseline: the
paper's Algorithms 1, 2 and 5 are validated against them throughout the
test suite and raced against them in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from repro.fd.fdset import FDSet, FDsLike
from repro.fd.projection import project_fds
from repro.foundations.attrs import AttrsLike, attrs
from repro.foundations.errors import InconsistentStateError
from repro.state.database_state import DatabaseState
from repro.tableau.chase import ChaseResult, chase_naive, chase_relations
from repro.tableau.tableau import Tableau


def _constraints(state: DatabaseState, fds: Optional[FDsLike]) -> FDSet:
    """Default to the scheme's embedded key dependencies."""
    return state.scheme.fds if fds is None else FDSet(fds)


def is_locally_consistent(
    state: DatabaseState, fds: Optional[FDsLike] = None
) -> bool:
    """LSAT membership: every relation satisfies its projected fds
    ``F⁺|Ri`` (paper, Section 2.7)."""
    constraint_set = _constraints(state, fds)
    for name, relation in state:
        projected = project_fds(constraint_set, relation.attributes)
        if not relation.satisfies(projected):
            return False
    return True


def satisfies_embedded_keys(state: DatabaseState) -> bool:
    """The cheaper local check the paper's schemes actually enforce:
    every relation satisfies its *declared* key dependencies."""
    for name, relation in state:
        if not relation.satisfies(state.scheme[name].key_dependencies):
            return False
    return True


def chase_state(state: DatabaseState, fds: Optional[FDsLike] = None) -> ChaseResult:
    """``CHASE_F(T_r)`` with full result (tableau, consistency, steps).

    Runs the worklist engine directly over the stored value vectors —
    the state tableau is never materialized row-dict by row-dict (see
    :func:`repro.tableau.chase.chase_relations`)."""
    return chase_relations(
        state.scheme.universe,
        (
            (name, relation.columns, relation.row_vectors)
            for name, relation in state
        ),
        _constraints(state, fds),
    )


def chase_state_naive(
    state: DatabaseState, fds: Optional[FDsLike] = None
) -> ChaseResult:
    """``CHASE_F(T_r)`` via the original full-sweep pipeline: build the
    state tableau, then chase it with the naive engine.  The
    differential-test oracle and benchmark baseline for
    :func:`chase_state`."""
    return chase_naive(state.tableau(), _constraints(state, fds))


def is_consistent(state: DatabaseState, fds: Optional[FDsLike] = None) -> bool:
    """WSAT membership: does a weak instance exist for the state?"""
    return chase_state(state, fds).consistent


def representative_instance(
    state: DatabaseState, fds: Optional[FDsLike] = None
) -> Tableau:
    """The representative instance ``CHASE_F(T_r)``.

    Raises :class:`InconsistentStateError` when the state has no weak
    instance.
    """
    result = chase_state(state, fds)
    if not result.consistent:
        raise InconsistentStateError("state admits no weak instance")
    return result.tableau


def total_projection(
    state: DatabaseState,
    attributes: AttrsLike,
    fds: Optional[FDsLike] = None,
) -> set[tuple[Hashable, ...]]:
    """``[X]``: the X-total projection of the representative instance,
    as value tuples in canonical attribute order."""
    return representative_instance(state, fds).total_projection(attrs(attributes))


@dataclass(frozen=True)
class MaintenanceOutcome:
    """Result of checking one insertion ``<r, t>``: the decision, the new
    state when accepted, and instrumentation counters used by the
    constant-time-maintainability experiments.

    ``witness`` is the extended tuple ``q`` the paper's Algorithms 2 and
    5 output alongside *yes* — the inserted tuple joined with everything
    the state already knows about its keys."""

    consistent: bool
    state: Optional[DatabaseState]
    tuples_examined: int
    chase_steps: int = 0
    witness: Optional[dict[str, Hashable]] = None

    def __bool__(self) -> bool:
        return self.consistent

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready rendering of the decision and its diagnostics
        (the state itself is omitted — callers serialize it separately).

        Shared by the CLI's rejection output and the WAL's durable
        ``reject`` records, so a refused insertion keeps its diagnosis
        wherever it surfaces.  Witness values outside the JSON scalar
        types are rendered with ``str``."""
        witness = None
        if self.witness is not None:
            witness = {
                attribute: value
                if isinstance(value, (str, int, float, bool, type(None)))
                else str(value)
                for attribute, value in self.witness.items()
            }
        return {
            "consistent": self.consistent,
            "tuples_examined": self.tuples_examined,
            "chase_steps": self.chase_steps,
            "witness": witness,
        }


def maintain_by_chase(
    state: DatabaseState,
    relation_name: str,
    values: dict[str, Hashable],
    fds: Optional[FDsLike] = None,
) -> MaintenanceOutcome:
    """Baseline solution to the maintenance problem: insert and re-chase
    the whole state.  Correct for every scheme, but examines every stored
    tuple — the benchmark foil for Algorithms 2 and 5."""
    updated = state.insert(relation_name, values)
    result = chase_state(updated, fds)
    return MaintenanceOutcome(
        consistent=result.consistent,
        state=updated if result.consistent else None,
        tuples_examined=updated.total_tuples(),
        chase_steps=result.steps,
    )
