"""Database states and weak-instance consistency (paper, Sections 2.1,
2.5, 2.7)."""

from repro.state.consistency import (
    MaintenanceOutcome,
    chase_state,
    chase_state_naive,
    is_consistent,
    is_locally_consistent,
    maintain_by_chase,
    representative_instance,
    satisfies_embedded_keys,
    total_projection,
)
from repro.state.database_state import DatabaseState, state_of, tuples_from_rows
from repro.state.relation import Relation, TupleLike

__all__ = [
    "DatabaseState",
    "MaintenanceOutcome",
    "Relation",
    "TupleLike",
    "chase_state",
    "chase_state_naive",
    "is_consistent",
    "is_locally_consistent",
    "maintain_by_chase",
    "representative_instance",
    "satisfies_embedded_keys",
    "state_of",
    "total_projection",
    "tuples_from_rows",
]
