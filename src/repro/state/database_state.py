"""Database states.

A database state maps each relation scheme of a database scheme to a
relation on it (paper, Section 2.1).  States are immutable; updates
return new states, which keeps the maintenance algorithms honest about
what they read and write.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.foundations.errors import StateError
from repro.schema.database_scheme import DatabaseScheme
from repro.state.relation import Relation, TupleLike
from repro.tableau.state_tableau import state_tableau
from repro.tableau.tableau import Tableau


class DatabaseState:
    """An immutable assignment of a relation to every relation scheme."""

    __slots__ = ("scheme", "_relations")

    def __init__(
        self,
        scheme: DatabaseScheme,
        relations: Optional[Mapping[str, Iterable[TupleLike]]] = None,
    ) -> None:
        object.__setattr__(self, "scheme", scheme)
        provided = dict(relations or {})
        unknown = set(provided) - set(scheme.names)
        if unknown:
            raise StateError(f"state mentions unknown relations: {sorted(unknown)}")
        table: dict[str, Relation] = {}
        for member in scheme.relations:
            tuples = provided.get(member.name, ())
            if isinstance(tuples, Relation):
                if tuples.attributes != member.attributes:
                    raise StateError(
                        f"relation for {member.name} has wrong attributes"
                    )
                table[member.name] = tuples
            else:
                table[member.name] = Relation(member.attributes, tuples)
        object.__setattr__(self, "_relations", table)

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("DatabaseState is immutable")

    # -- access ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise StateError(f"no relation named {name!r}") from None

    def __iter__(self) -> Iterator[Tuple[str, Relation]]:
        for member in self.scheme.relations:
            yield member.name, self._relations[member.name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self.scheme == other.scheme and self._relations == other._relations

    def __hash__(self) -> int:
        return hash((self.scheme, tuple(sorted(self._relations.items()))))

    def total_tuples(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(relation) for _, relation in self)

    def is_empty(self) -> bool:
        return self.total_tuples() == 0

    # -- updates -------------------------------------------------------------------
    def insert(self, name: str, values: TupleLike) -> "DatabaseState":
        """A new state with ``values`` inserted into relation ``name``."""
        updated = dict(self._relations)
        updated[name] = self[name].with_tuple(values)
        return _from_relations(self.scheme, updated)

    def delete(self, name: str, values: TupleLike) -> "DatabaseState":
        """A new state with ``values`` removed from relation ``name``."""
        updated = dict(self._relations)
        updated[name] = self[name].without_tuple(values)
        return _from_relations(self.scheme, updated)

    def union(self, other: "DatabaseState") -> "DatabaseState":
        """Relation-wise union of two states on the same scheme."""
        if self.scheme != other.scheme:
            raise StateError("union of states over different schemes")
        merged = {
            name: relation.union(other[name]) for name, relation in self
        }
        return _from_relations(self.scheme, merged)

    def difference(self, other: "DatabaseState") -> "DatabaseState":
        """Relation-wise difference of two states on the same scheme."""
        if self.scheme != other.scheme:
            raise StateError("difference of states over different schemes")
        reduced = {
            name: relation.difference(other[name]) for name, relation in self
        }
        return _from_relations(self.scheme, reduced)

    # -- tableaux ---------------------------------------------------------------------
    def tableau(self) -> Tableau:
        """The state tableau ``T_r`` (paper, Section 2.2)."""
        return state_tableau(
            (
                (name, self.scheme[name].attributes, list(relation))
                for name, relation in self
            ),
            universe=self.scheme.universe,
        )

    # -- rendering -------------------------------------------------------------------
    def __str__(self) -> str:
        blocks = []
        for name, relation in self:
            blocks.append(f"{name}:\n{relation}")
        return "\n\n".join(blocks)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}={len(relation)}" for name, relation in self)
        return f"DatabaseState({sizes})"


def _from_relations(
    scheme: DatabaseScheme, relations: dict[str, Relation]
) -> DatabaseState:
    state = DatabaseState.__new__(DatabaseState)
    object.__setattr__(state, "scheme", scheme)
    object.__setattr__(state, "_relations", relations)
    return state


def state_of(
    scheme: DatabaseScheme, **relations: Iterable[TupleLike]
) -> DatabaseState:
    """Keyword-argument convenience constructor:
    ``state_of(R, R1=[{"A": 1, "B": 2}])``."""
    return DatabaseState(scheme, relations)


def tuples_from_rows(
    attributes: str, rows: Iterable[Iterable[Hashable]]
) -> list[dict[str, Hashable]]:
    """Build tuple mappings from positional rows, mirroring how the paper
    writes relations: ``tuples_from_rows("ABE", [("a", "b", "e")])``."""
    order = list(attributes)
    result = []
    for row in rows:
        values = list(row)
        if len(values) != len(order):
            raise StateError(
                f"row {values!r} does not match attributes {attributes!r}"
            )
        result.append(dict(zip(order, values)))
    return result
