"""Columnar storage for compiled kernels: value interning and caches.

The interpreted pipeline hashes full Python value tuples at every join
and rebuilds :class:`~repro.state.relation.Relation` objects between
operators.  The compiled kernels instead run over *interned* columns:
every stored constant is mapped once to a small integer code and each
relation is transposed into one ``array('q')`` per attribute, so joins,
semi-joins and selections compare and hash machine integers.

:class:`ColumnStore` owns the interner plus two derived caches —
columnar transpositions and hash indexes — keyed by relation object
*identity*.  Relations are immutable, and entries keep a strong
reference to their relation, so an ``id`` can never be recycled while
its entry lives (the same contract as the engine's chase memo).  An
insert produces a new ``Relation`` only for the written relation; every
untouched relation keeps its identity, hence its columns and indexes.
"""

from __future__ import annotations

import threading
from array import array
from typing import Hashable, Optional, Sequence

from repro.state.relation import Relation


class ColumnarRelation:
    """One relation transposed into interned integer columns.

    ``columns`` is the relation's canonical (sorted) attribute order and
    ``cols[i]`` the ``array('q')`` of codes for ``columns[i]``; row ``j``
    of the relation is ``tuple(col[j] for col in cols)``.
    """

    __slots__ = ("relation", "columns", "cols", "nrows")

    def __init__(
        self,
        relation: Relation,
        columns: tuple[str, ...],
        cols: tuple[array, ...],
        nrows: int,
    ) -> None:
        self.relation = relation
        self.columns = columns
        self.cols = cols
        self.nrows = nrows


class ColumnStore:
    """Interner + per-relation columnar/index caches, shared by every
    compiled program of one engine (or standalone maintainer).

    Thread-safe: the serving layer runs reader queries concurrently, so
    every cache probe holds the lock.  Compaction (dropping the interner
    when it outgrows ``max_values``) only happens between runs — a
    running program brackets itself with :meth:`begin`/:meth:`end`, and
    compaction is deferred while any run is active, so one execution
    never mixes codes from two interner generations.
    """

    def __init__(
        self, max_values: int = 1 << 20, max_relations: int = 1024
    ) -> None:
        self.max_values = max_values
        self.max_relations = max_relations
        self._lock = threading.Lock()
        self._codes: dict[Hashable, int] = {}  # guarded-by: _lock
        self._decode: list[Hashable] = []  # guarded-by: _lock (writes)
        self._columnar: dict[int, ColumnarRelation] = {}  # guarded-by: _lock
        #: (id(relation), positions) → (relation, code-key → row indexes)
        self._indexes: dict = {}  # guarded-by: _lock
        #: (id(relation), positions) → (relation, cols, nrows) — cached
        #: projection-pushdown gathers (column trim + dedup).
        self._trims: dict = {}  # guarded-by: _lock
        self._active = 0  # guarded-by: _lock
        self._generation = 0  # guarded-by: _lock (writes)

    # -- run bracketing ---------------------------------------------------------
    def begin(self) -> None:
        """Enter one program run; compacts first when safe and needed."""
        with self._lock:
            if self._active == 0 and (
                len(self._decode) > self.max_values
                or len(self._columnar) > self.max_relations
            ):
                self._columnar.clear()
                self._indexes.clear()
                self._trims.clear()
                if len(self._decode) > self.max_values:
                    self._codes.clear()
                    self._decode.clear()
                self._generation += 1
            self._active += 1

    def end(self) -> None:
        """Leave one program run."""
        with self._lock:
            self._active -= 1

    @property
    def generation(self) -> int:
        """How many times the store compacted (observability/tests)."""
        return self._generation

    @property
    def distinct_values(self) -> int:
        """Interned-value count (observability/tests)."""
        with self._lock:
            return len(self._decode)

    # -- interning --------------------------------------------------------------
    def encode_existing(self, value: Hashable) -> Optional[int]:
        """The code of an already-interned value, or ``None``.

        Selection constants and lookup parameters never *create* codes:
        a value absent from the interner cannot occur in any stored
        column, so the selection is empty.
        """
        with self._lock:
            return self._codes.get(value)

    def decoder(self) -> Sequence[Hashable]:
        """The append-only ``code → value`` table.

        Safe to read lock-free: codes are only handed out after their
        value is appended, and the list is replaced — never shrunk —
        under the run-bracketing rules above.
        """
        return self._decode

    # -- derived caches ---------------------------------------------------------
    def columnar(self, relation: Relation) -> ColumnarRelation:
        """The interned transposition of ``relation``, cached by identity."""
        with self._lock:
            entry = self._columnar.get(id(relation))
            if entry is not None and entry.relation is relation:
                return entry
            codes = self._codes
            decode = self._decode
            columns = relation.columns
            width = len(columns)
            cols = [array("q") for _ in range(width)]
            appends = [col.append for col in cols]
            for row in relation.row_vectors:
                for position in range(width):
                    value = row[position]
                    code = codes.get(value)
                    if code is None:
                        code = len(decode)
                        codes[value] = code
                        decode.append(value)
                    appends[position](code)
            entry = ColumnarRelation(
                relation, columns, tuple(cols), len(relation.row_vectors)
            )
            self._columnar[id(relation)] = entry
            return entry

    def index(
        self, relation: Relation, positions: tuple[int, ...]
    ) -> dict:
        """A hash index over the relation's interned columns.

        Maps a key — the single code for one position, a code tuple for
        several — to the list of row indexes holding it.  Built once per
        (relation identity, positions) and reused by every subsequent
        scan probe, semi-join and join against the same stored relation.
        """
        signature = (id(relation), positions)
        with self._lock:
            entry = self._indexes.get(signature)
            if entry is not None and entry[0] is relation:
                return entry[1]
        columnar = self.columnar(relation)
        index: dict = {}
        setdefault = index.setdefault
        if len(positions) == 1:
            col = columnar.cols[positions[0]]
            for row_index in range(columnar.nrows):
                setdefault(col[row_index], []).append(row_index)
        else:
            key_cols = tuple(columnar.cols[p] for p in positions)
            for row_index in range(columnar.nrows):
                setdefault(
                    tuple(col[row_index] for col in key_cols), []
                ).append(row_index)
        with self._lock:
            self._indexes[signature] = (relation, index)
        return index

    def trim(
        self, relation: Relation, positions: tuple[int, ...]
    ) -> tuple[tuple[array, ...], int]:
        """The gathered + deduplicated columns at ``positions`` — the
        projection-pushdown trim of a stored relation.

        Trims depend only on (relation identity, positions), so joins
        that push the same projection into the same stored relation on
        every run reuse one materialization.  Returns ``(cols, nrows)``.
        """
        signature = (id(relation), positions)
        with self._lock:
            entry = self._trims.get(signature)
            if entry is not None and entry[0] is relation:
                return entry[1], entry[2]
        columnar = self.columnar(relation)
        cols = tuple(columnar.cols[p] for p in positions)
        seen: set = set()
        add = seen.add
        keep: list[int] = []
        append = keep.append
        if len(cols) == 1:
            for row_index, code in enumerate(cols[0]):
                if code not in seen:
                    add(code)
                    append(row_index)
        else:
            for row_index, key in enumerate(zip(*cols)):
                if key not in seen:
                    add(key)
                    append(row_index)
        if len(keep) == columnar.nrows:
            trimmed = cols
        else:
            trimmed = tuple(
                array("q", map(col.__getitem__, keep)) for col in cols
            )
        result = (trimmed, len(keep))
        with self._lock:
            self._trims[signature] = (relation, trimmed, len(keep))
        return result
