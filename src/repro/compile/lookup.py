"""The compiled representative-instance lookup (Theorem 3.2's bounded
selections over kernel programs).

:class:`CompiledRILookup` is a drop-in for
:class:`repro.core.maintenance.ExpressionRILookup` — same branch
construction, same fixpoint loop, same counters, same
:class:`~repro.foundations.errors.InconsistentStateError` messages, so
an insert's accept/reject outcome and its rejection diagnostics are
byte-identical between the two backends (the differential tests assert
exactly that).  What changes is the cost per selection: each branch is
compiled once per scheme into a parameterized program whose scans probe
cached hash indexes, so ``σ_{K='k'}(join)`` is a handful of dict
lookups instead of a full join materialization.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, TYPE_CHECKING

from repro.core.maintenance import _join_partial
from repro.foundations.errors import InconsistentStateError
from repro.state.database_state import DatabaseState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compile import KernelSpace


class CompiledRILookup:
    """Assemble the representative-instance row for a key value with
    compiled single-tuple selections (the Algorithm 2 step-(4) lookup).

    Mirrors :class:`~repro.core.maintenance.ExpressionRILookup`
    line for line — probe keys in ``scheme.all_keys()`` order, one
    selection per lossless-join branch, merge until a fixpoint — with
    the interpreted ``Select(...).evaluate`` replaced by a memoized
    :class:`~repro.compile.program.CompiledProgram` bound to the key
    values.
    """

    def __init__(self, state: DatabaseState, kernels: "KernelSpace") -> None:
        self.state = state
        self.scheme = state.scheme
        self.kernels = kernels
        self.tuples_retrieved = 0
        self.selections_issued = 0
        self._fingerprint = kernels.scheme_fp(state.scheme)

    def find(
        self, key: frozenset[str], values: Mapping[str, Hashable]
    ) -> Optional[dict[str, Hashable]]:
        kernels = self.kernels
        store = kernels.store
        state = self.state
        row: dict[str, Hashable] = {a: values[a] for a in key}
        matched = False
        grew = True
        while grew:
            grew = False
            for probe_key in self.scheme.all_keys():
                if not probe_key <= set(row):
                    continue
                params = {a: row[a] for a in probe_key}
                programs = kernels.selection_programs(
                    self._fingerprint, self.scheme, probe_key
                )
                for program in programs:
                    result = program.run_decoded(store, state, params)
                    self.selections_issued += 1
                    if len(result) > 1:
                        raise InconsistentStateError(
                            "a lossless-join selection returned more than "
                            "one tuple; the state is inconsistent"
                        )
                    for vector in result:
                        match = dict(zip(program.out_columns, vector))
                        matched = True
                        self.tuples_retrieved += 1
                        merged = _join_partial(row, match)
                        if merged is None:
                            raise InconsistentStateError(
                                "lossless-join selections disagree; the "
                                "state is inconsistent"
                            )
                        if len(merged) > len(row):
                            grew = True
                        row = merged
        return row if matched else None
