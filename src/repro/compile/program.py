"""Compiling plan expressions into straight-line columnar programs.

:func:`compile_expression` flattens an :mod:`repro.algebra.expressions`
tree — ``RelationRef`` / ``NaturalJoin`` / ``Project`` / ``Select`` /
``UnionExpr`` — into a sequence of kernel ops over interned integer
columns (:mod:`repro.compile.columns`):

* **scan** — fetch a stored relation's columnar form; constant and
  parameter equality tests are fused into the scan as probes of a
  cached hash index (``σ_{A='a'}(R)`` is one dict lookup, not a sweep);
* **join** — the multi-way natural join: per-operand column trimming
  (projection pushdown), pairwise semi-join reduction, then greedy
  smallest-first hash joins (build over the smaller side, probe the
  larger; an unfiltered base-relation side is probed through its cached
  index instead of building a throwaway table);
* **project** — column gather plus dedup;
* **union** — concatenate branches and dedup.

Selections are *pushed down* at compile time: every equality lands on
the scans of the base relations that carry its attribute, so the
runtime never materializes a join only to filter it — the win behind
the compiled insert-validation path.  ``params`` compiles the
parameterized form ``σ_{K=?}(E)`` once per expression; each
:meth:`CompiledProgram.run` binds fresh key values, the prepared-
statement shape of Theorem 3.2's bounded lookups.

Programs depend only on the expression (relation names and attribute
sets), never on a state, so they are memoized across states — see
:class:`repro.compile.KernelSpace` for the
``(scheme_fingerprint, plan_fingerprint)`` cache.  Expressions that
embed data (``LiteralRelation``) raise :class:`CompileError`; callers
fall back to the interpreted walk, which stays the differential oracle.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Hashable, Mapping, Optional, Sequence

from repro.algebra.expressions import (
    Expression,
    NaturalJoin,
    Project,
    RelationRef,
    Select,
    UnionExpr,
)
from repro.foundations.attrs import AttrsLike, attrs, fmt_attrs, sorted_attrs
from repro.foundations.errors import CompileError, StateError
from repro.obs.spans import span
from repro.state.relation import Relation

from repro.compile.columns import ColumnStore

#: What programs evaluate against (same protocol as Expression.evaluate).
RelationSource = Mapping[str, Relation]


def plan_fingerprint(
    expression: Expression, params: AttrsLike = ()
) -> str:
    """A stable content hash of one (possibly parameterized) plan.

    Expressions pretty-print deterministically (operands and condition
    attributes are emitted in sorted order), so the rendered text is a
    canonical form; parameter attributes are folded in so ``E`` and
    ``σ_{K=?}(E)`` fingerprint differently.
    """
    parameters = attrs(params)
    text = str(expression)
    if parameters:
        text = f"σ_{fmt_attrs(parameters)}=?({text})"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class KernelRelation:
    """A runtime intermediate: interned columns in sorted-attribute order.

    ``base`` is set only when this is exactly an unfiltered stored
    relation, which lets downstream joins and semi-joins probe the
    store's cached hash indexes instead of rebuilding tables.
    """

    __slots__ = ("columns", "cols", "nrows", "base")

    def __init__(
        self,
        columns: tuple[str, ...],
        cols: Sequence,
        nrows: int,
        base: Optional[Relation] = None,
    ) -> None:
        self.columns = columns
        self.cols = cols
        self.nrows = nrows
        self.base = base


def _empty(columns: tuple[str, ...]) -> KernelRelation:
    return KernelRelation(columns, tuple(() for _ in columns), 0)


def _gather(cols: Sequence, keep: Sequence[int]) -> tuple:
    return tuple(
        array("q", map(col.__getitem__, keep)) for col in cols
    )


def _key_reader(cols: Sequence, positions: Sequence[int]):
    """``row index → join key`` over interned columns: the bare code for
    a single-column key (ints hash faster than 1-tuples), a code tuple
    otherwise."""
    if len(positions) == 1:
        return cols[positions[0]].__getitem__
    key_cols = tuple(cols[p] for p in positions)

    def read(row_index: int) -> tuple:
        return tuple(col[row_index] for col in key_cols)

    return read


class _RunContext:
    """Per-execution scratch: the store, the state, bound parameters."""

    __slots__ = ("store", "source", "params")

    def __init__(
        self,
        store: ColumnStore,
        source: RelationSource,
        params: Mapping[str, Hashable],
    ) -> None:
        self.store = store
        self.source = source
        self.params = params


class ScanOp:
    """Fetch one stored relation; apply fused equality tests via the
    store's cached hash index (the constant-select kernel)."""

    __slots__ = ("dst", "name", "columns", "const_tests", "param_tests")

    def __init__(
        self,
        dst: int,
        name: str,
        columns: tuple[str, ...],
        const_tests: tuple[tuple[int, Hashable], ...],
        param_tests: tuple[tuple[int, str], ...],
    ) -> None:
        self.dst = dst
        self.name = name
        self.columns = columns
        self.const_tests = const_tests
        self.param_tests = param_tests

    def run(self, regs: list, ctx: _RunContext) -> None:
        relation = ctx.source[self.name]
        if relation.attributes != frozenset(self.columns):
            raise StateError(
                f"stored relation {self.name} has attributes "
                f"{fmt_attrs(relation.attributes)}, expression expects "
                f"{fmt_attrs(frozenset(self.columns))}"
            )
        store = ctx.store
        columnar = store.columnar(relation)
        if not self.const_tests and not self.param_tests:
            regs[self.dst] = KernelRelation(
                columnar.columns, columnar.cols, columnar.nrows, relation
            )
            return
        wanted: dict[int, int] = {}
        for position, value in self.const_tests:
            code = store.encode_existing(value)
            if code is None or wanted.setdefault(position, code) != code:
                regs[self.dst] = _empty(self.columns)
                return
        for position, attribute in self.param_tests:
            code = store.encode_existing(ctx.params[attribute])
            if code is None or wanted.setdefault(position, code) != code:
                regs[self.dst] = _empty(self.columns)
                return
        positions = tuple(sorted(wanted))
        index = store.index(relation, positions)
        if len(positions) == 1:
            key = wanted[positions[0]]
        else:
            key = tuple(wanted[p] for p in positions)
        keep = index.get(key)
        if not keep:
            regs[self.dst] = _empty(self.columns)
            return
        regs[self.dst] = KernelRelation(
            columnar.columns, _gather(columnar.cols, keep), len(keep)
        )


class EmptyOp:
    """A selection refuted at compile time (two different constants on
    one attribute): always the empty relation."""

    __slots__ = ("dst", "columns")

    def __init__(self, dst: int, columns: tuple[str, ...]) -> None:
        self.dst = dst
        self.columns = columns

    def run(self, regs: list, ctx: _RunContext) -> None:
        regs[self.dst] = _empty(self.columns)


class JoinOp:
    """Multi-way natural join: trim, semi-join reduce, then greedy
    pairwise hash joins — the columnar mirror of
    :func:`repro.algebra.expressions.evaluate_natural_join`."""

    __slots__ = (
        "dst",
        "srcs",
        "out_columns",
        "trims",
        "src_columns",
        "semijoin_pairs",
    )

    def __init__(
        self,
        dst: int,
        srcs: tuple[int, ...],
        out_columns: tuple[str, ...],
        trims: tuple[Optional[tuple[tuple[int, ...], tuple[str, ...]]], ...],
        src_columns: tuple[tuple[str, ...], ...],
    ) -> None:
        self.dst = dst
        self.srcs = srcs
        self.out_columns = out_columns
        #: per source: None (keep all columns) or (positions, names).
        self.trims = trims
        #: per source: its column names after trimming.
        self.src_columns = src_columns
        # Column layouts are fixed at compile time, so the semi-join
        # sweep order and every pair's key positions are too: one entry
        # (i, j, left positions, right positions) per ordered pair of
        # operands sharing attributes, in the interpreted reducer's
        # iteration order.
        pairs: list[tuple[int, int, tuple[int, ...], tuple[int, ...]]] = []
        column_sets = [frozenset(columns) for columns in src_columns]
        for i, left_columns in enumerate(src_columns):
            for j, right_columns in enumerate(src_columns):
                if i == j:
                    continue
                common = [a for a in left_columns if a in column_sets[j]]
                if not common:
                    continue
                pairs.append(
                    (
                        i,
                        j,
                        tuple(left_columns.index(a) for a in common),
                        tuple(right_columns.index(a) for a in common),
                    )
                )
        self.semijoin_pairs = tuple(pairs)

    def run(self, regs: list, ctx: _RunContext) -> None:
        store = ctx.store
        operands: list[KernelRelation] = []
        for source, trim in zip(self.srcs, self.trims):
            operand = regs[source]
            if trim is not None:
                positions, names = trim
                if operand.base is not None:
                    cols, nrows = store.trim(operand.base, positions)
                    operand = KernelRelation(names, cols, nrows)
                else:
                    operand = _trim_dedup(operand, positions, names)
            operands.append(operand)

        pairs = self.semijoin_pairs
        if len(pairs) > 1:
            # Small right sides first: their index probes prune the big
            # operands before any big-against-big sweep runs (ties keep
            # the compile-time order, so the pass stays deterministic).
            pairs = sorted(
                pairs, key=lambda pair: operands[pair[1]].nrows
            )
        for i, j, left_positions, right_positions in pairs:
            left = operands[i]
            if left.nrows:
                operands[i] = _semijoin(
                    store, left, operands[j], left_positions, right_positions
                )
        if any(operand.nrows == 0 for operand in operands):
            regs[self.dst] = _empty(self.out_columns)
            return

        pending = sorted(
            range(len(operands)), key=lambda i: operands[i].nrows
        )
        first = pending.pop(0)
        result = operands[first]
        joined_attributes = set(result.columns)
        while pending:
            connected = [
                i
                for i in pending
                if not joined_attributes.isdisjoint(operands[i].columns)
            ]
            choice = connected[0] if connected else pending[0]
            pending.remove(choice)
            result = _join_pair(store, result, operands[choice])
            joined_attributes.update(operands[choice].columns)
        regs[self.dst] = result


class ProjectOp:
    """Column gather + dedup (the project-dedup kernel)."""

    __slots__ = ("dst", "src", "positions", "out_columns")

    def __init__(
        self,
        dst: int,
        src: int,
        positions: tuple[int, ...],
        out_columns: tuple[str, ...],
    ) -> None:
        self.dst = dst
        self.src = src
        self.positions = positions
        self.out_columns = out_columns

    def run(self, regs: list, ctx: _RunContext) -> None:
        operand: KernelRelation = regs[self.src]
        if operand.columns == self.out_columns:
            regs[self.dst] = operand
            return
        cols = tuple(operand.cols[p] for p in self.positions)
        seen: set = set()
        add = seen.add
        keep: list[int] = []
        append = keep.append
        for row_index, key in enumerate(zip(*cols)):
            if key not in seen:
                add(key)
                append(row_index)
        regs[self.dst] = KernelRelation(
            self.out_columns, _gather(cols, keep), len(keep)
        )


class UnionOp:
    """Concatenate same-schema branches and dedup."""

    __slots__ = ("dst", "srcs", "out_columns")

    def __init__(
        self, dst: int, srcs: tuple[int, ...], out_columns: tuple[str, ...]
    ) -> None:
        self.dst = dst
        self.srcs = srcs
        self.out_columns = out_columns

    def run(self, regs: list, ctx: _RunContext) -> None:
        width = len(self.out_columns)
        seen: set = set()
        add = seen.add
        out = [array("q") for _ in range(width)]
        appends = [col.append for col in out]
        total = 0
        for source in self.srcs:
            operand: KernelRelation = regs[source]
            for row in zip(*operand.cols):
                if row not in seen:
                    add(row)
                    for position in range(width):
                        appends[position](row[position])
                    total += 1
        regs[self.dst] = KernelRelation(self.out_columns, tuple(out), total)


def _trim_dedup(
    operand: KernelRelation,
    positions: tuple[int, ...],
    names: tuple[str, ...],
) -> KernelRelation:
    """Projection pushdown on an operand: gather the kept columns and
    dedup (the interpreted pipeline's ``project_relation`` does both)."""
    cols = tuple(operand.cols[p] for p in positions)
    seen: set = set()
    add = seen.add
    keep: list[int] = []
    append = keep.append
    for row_index, key in enumerate(zip(*cols)):
        if key not in seen:
            add(key)
            append(row_index)
    if len(keep) == operand.nrows and len(positions) == len(operand.columns):
        return operand
    return KernelRelation(names, _gather(cols, keep), len(keep))


#: Right side smaller than this uses the left's cached base index for a
#: semi-join instead of sweeping the left side.
_SEMIJOIN_PROBE_BOUND = 16


def _semijoin(
    store: ColumnStore,
    left: KernelRelation,
    right: KernelRelation,
    left_positions: tuple[int, ...],
    right_positions: tuple[int, ...],
) -> KernelRelation:
    """``left ⋉ right`` on the given key positions (identity when
    nothing is filtered, preserving the base tag).  Single-column keys
    sweep the raw code arrays directly — no per-row reader calls."""
    use_left_index = (
        left.base is not None
        and right.nrows <= _SEMIJOIN_PROBE_BOUND
        and right.nrows * 4 < left.nrows
    )
    use_right_index = (
        right.base is not None
        and left.nrows <= _SEMIJOIN_PROBE_BOUND
        and left.nrows * 4 < right.nrows
    )
    if len(left_positions) == 1:
        right_col = right.cols[right_positions[0]]
        if use_left_index:
            # Probe the stored relation's cached index with the (few)
            # right keys instead of sweeping every left row.
            index = store.index(left.base, left_positions)
            hit: set[int] = set()
            for code in right_col:
                bucket = index.get(code)
                if bucket:
                    hit.update(bucket)
            if len(hit) == left.nrows:
                return left
            keep = sorted(hit)
        elif use_right_index:
            # Few left rows against a big stored right side: membership
            # is one probe of the right relation's index per left row.
            index = store.index(right.base, right_positions)
            left_col = left.cols[left_positions[0]]
            keep = [
                i for i, code in enumerate(left_col) if code in index
            ]
            if len(keep) == left.nrows:
                return left
        else:
            seen = set(right_col)
            left_col = left.cols[left_positions[0]]
            keep = [
                i for i, code in enumerate(left_col) if code in seen
            ]
            if len(keep) == left.nrows:
                return left
    else:
        right_keys = _key_reader(right.cols, right_positions)
        left_keys = _key_reader(left.cols, left_positions)
        if use_left_index:
            index = store.index(left.base, left_positions)
            hit = set()
            for j in range(right.nrows):
                bucket = index.get(right_keys(j))
                if bucket:
                    hit.update(bucket)
            if len(hit) == left.nrows:
                return left
            keep = sorted(hit)
        elif use_right_index:
            index = store.index(right.base, right_positions)
            keep = [
                i for i in range(left.nrows) if left_keys(i) in index
            ]
            if len(keep) == left.nrows:
                return left
        else:
            seen = {right_keys(j) for j in range(right.nrows)}
            keep = [i for i in range(left.nrows) if left_keys(i) in seen]
            if len(keep) == left.nrows:
                return left
    return KernelRelation(
        left.columns, _gather(left.cols, keep), len(keep)
    )


def _cartesian(
    left: KernelRelation, right: KernelRelation
) -> KernelRelation:
    pairs_left = [
        i for i in range(left.nrows) for _ in range(right.nrows)
    ]
    pairs_right = list(range(right.nrows)) * left.nrows
    return _assemble(left, pairs_left, right, pairs_right)


def _assemble(
    left: KernelRelation,
    left_rows: Sequence[int],
    right: KernelRelation,
    right_rows: Sequence[int],
) -> KernelRelation:
    """Gather the output of a pairwise join: sorted union of columns,
    shared attributes taken from the left (both sides agree on them)."""
    left_position = {a: i for i, a in enumerate(left.columns)}
    right_position = {a: i for i, a in enumerate(right.columns)}
    out_names = tuple(sorted(set(left.columns) | set(right.columns)))
    out_cols = []
    for name in out_names:
        position = left_position.get(name)
        if position is not None:
            source, rows = left.cols[position], left_rows
        else:
            source, rows = right.cols[right_position[name]], right_rows
        out_cols.append(array("q", map(source.__getitem__, rows)))
    return KernelRelation(out_names, tuple(out_cols), len(left_rows))


def _join_pair(
    store: ColumnStore, left: KernelRelation, right: KernelRelation
) -> KernelRelation:
    """Hash join build/probe over interned key codes.  The smaller side
    builds; when the larger side is an unfiltered stored relation its
    cached index replaces the probe sweep entirely."""
    right_names = set(right.columns)
    common = [a for a in left.columns if a in right_names]
    if not common:
        return _cartesian(left, right)
    left_positions = [left.columns.index(a) for a in common]
    right_positions = [right.columns.index(a) for a in common]
    if left.nrows <= right.nrows:
        build, build_positions = left, left_positions
        probe, probe_positions = right, right_positions
        build_is_left = True
    else:
        build, build_positions = right, right_positions
        probe, probe_positions = left, left_positions
        build_is_left = False
    build_rows: list[int] = []
    probe_rows: list[int] = []
    build_append = build_rows.append
    probe_append = probe_rows.append
    single = len(build_positions) == 1
    if probe.base is not None:
        # Look the build rows up in the stored relation's cached index:
        # O(build) probes, no per-run table.
        index = store.index(probe.base, tuple(probe_positions))
        if single:
            for i, code in enumerate(build.cols[build_positions[0]]):
                bucket = index.get(code)
                if bucket is not None:
                    for j in bucket:
                        build_append(i)
                        probe_append(j)
        else:
            build_keys = _key_reader(build.cols, build_positions)
            for i in range(build.nrows):
                bucket = index.get(build_keys(i))
                if bucket is not None:
                    for j in bucket:
                        build_append(i)
                        probe_append(j)
    else:
        table: dict = {}
        setdefault = table.setdefault
        if single:
            for i, code in enumerate(build.cols[build_positions[0]]):
                setdefault(code, []).append(i)
            for j, code in enumerate(probe.cols[probe_positions[0]]):
                bucket = table.get(code)
                if bucket is not None:
                    for i in bucket:
                        build_append(i)
                        probe_append(j)
        else:
            build_keys = _key_reader(build.cols, build_positions)
            for i in range(build.nrows):
                setdefault(build_keys(i), []).append(i)
            probe_keys = _key_reader(probe.cols, probe_positions)
            for j in range(probe.nrows):
                bucket = table.get(probe_keys(j))
                if bucket is not None:
                    for i in bucket:
                        build_append(i)
                        probe_append(j)
    if build_is_left:
        return _assemble(build, build_rows, probe, probe_rows)
    return _assemble(probe, probe_rows, build, build_rows)


class CompiledProgram:
    """A straight-line kernel program with one output register."""

    __slots__ = (
        "ops",
        "out_reg",
        "out_columns",
        "n_regs",
        "param_attrs",
        "fingerprint",
        "source_text",
    )

    def __init__(
        self,
        ops: tuple,
        out_reg: int,
        out_columns: tuple[str, ...],
        n_regs: int,
        param_attrs: frozenset[str],
        fingerprint: str,
        source_text: str,
    ) -> None:
        self.ops = ops
        self.out_reg = out_reg
        self.out_columns = out_columns
        self.n_regs = n_regs
        self.param_attrs = param_attrs
        self.fingerprint = fingerprint
        self.source_text = source_text

    def run(
        self,
        store: ColumnStore,
        source: RelationSource,
        params: Optional[Mapping[str, Hashable]] = None,
    ) -> KernelRelation:
        """Execute against stored relations; parameters bind the
        compiled ``σ_{K=?}`` tests."""
        bound = params if params is not None else {}
        missing = self.param_attrs - set(bound)
        if missing:
            raise StateError(
                f"program parameters not bound: {sorted(missing)}"
            )
        ctx = _RunContext(store, source, bound)
        regs: list = [None] * self.n_regs
        store.begin()
        try:
            for op in self.ops:
                op.run(regs, ctx)
        finally:
            store.end()
        return regs[self.out_reg]

    def run_decoded(
        self,
        store: ColumnStore,
        source: RelationSource,
        params: Optional[Mapping[str, Hashable]] = None,
    ) -> set[tuple[Hashable, ...]]:
        """Execute and decode: the result as a set of value tuples in
        ``out_columns`` (sorted-attribute) order — the same vectors a
        ``Relation`` over the output would store."""
        result = self.run(store, source, params)
        decode = store.decoder()
        rows: set[tuple[Hashable, ...]] = set()
        add = rows.add
        for row in zip(*result.cols):
            add(tuple(decode[code] for code in row))
        return rows

    def __repr__(self) -> str:
        return (
            f"CompiledProgram(ops={len(self.ops)}, "
            f"out={''.join(self.out_columns)}, {self.source_text})"
        )


# -- compilation -----------------------------------------------------------------

#: A pushed-down equality test: ("c", value) or ("p", attribute).
_Test = tuple[str, Hashable]


class _Compiler:
    """Flattens one expression tree into ops with known per-register
    column layouts (every register holds sorted-attribute columns, so
    projections and unions resolve positions at compile time)."""

    def __init__(self) -> None:
        self.ops: list = []
        self.columns: list[tuple[str, ...]] = []

    def _register(self) -> int:
        self.columns.append(())
        return len(self.columns) - 1

    def _emit(self, op, columns: tuple[str, ...]) -> int:
        self.ops.append(op)
        self.columns[op.dst] = columns
        return op.dst

    def compile(
        self, expression: Expression, tests: tuple[tuple[str, _Test], ...]
    ) -> int:
        """Compile ``σ_tests(expression)``; returns the output register.
        Invariant: the register's columns are ``sorted(expression
        .attributes)`` — tests never change an output schema."""
        if isinstance(expression, RelationRef):
            return self._compile_scan(expression, tests)
        if isinstance(expression, Select):
            merged = tests + tuple(
                (attribute, ("c", value))
                for attribute, value in sorted(
                    expression.equalities.items(),
                    key=lambda item: item[0],
                )
            )
            return self.compile(expression.operand, merged)
        if isinstance(expression, Project):
            return self._compile_project(expression, tests)
        if isinstance(expression, NaturalJoin):
            return self._compile_join(expression, tests, needed=None)
        if isinstance(expression, UnionExpr):
            out_columns = tuple(sorted_attrs(expression.attributes))
            sources = tuple(
                self.compile(operand, tests)
                for operand in expression.operands
            )
            dst = self._register()
            return self._emit(UnionOp(dst, sources, out_columns), out_columns)
        raise CompileError(
            f"no columnar kernel for {type(expression).__name__}"
        )

    def _compile_scan(
        self, expression: RelationRef, tests: tuple[tuple[str, _Test], ...]
    ) -> int:
        columns = tuple(sorted_attrs(expression.attributes))
        position = {a: i for i, a in enumerate(columns)}
        const_tests: list[tuple[int, Hashable]] = []
        param_tests: list[tuple[int, str]] = []
        pinned: dict[str, Hashable] = {}
        for attribute, (kind, payload) in tests:
            if kind == "c":
                if attribute in pinned:
                    if pinned[attribute] != payload:
                        dst = self._register()
                        return self._emit(EmptyOp(dst, columns), columns)
                    continue
                pinned[attribute] = payload
                const_tests.append((position[attribute], payload))
            else:
                param_tests.append((position[attribute], attribute))
        dst = self._register()
        return self._emit(
            ScanOp(
                dst,
                expression.name,
                columns,
                tuple(const_tests),
                tuple(param_tests),
            ),
            columns,
        )

    def _compile_project(
        self, expression: Project, tests: tuple[tuple[str, _Test], ...]
    ) -> int:
        out_columns = tuple(sorted_attrs(expression.attributes))
        operand = expression.operand
        if isinstance(operand, NaturalJoin):
            source = self._compile_join(
                operand, tests, needed=expression.attributes
            )
        else:
            source = self.compile(operand, tests)
        source_columns = self.columns[source]
        positions = tuple(
            source_columns.index(a) for a in out_columns
        )
        dst = self._register()
        return self._emit(
            ProjectOp(dst, source, positions, out_columns), out_columns
        )

    def _compile_join(
        self,
        expression: NaturalJoin,
        tests: tuple[tuple[str, _Test], ...],
        needed: Optional[frozenset[str]],
    ) -> int:
        # Selection pushdown: every test lands on each operand carrying
        # its attribute (σ commutes into the join on shared attributes).
        sources: list[int] = []
        for operand in expression.operands:
            operand_tests = tuple(
                (attribute, spec)
                for attribute, spec in tests
                if attribute in operand.attributes
            )
            sources.append(self.compile(operand, operand_tests))

        # Projection pushdown mirror of evaluate_natural_join: keep the
        # needed attributes plus everything shared between operands.
        trims: list[
            Optional[tuple[tuple[int, ...], tuple[str, ...]]]
        ] = []
        trimmed_columns: list[tuple[str, ...]] = []
        if needed is None:
            for source in sources:
                trims.append(None)
                trimmed_columns.append(self.columns[source])
        else:
            tally: dict[str, int] = {}
            for source in sources:
                for attribute in self.columns[source]:
                    tally[attribute] = tally.get(attribute, 0) + 1
            keep_base = set(needed) | {
                attribute for attribute, uses in tally.items() if uses > 1
            }
            for source in sources:
                columns = self.columns[source]
                kept = tuple(a for a in columns if a in keep_base)
                if not kept:
                    kept = (min(columns),)
                if kept == columns:
                    trims.append(None)
                else:
                    trims.append(
                        (tuple(columns.index(a) for a in kept), kept)
                    )
                trimmed_columns.append(kept)
        out_names: set[str] = set()
        for columns in trimmed_columns:
            out_names.update(columns)
        out_columns = tuple(sorted(out_names))
        dst = self._register()
        return self._emit(
            JoinOp(
                dst,
                tuple(sources),
                out_columns,
                tuple(trims),
                tuple(trimmed_columns),
            ),
            out_columns,
        )


def compile_expression(
    expression: Expression, params: AttrsLike = ()
) -> CompiledProgram:
    """Flatten one plan expression into a :class:`CompiledProgram`.

    ``params`` compiles the parameterized selection ``σ_{params=?}``
    over the expression — the prepared-statement form the compiled
    RI lookup binds per insert.  Raises :class:`CompileError` for
    expressions outside the kernel set (callers fall back to the
    interpreted evaluator).
    """
    parameters = attrs(params)
    unknown = parameters - expression.attributes
    if unknown:
        raise StateError(
            f"selection on attributes outside the operand: {sorted(unknown)}"
        )
    with span("compile.kernel") as sp:
        compiler = _Compiler()
        tests = tuple(
            (attribute, ("p", attribute))
            for attribute in sorted_attrs(parameters)
        )
        out_reg = compiler.compile(expression, tests)
        program = CompiledProgram(
            ops=tuple(compiler.ops),
            out_reg=out_reg,
            out_columns=compiler.columns[out_reg],
            n_regs=len(compiler.columns),
            param_attrs=parameters,
            fingerprint=plan_fingerprint(expression, parameters),
            source_text=str(expression),
        )
        if sp:
            sp.add("ops", len(program.ops))
    return program
