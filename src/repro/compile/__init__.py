"""Compiled columnar kernels for the maintenance hot path.

The paper's bounded/algebraic-maintainable results say the maintenance
expressions are *predetermined* — fixed by the scheme, independent of
the state.  That makes them worth compiling: this package flattens each
cached plan / RI-lookup expression into a straight-line program of
columnar kernel ops over interned integer columns
(:mod:`repro.compile.program`), with per-engine storage caches
(:mod:`repro.compile.columns`) and a drop-in compiled
representative-instance lookup (:mod:`repro.compile.lookup`).

:class:`KernelSpace` bundles what one engine (or standalone
maintainer) shares across all compiled evaluations: the program memo —
an :class:`~repro.foundations.cache.LRUCache` keyed by
``(scheme_fingerprint, plan_fingerprint)`` — and the
:class:`~repro.compile.columns.ColumnStore`.  The interpreted
``Expression.evaluate`` walk stays the differential oracle; anything
the compiler cannot flatten raises
:class:`~repro.foundations.errors.CompileError` and callers fall back.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import Expression, Project, UnionExpr
from repro.foundations.cache import MISSING, LRUCache
from repro.foundations.errors import CompileError
from repro.schema.database_scheme import DatabaseScheme

from repro.compile.columns import ColumnarRelation, ColumnStore
from repro.compile.lookup import CompiledRILookup
from repro.compile.program import (
    CompiledProgram,
    compile_expression,
    plan_fingerprint,
)

__all__ = [
    "ColumnStore",
    "ColumnarRelation",
    "CompileError",
    "CompiledProgram",
    "CompiledRILookup",
    "KernelSpace",
    "compile_expression",
    "plan_fingerprint",
]


def _ri_branches(
    scheme: DatabaseScheme, key: frozenset[str]
) -> list[Expression]:
    """The lossless-join branches behind ``σ_{K='k'}`` — the same
    construction as ``ExpressionRILookup._branches_for`` (union peeled
    to its operands, projections peeled to their join operands)."""
    from repro.core.key_equivalent import total_projection_expression

    expression = total_projection_expression(scheme, key)
    if isinstance(expression, UnionExpr):
        branches = list(expression.operands)
    else:
        branches = [expression]
    return [
        branch.operand if isinstance(branch, Project) else branch
        for branch in branches
    ]


class KernelSpace:
    """One engine's compiled-kernel state: program memo + column store.

    ``programs`` is the engine-level LRU keyed by
    ``(scheme_fingerprint, plan_fingerprint)`` (surfacing in
    ``WeakInstanceEngine.cache_info()["compiled"]``); ``store`` holds
    the interner and per-relation columnar/index caches.  A second,
    smaller memo keeps the *branch lists* of the RI lookup per
    ``(scheme_fingerprint, key)`` so repeated inserts skip rebuilding
    the Corollary 3.1(b) expressions.
    """

    def __init__(
        self,
        programs: Optional[LRUCache] = None,
        store: Optional[ColumnStore] = None,
        program_cache_size: int = 256,
    ) -> None:
        self.programs = (
            programs if programs is not None else LRUCache(program_cache_size)
        )
        self.store = store if store is not None else ColumnStore()
        self._selections: LRUCache = LRUCache(program_cache_size)
        self._scheme_fps: dict[int, tuple[DatabaseScheme, str]] = {}
        # Identity fast path over `programs`: plan expressions are
        # cached (hence identity-stable) in the engine's plan LRU, so a
        # repeated query should not re-render and re-hash the tree just
        # to probe the fingerprint-keyed cache.  Entries pin their
        # expression, keeping the id unrecyclable while cached.
        self._by_identity: dict = {}

    def scheme_fp(self, scheme: DatabaseScheme) -> str:
        """:func:`repro.core.partition.scheme_fingerprint`, memoized by
        scheme identity (schemes are immutable and long-lived; the
        entry's strong reference pins the ``id``)."""
        entry = self._scheme_fps.get(id(scheme))
        if entry is not None and entry[0] is scheme:
            return entry[1]
        from repro.core.partition import scheme_fingerprint

        fingerprint = scheme_fingerprint(scheme)
        if len(self._scheme_fps) > 64:
            self._scheme_fps.clear()
        self._scheme_fps[id(scheme)] = (scheme, fingerprint)
        return fingerprint

    def expression_program(
        self,
        scheme_fingerprint: str,
        expression: Expression,
        params=(),
    ) -> CompiledProgram:
        """The compiled form of one (possibly parameterized) expression,
        memoized under ``(scheme_fingerprint, plan_fingerprint)``."""
        identity = (scheme_fingerprint, id(expression), tuple(sorted(params)))
        entry = self._by_identity.get(identity)
        if entry is not None and entry[0] is expression:
            return entry[1]
        key = (scheme_fingerprint, plan_fingerprint(expression, params))
        program = self.programs.get(key, MISSING)
        if program is MISSING:
            program = compile_expression(expression, params=params)
            self.programs.put(key, program)
        if len(self._by_identity) > 512:
            self._by_identity.clear()
        self._by_identity[identity] = (expression, program)
        return program

    def selection_programs(
        self,
        scheme_fingerprint: str,
        scheme: DatabaseScheme,
        key: frozenset[str],
    ) -> tuple[CompiledProgram, ...]:
        """The compiled ``σ_{K=?}`` programs for one probe key — one per
        lossless-join branch, in branch order."""
        memo_key = (scheme_fingerprint, key)
        entry = self._selections.get(memo_key, MISSING)
        if entry is MISSING:
            entry = tuple(
                self.expression_program(scheme_fingerprint, branch, params=key)
                for branch in _ri_branches(scheme, key)
            )
            self._selections.put(memo_key, entry)
        return entry
