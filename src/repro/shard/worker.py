"""The per-shard worker process.

Each worker owns the relations of one shard — a union of partition
blocks — behind either a full :class:`~repro.service.store.DurableStore`
(own WAL, snapshots, delta basis, KernelSpace) or an in-memory engine.
It speaks the length-prefixed JSON protocol over the socketpair the
router handed it at fork time and applies batch slices with the same
per-block :meth:`~repro.core.ctm.InsertMaintainer.block_batch` kernel
the single-process engine uses, so the events it reports carry the
*global* batch indices the router's min-event merge needs.

Batches are two-phase: ``prepare`` validates the slice against the
current state and stashes the would-be next state; ``commit`` logs and
publishes it; ``abort`` discards it (optionally logging the batch's
reject diagnostic on the shard that owns the refused tuple).  A worker
holds at most one pending batch — the router serializes writes.
"""

from __future__ import annotations

import signal
import socket
from typing import Any, Mapping, Optional, Sequence

from repro.core.engine import WeakInstanceEngine
from repro.io import scheme_from_dict, state_to_dict
from repro.obs.spans import Tracer, tracing
from repro.service.metrics import MetricsRegistry
from repro.service.store import DurableStore
from repro.shard.protocol import recv_frame, send_frame
from repro.state.database_state import DatabaseState

#: RPC ops a worker understands (documented for the protocol tests).
WORKER_OPS = (
    "ping",
    "insert",
    "delete",
    "query",
    "prepare",
    "commit",
    "abort",
    "fetch",
    "state",
    "metrics",
    "stats",
    "snapshot",
    "sync",
    "shutdown",
)


class SliceEvent:
    """One shard's earliest batch event, at its global index."""

    __slots__ = ("index", "outcome_dict", "error_type", "error_message")

    def __init__(
        self,
        index: int,
        outcome_dict: Optional[dict] = None,
        error_type: Optional[str] = None,
        error_message: Optional[str] = None,
    ) -> None:
        self.index = index
        self.outcome_dict = outcome_dict
        self.error_type = error_type
        self.error_message = error_message

    def to_wire(self) -> dict[str, Any]:
        if self.outcome_dict is not None:
            return {
                "kind": "reject",
                "index": self.index,
                "outcome": self.outcome_dict,
            }
        return {
            "kind": "error",
            "index": self.index,
            "type": self.error_type,
            "message": self.error_message,
        }


def apply_slice(
    engine: WeakInstanceEngine,
    state: DatabaseState,
    operations: Sequence[tuple[int, str, str, Mapping[str, Any]]],
) -> tuple[Optional[DatabaseState], Optional[SliceEvent], int]:
    """Apply one shard's slice of a batch to its state.

    ``operations`` carry global batch indices.  Returns ``(next_state,
    event, applied)``: on success the slice's resulting state; on the
    first failure the event at its global index — exactly what the
    serial single-process batch would decide at that position, because
    the per-block work runs through the same
    :meth:`~repro.core.ctm.InsertMaintainer.block_batch` kernel."""
    partition = engine.partition
    if partition.accepted:
        grouped: dict[int, list] = {}
        for operation in operations:
            block = partition.block_index_of(operation[2])
            grouped.setdefault(block, []).append(operation)
        outcomes = [
            engine.maintainer.block_batch(
                partition.substate(state, block_index), block_index, ops
            )
            for block_index, ops in sorted(grouped.items())
        ]
        events = [
            outcome
            for outcome in outcomes
            if outcome.event_index is not None
        ]
        if events:
            first = min(events, key=lambda outcome: outcome.event_index)
            if first.error is not None:
                event = SliceEvent(
                    first.error_index,
                    error_type=type(first.error).__name__,
                    error_message=str(first.error),
                )
            else:
                assert first.failure is not None
                event = SliceEvent(
                    first.failed_index,
                    outcome_dict=first.failure.to_dict(),
                )
            return None, event, 0
        merged: dict[str, object] = {}
        for outcome in outcomes:
            assert outcome.substate is not None
            for name in partition.block_names[outcome.block_index]:
                merged[name] = outcome.substate[name]
        relations = {
            name: merged.get(name, state[name])
            for name in engine.scheme.names
        }
        next_state = DatabaseState(engine.scheme, relations)
        # Stamp the written blocks: lazy identity-keyed versioning keeps
        # an unstamped state sound, but the bump keeps the first
        # post-write probe cheap and the writes_observed metric honest
        # (the serial path below inherits its stamps from
        # engine.insert/delete).
        if engine.read_cache is not None:
            for block_index in grouped:
                engine.read_cache.note_write(next_state, block_index)
        return next_state, None, len(operations)
    # Non-decomposable shard scheme: the serial loop, still at global
    # indices.  Correct for any scheme; only the amortization is lost.
    current = state
    applied = 0
    for global_index, operation, relation_name, values in operations:
        try:
            if operation == "insert":
                outcome = engine.insert(current, relation_name, values)
                if not outcome.consistent:
                    return (
                        None,
                        SliceEvent(
                            global_index, outcome_dict=outcome.to_dict()
                        ),
                        applied,
                    )
                assert outcome.state is not None
                current = outcome.state
            else:
                current = engine.delete(current, relation_name, values)
        except Exception as error:  # noqa: BLE001 — replayed by rank
            return (
                None,
                SliceEvent(
                    global_index,
                    error_type=type(error).__name__,
                    error_message=str(error),
                ),
                applied,
            )
        applied += 1
    return current, None, applied


class ShardWorker:
    """The request-dispatch state machine of one worker process.

    Kept separate from the process loop so tests can drive it in-process
    (no fork) against either a store-backed or in-memory shard."""

    def __init__(
        self,
        shard: int,
        engine: WeakInstanceEngine,
        state: DatabaseState,
        store: Optional[DurableStore],
        tracer: Tracer,
    ) -> None:
        self.shard = shard
        self.engine = engine
        self.store = store
        self.tracer = tracer
        # Durable workers count ops in the store's registry; in-memory
        # workers keep their own so per-shard series exist either way.
        self.metrics = (
            store.metrics if store is not None else MetricsRegistry()
        )
        self._state = state
        self._pending: Optional[
            tuple[list[tuple[str, str, Mapping[str, Any]]], DatabaseState]
        ] = None

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "ShardWorker":
        """Build a worker from the router's fork-time config dict."""
        tracer = Tracer()
        scheme = scheme_from_dict(config["scheme"])
        store_dir = config.get("store_dir")
        compiled = bool(config.get("compiled", True))
        read_cache = bool(config.get("read_cache", True))
        if store_dir is not None:
            from pathlib import Path

            from repro.service.store import SCHEME_FILE

            with tracing(tracer):
                if (Path(store_dir) / SCHEME_FILE).exists():
                    store = DurableStore.open(
                        store_dir,
                        fsync_every=int(config.get("fsync_every", 1)),
                        compiled=compiled,
                        read_cache=read_cache,
                    )
                else:
                    store = DurableStore.create(
                        store_dir,
                        scheme,
                        fsync_every=int(config.get("fsync_every", 1)),
                        compiled=compiled,
                        read_cache=read_cache,
                    )
            return cls(
                shard=int(config["shard"]),
                engine=store.engine,
                state=store.state,
                store=store,
                tracer=tracer,
            )
        engine = WeakInstanceEngine(
            scheme, compiled=compiled, read_cache=read_cache
        )
        return cls(
            shard=int(config["shard"]),
            engine=engine,
            state=engine.empty_state(),
            store=None,
            tracer=tracer,
        )

    @property
    def state(self) -> DatabaseState:
        return self._state

    def close(self) -> None:
        self._pending = None
        if self.store is not None:
            self.store.close()
        else:
            self.engine.close()

    # -- dispatch -------------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """One RPC in, one JSON-ready response out.  Errors become
        ``{"ok": false, "error": {...}}`` so the router can rebuild and
        re-raise them with serial semantics."""
        op = request.get("op")
        try:
            with tracing(self.tracer):
                return self._dispatch(op, request)
        except Exception as error:  # noqa: BLE001 — shipped to router
            return {
                "ok": False,
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                },
            }

    def _dispatch(
        self, op: Optional[str], request: Mapping[str, Any]
    ) -> dict[str, Any]:
        if op == "ping":
            payload: dict[str, Any] = {
                "ok": True,
                "shard": self.shard,
                "relations": list(self.engine.scheme.names),
            }
            if self.store is not None:
                payload["recovery"] = self.store.recovery.to_dict()
            return payload
        if op == "insert":
            if self.store is not None:
                outcome = self.store.insert(
                    request["relation"], request["values"]
                )
                self._state = self.store.state
            else:
                outcome = self.engine.insert(
                    self._state, request["relation"], request["values"]
                )
                self.metrics.increment("ops.insert")
                if outcome.consistent:
                    assert outcome.state is not None
                    self._state = outcome.state
                else:
                    self.metrics.increment("store.rejects")
            return {"ok": True, "outcome": outcome.to_dict()}
        if op == "delete":
            if self.store is not None:
                self._state = self.store.delete(
                    request["relation"], request["values"]
                )
            else:
                self._state = self.engine.delete(
                    self._state, request["relation"], request["values"]
                )
                self.metrics.increment("ops.delete")
            return {"ok": True}
        if op == "query":
            if self.store is not None:
                rows = self.store.query(request["target"])
            else:
                rows = self.engine.query(self._state, request["target"])
                self.metrics.increment("ops.query")
            return {"ok": True, "rows": sorted(rows)}
        if op == "prepare":
            return self._prepare(request)
        if op == "commit":
            return self._commit()
        if op == "abort":
            return self._abort(request)
        if op == "fetch":
            names = request.get("relations")
            if names is None:
                names = list(self.engine.scheme.names)
            relations = {
                name: [dict(values) for values in self._state[name]]
                for name in names
            }
            return {"ok": True, "relations": relations}
        if op == "state":
            return {"ok": True, "state": state_to_dict(self._state)}
        if op == "metrics":
            kinds = self.metrics.snapshot_by_kind()
            counters = dict(kinds["counters"])
            gauges = dict(kinds["gauges"])
            for cache_name, info in self.engine.cache_info().items():
                counters[f"cache.{cache_name}.hits"] = info.hits
                counters[f"cache.{cache_name}.misses"] = info.misses
                counters[f"cache.{cache_name}.evictions"] = info.evictions
                if cache_name == "read":
                    # A rate is a level, not a monotone count: gauge it.
                    probes = info.hits + info.misses
                    gauges["cache.read.hit_rate"] = (
                        info.hits / probes if probes else 0.0
                    )
            counters.update(self.tracer.counter_snapshot())
            return {
                "ok": True,
                "counters": counters,
                "gauges": gauges,
                "timers": dict(kinds["timers"]),
            }
        if op == "stats":
            return {
                "ok": True,
                "spans": self.tracer.span_summaries(),
                "span_counters": self.tracer.counter_snapshot(),
            }
        if op == "snapshot":
            if self.store is None:
                return {"ok": True, "snapshot": False}
            self.store.snapshot()
            return {"ok": True, "snapshot": True}
        if op == "sync":
            if self.store is not None:
                self.store.sync()
            return {"ok": True}
        raise ValueError(f"unknown worker op {op!r}")

    # -- two-phase batches ----------------------------------------------------
    def _prepare(self, request: Mapping[str, Any]) -> dict[str, Any]:
        operations = [
            (int(index), operation, relation_name, values)
            for index, operation, relation_name, values in request[
                "operations"
            ]
        ]
        self._pending = None
        next_state, event, applied = apply_slice(
            self.engine, self._state, operations
        )
        if event is not None:
            return {"ok": True, "applied": applied, "event": event.to_wire()}
        assert next_state is not None
        self._pending = (
            [
                (operation, relation_name, values)
                for _, operation, relation_name, values in operations
            ],
            next_state,
        )
        return {"ok": True, "applied": applied, "event": None}

    def _commit(self) -> dict[str, Any]:
        if self._pending is None:
            raise ValueError("commit without a prepared batch")
        updates, next_state = self._pending
        self._pending = None
        if self.store is not None:
            self.store.commit_batch(updates, next_state)
            self._state = self.store.state
        else:
            self._state = next_state
            self.metrics.increment("ops.batch")
            self.metrics.increment("ops.batch_updates", len(updates))
        return {"ok": True, "applied": len(updates)}

    def _abort(self, request: Mapping[str, Any]) -> dict[str, Any]:
        self._pending = None
        reject = request.get("reject")
        if reject is not None:
            if self.store is not None:
                self.store.log_reject(
                    reject["relation"], reject["values"], reject["outcome"]
                )
            else:
                self.metrics.increment("store.rejects")
        return {"ok": True}


def worker_main(conn: socket.socket, config: Mapping[str, Any]) -> None:
    """The forked child's entire life: build the shard, serve RPCs
    until EOF/shutdown, tear down cleanly.

    SIGTERM exits the loop cleanly (the supervision contract from the
    satellite task); SIGINT is ignored so a Ctrl-C aimed at the router
    process group cannot kill workers before the router coordinates
    shutdown."""

    def _terminate(signum: int, frame: object) -> None:  # pragma: no cover
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker = ShardWorker.from_config(config)
    try:
        while True:
            request = recv_frame(conn)
            if request is None or request.get("op") == "shutdown":
                if request is not None:
                    send_frame(conn, {"ok": True})
                break
            send_frame(conn, worker.handle(request))
    except (SystemExit, BrokenPipeError, ConnectionResetError):
        pass
    finally:
        worker.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
