"""The block→shard map and the serial-equivalent fan-out tier.

:class:`ShardRouter` derives a :class:`ShardMap` from the scheme's
independence decomposition (:class:`~repro.core.partition
.SchemePartition`), memoized by scheme fingerprint: block ``i`` lives on
shard ``i % shards`` (round-robin packing, so schemes with more blocks
than shards spread evenly).  Each shard is a forked worker process
running a full :class:`~repro.service.store.DurableStore` (or in-memory
engine) over its block subset, reached over a length-prefixed JSON
socketpair (:mod:`repro.shard.protocol`).

Serial equivalence is the contract:

* **Inserts/deletes** route to the single shard owning the target
  relation — the paper's Section 4.2 guarantee that block-local
  validation lifts to global consistency.
* **Batches** reuse the min-global-event-index rule of
  :meth:`~repro.core.engine.WeakInstanceEngine.batch`: the router
  assigns global indices before fan-out, workers apply their slice
  through the same :meth:`~repro.core.ctm.InsertMaintainer.block_batch`
  kernel, and the earliest failure across shards is reported
  byte-identically to the single-process path.  Cross-shard atomicity
  is two-phase (prepare everywhere, then commit everywhere); a crash
  between the phases can leave a partial batch across shard WALs — the
  documented gap a future replication tier closes.
* **Queries** route to one shard when the full-scheme plan's base
  relations all live there (block-local totals are exact); otherwise
  the referenced relations are gathered and the plan is evaluated
  router-side by a full-scheme engine, so cross-shard extension joins
  (Theorem 4.1) return exactly the single-process answer.

When the effective shard count is one — a single-block scheme, a
non-decomposable scheme, or ``shards=1`` — the router degrades to an
inline :class:`~repro.service.server.SchemeServer` with no worker
processes and no IPC on any path.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from pathlib import Path
from typing import Any, Hashable, Mapping, Optional, Sequence, Union

from repro.core.engine import Update, WeakInstanceEngine
from repro.core.partition import (
    SchemePartition,
    partition_scheme,
    scheme_fingerprint,
)
from repro.foundations.attrs import AttrsLike, attrs
from repro.foundations.cache import MISSING, LRUCache
from repro.foundations.errors import (
    NotApplicableError,
    ReproError,
    ServiceError,
    StateError,
)
from repro.io import (
    dump_json_atomic,
    dump_scheme,
    load_json,
    load_scheme,
    scheme_to_dict,
)
from repro.obs.exposition import prometheus_text
from repro.obs.spans import Tracer, span, tracing
from repro.schema.database_scheme import DatabaseScheme
from repro.service.metrics import MetricsRegistry, labeled
from repro.service.server import SchemeServer, Session
from repro.service.store import DurableStore
from repro.shard.protocol import recv_frame, send_frame
from repro.shard.worker import worker_main
from repro.state.database_state import DatabaseState

PathLike = Union[str, Path]

SHARD_FILE = "shard.json"
SHARD_DIR_PREFIX = "shard-"


class ShardMap:
    """The block→shard assignment for one (scheme, shard count) pair."""

    def __init__(
        self,
        fingerprint: str,
        requested: int,
        shards: int,
        assignment: tuple[int, ...],
        partition: SchemePartition,
    ) -> None:
        self.fingerprint = fingerprint
        self.requested = requested
        self.shards = shards
        self.assignment = assignment
        self.shard_blocks: tuple[tuple[int, ...], ...] = tuple(
            tuple(
                block
                for block, shard in enumerate(assignment)
                if shard == index
            )
            for index in range(shards)
        )
        self.shard_relations: tuple[tuple[str, ...], ...] = tuple(
            tuple(
                name
                for block in blocks
                for name in partition.block_names[block]
            )
            for blocks in self.shard_blocks
        )
        self.relation_shard: dict[str, int] = {}
        for index, names in enumerate(self.shard_relations):
            for name in names:
                self.relation_shard[name] = index

    @classmethod
    def derive(cls, partition: SchemePartition, shards: int) -> "ShardMap":
        """Round-robin block packing: block ``i`` → shard ``i % N``,
        with the effective count clamped to the block count (and to one
        when the scheme is not decomposable)."""
        requested = max(1, int(shards))
        if partition.parallelizable:
            effective = min(requested, len(partition.blocks))
        else:
            effective = 1
        if effective <= 1:
            assignment = tuple(0 for _ in partition.blocks) or (0,)
            return cls(
                partition.fingerprint, requested, 1, assignment, partition
            )
        assignment = tuple(
            index % effective for index in range(len(partition.blocks))
        )
        return cls(
            partition.fingerprint, requested, effective, assignment, partition
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "fingerprint": self.fingerprint,
            "requested": self.requested,
            "shards": self.shards,
            "assignment": list(self.assignment),
        }


#: (fingerprint, requested shards) → ShardMap; maps are pure functions
#: of scheme content, so every router over an equal scheme shares one.
_SHARD_MAPS: LRUCache = LRUCache(64)


def shard_map_for(scheme: DatabaseScheme, shards: int) -> ShardMap:
    """The memoized :class:`ShardMap` for a scheme and shard count."""
    partition = partition_scheme(scheme)
    key = (partition.fingerprint, max(1, int(shards)))
    cached = _SHARD_MAPS.get(key, MISSING)
    if cached is MISSING:
        cached = ShardMap.derive(partition, shards)
        _SHARD_MAPS.put(key, cached)
    return cached


def _rebuild_error(info: Mapping[str, Any]) -> Exception:
    """An exception equivalent to the one a worker serialized."""
    import builtins

    from repro.foundations import errors as errors_mod

    name = str(info.get("type") or "ServiceError")
    message = str(info.get("message") or "")
    candidate = getattr(errors_mod, name, None)
    if not (
        isinstance(candidate, type) and issubclass(candidate, Exception)
    ):
        candidate = getattr(builtins, name, None)
    if isinstance(candidate, type) and issubclass(candidate, Exception):
        return candidate(message)
    return ServiceError(f"{name}: {message}")


class RouterInsertOutcome:
    """A worker's insert verdict, rehydrated router-side.

    Quacks like :class:`~repro.state.consistency.MaintenanceOutcome`
    for every consumer that matters (CLI rendering, rejection
    diagnostics): ``to_dict()`` is byte-identical JSON to the
    single-process outcome.  The updated state stays on the shard."""

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, Any]) -> None:
        self._data = dict(data)

    @property
    def consistent(self) -> bool:
        return bool(self._data.get("consistent"))

    @property
    def tuples_examined(self) -> int:
        return int(self._data.get("tuples_examined", 0))

    @property
    def chase_steps(self) -> int:
        return int(self._data.get("chase_steps", 0))

    @property
    def witness(self) -> Optional[Mapping[str, Any]]:
        return self._data.get("witness")

    def __bool__(self) -> bool:
        return self.consistent

    def to_dict(self) -> dict[str, Any]:
        return dict(self._data)


class RouterBatchOutcome:
    """The router's batch verdict, shaped exactly like
    :class:`~repro.core.engine.BatchOutcome` minus the merged state
    (which lives sharded)."""

    __slots__ = ("committed", "applied", "failed_index", "failure")

    def __init__(
        self,
        committed: bool,
        applied: int,
        failed_index: Optional[int] = None,
        failure: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.committed = committed
        self.applied = applied
        self.failed_index = failed_index
        self.failure = dict(failure) if failure is not None else None

    def __bool__(self) -> bool:
        return self.committed

    def to_dict(self) -> dict[str, Any]:
        return {
            "committed": self.committed,
            "applied": self.applied,
            "failed_index": self.failed_index,
            "failure": self.failure,
        }


class RouterSession(Session):
    """A named session handle over a :class:`ShardRouter` — the same
    bound API and per-session accounting as the single-process
    :class:`~repro.service.server.Session`."""


class ShardRouter:
    """Fan inserts, batches and queries out over per-block workers."""

    def __init__(
        self,
        scheme: DatabaseScheme,
        shards: int = 1,
        *,
        directory: Optional[PathLike] = None,
        create_dirs: bool = False,
        tracer: Optional[Tracer] = None,
        fsync_every: int = 1,
        compiled: bool = True,
        read_cache: bool = True,
    ) -> None:
        self.scheme = scheme
        self.partition = partition_scheme(scheme)
        self.map = shard_map_for(scheme, shards)
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = MetricsRegistry()
        self.directory = Path(directory) if directory is not None else None
        self._fsync_every = fsync_every
        self._compiled = compiled
        self._read_cache = read_cache
        self._write_lock = threading.Lock()
        self._sessions_lock = threading.Lock()
        self._sessions: dict[str, RouterSession] = {}  # guarded-by: _sessions_lock
        self._closed = False
        self._local: Optional[SchemeServer] = None
        self._socks: list[socket.socket] = []
        self._locks: list[threading.Lock] = []
        self._procs: list[multiprocessing.process.BaseProcess] = []
        # A full-scheme engine for plan computation and the scatter-
        # gather query path; it never validates writes (shards do).
        # Its read cache stays off: gathered states are fresh objects
        # every time, so entries could never hit — the per-worker
        # engines (which see stable states) carry the read cache.
        self._engine = WeakInstanceEngine(
            scheme, compiled=compiled, read_cache=False
        )
        if self.map.shards <= 1:
            self._start_inline()
        else:
            self._start_workers()

    # -- construction ---------------------------------------------------------
    @classmethod
    def in_memory(
        cls,
        scheme: DatabaseScheme,
        shards: int = 1,
        tracer: Optional[Tracer] = None,
        compiled: bool = True,
        read_cache: bool = True,
    ) -> "ShardRouter":
        """A sharded deployment with nothing on disk."""
        return cls(
            scheme,
            shards,
            tracer=tracer,
            compiled=compiled,
            read_cache=read_cache,
        )

    @classmethod
    def create(
        cls,
        directory: PathLike,
        scheme: DatabaseScheme,
        shards: int = 1,
        *,
        fsync_every: int = 1,
        compiled: bool = True,
        tracer: Optional[Tracer] = None,
        read_cache: bool = True,
    ) -> "ShardRouter":
        """Initialise a fresh sharded store directory and serve it."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / SHARD_FILE).exists():
            raise ServiceError(
                f"{directory} already contains a sharded store"
            )
        shard_map = shard_map_for(scheme, shards)
        dump_scheme(scheme, directory / "scheme.json")
        dump_json_atomic(shard_map.to_dict(), directory / SHARD_FILE)
        return cls(
            scheme,
            shards,
            directory=directory,
            create_dirs=True,
            tracer=tracer,
            fsync_every=fsync_every,
            compiled=compiled,
            read_cache=read_cache,
        )

    @classmethod
    def open(
        cls,
        directory: PathLike,
        shards: Optional[int] = None,
        *,
        fsync_every: int = 1,
        compiled: bool = True,
        tracer: Optional[Tracer] = None,
        read_cache: bool = True,
    ) -> "ShardRouter":
        """Recover a sharded store: every worker replays its own WAL.

        The block→shard assignment is fixed at create time; passing a
        different ``shards`` here is an error (re-sharding would need a
        data migration this PR does not ship)."""
        directory = Path(directory)
        meta_path = directory / SHARD_FILE
        if not meta_path.exists():
            raise ServiceError(
                f"{directory} does not contain a sharded store"
            )
        meta = load_json(meta_path)
        scheme = load_scheme(directory / "scheme.json")
        if meta.get("fingerprint") != scheme_fingerprint(scheme):
            raise ServiceError(
                f"{meta_path} does not match the scheme in {directory}"
            )
        stored = int(meta["requested"])
        if shards is not None and shard_map_for(
            scheme, shards
        ).shards != int(meta["shards"]):
            raise ServiceError(
                f"store was sharded {meta['shards']} way(s); opening "
                f"with --shards {shards} would re-shard it, which is "
                "not supported"
            )
        return cls(
            scheme,
            stored,
            directory=directory,
            tracer=tracer,
            fsync_every=fsync_every,
            compiled=compiled,
            read_cache=read_cache,
        )

    # -- startup --------------------------------------------------------------
    def _shard_dir(self, index: int) -> Optional[str]:
        if self.directory is None:
            return None
        return str(self.directory / f"{SHARD_DIR_PREFIX}{index}")

    def _shard_scheme(self, index: int) -> DatabaseScheme:
        members = []
        for block in self.map.shard_blocks[index]:
            members.extend(self.partition.blocks[block].relations)
        return DatabaseScheme(members)

    def _start_inline(self) -> None:
        """The one-shard fast path: a plain in-process server, no
        worker processes, no IPC on any operation."""
        if self.directory is not None:
            shard_dir = Path(self._shard_dir(0))
            from repro.service.store import SCHEME_FILE

            if (shard_dir / SCHEME_FILE).exists():
                store = DurableStore.open(
                    shard_dir,
                    fsync_every=self._fsync_every,
                    compiled=self._compiled,
                )
            else:
                store = DurableStore.create(
                    shard_dir,
                    self.scheme,
                    fsync_every=self._fsync_every,
                    compiled=self._compiled,
                )
            self._local = SchemeServer(store=store, tracer=self.tracer)
        else:
            self._local = SchemeServer(
                scheme=self.scheme,
                tracer=self.tracer,
                compiled=self._compiled,
            )

    def _start_workers(self) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServiceError(
                "sharded serving needs the fork start method (POSIX); "
                "use shards=1 on this platform"
            )
        context = multiprocessing.get_context("fork")
        for index in range(self.map.shards):
            parent_sock, child_sock = socket.socketpair()
            config = {
                "shard": index,
                "scheme": scheme_to_dict(self._shard_scheme(index)),
                "store_dir": self._shard_dir(index),
                "fsync_every": self._fsync_every,
                "compiled": self._compiled,
                "read_cache": self._read_cache,
            }
            process = context.Process(
                target=worker_main,
                args=(child_sock, config),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_sock.close()
            self._socks.append(parent_sock)
            self._locks.append(threading.Lock())
            self._procs.append(process)
        # One ping per worker: surfaces a worker that died during
        # store recovery as an error here, not on the first write.
        for index in range(self.map.shards):
            self._rpc(index, {"op": "ping"})

    # -- worker RPC -----------------------------------------------------------
    def _rpc(self, shard: int, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One request/response round trip with one worker."""
        with span("shard.rpc") as sp:
            if sp:
                sp.add("rpcs", 1)
            with self._locks[shard]:
                send_frame(self._socks[shard], payload)
                response = recv_frame(self._socks[shard])
        self.metrics.increment("shard.rpcs")
        self.metrics.increment(labeled("shard.rpcs", shard=shard))
        if response is None:
            raise ServiceError(
                f"shard {shard} closed its pipe mid-request"
            )
        if not response.get("ok", False):
            raise _rebuild_error(response.get("error") or {})
        return response

    def _fanout(
        self, payloads: Mapping[int, Mapping[str, Any]]
    ) -> dict[int, Optional[dict[str, Any]]]:
        """Send to every target shard first, then collect responses —
        workers overlap their work while the router drains in order.
        Transport failures surface as ``None`` entries; application
        errors stay in the response for the caller to merge by rank."""
        shards = sorted(payloads)
        responses: dict[int, Optional[dict[str, Any]]] = {}
        acquired: list[int] = []
        try:
            with span("shard.rpc") as sp:
                if sp:
                    sp.add("rpcs", len(shards))
                for index in shards:
                    self._locks[index].acquire()
                    acquired.append(index)
                    try:
                        send_frame(self._socks[index], payloads[index])
                    except OSError:
                        responses[index] = None
                for index in shards:
                    if index in responses:  # send already failed
                        continue
                    try:
                        responses[index] = recv_frame(self._socks[index])
                    except (ServiceError, OSError):
                        responses[index] = None
        finally:
            for index in acquired:
                self._locks[index].release()
        for index in shards:
            self.metrics.increment("shard.rpcs")
            self.metrics.increment(labeled("shard.rpcs", shard=index))
        return responses

    # -- sessions -------------------------------------------------------------
    def session(self, name: str) -> RouterSession:
        """The session named ``name`` (created on first use)."""
        with self._sessions_lock:
            existing = self._sessions.get(name)
            if existing is None:
                existing = RouterSession(self, name)
                self._sessions[name] = existing
                self.metrics.increment("server.sessions_opened")
            return existing

    def session_names(self) -> list[str]:
        with self._sessions_lock:
            return sorted(self._sessions)

    # -- reads ----------------------------------------------------------------
    @property
    def shards(self) -> int:
        """The effective shard count (1 = inline fast path)."""
        return self.map.shards

    @property
    def durable(self) -> bool:
        return self.directory is not None

    @property
    def state(self) -> DatabaseState:
        """The full committed state, assembled from every shard.

        On the inline path this is the server's state pointer (free);
        sharded it is a scatter-gather — meant for inspection and the
        line protocol's ``state`` command, not for hot paths."""
        if self._local is not None:
            return self._local.state
        merged: dict[str, Any] = {}
        for index in range(self.map.shards):
            response = self._rpc(index, {"op": "fetch"})
            merged.update(response["relations"])
        return DatabaseState(self.scheme, merged)

    def query(self, attributes: AttrsLike) -> set[tuple[Hashable, ...]]:
        """``[X]`` with plan-aware routing.

        The full-scheme plan decides: when its base relations all live
        on one shard, that worker answers (block-local totals are
        globally exact); otherwise the referenced relations are
        gathered and the same engine code evaluates router-side, so
        cross-shard extension joins match the single-process answer."""
        if self._local is not None:
            return self._local.query(attributes)
        target = attrs(attributes)
        with tracing(self.tracer):
            with span("shard.route") as sp:
                self.metrics.increment("ops.query")
                names: Optional[Sequence[str]] = None
                try:
                    plan = self._engine.plan(target)
                    names = sorted(plan.expression.relation_names())
                except ReproError:
                    names = None
                targets: Optional[set[int]] = None
                if names is not None:
                    targets = {
                        self.map.relation_shard[name] for name in names
                    }
                if sp:
                    sp.add("queries", 1)
                    sp.add(
                        "single_shard",
                        1 if targets is not None and len(targets) == 1 else 0,
                    )
            if targets is not None and len(targets) == 1:
                response = self._rpc(
                    next(iter(targets)),
                    {
                        "op": "query",
                        "target": sorted(target),
                    },
                )
                return {tuple(row) for row in response["rows"]}
            # Scatter-gather: fetch what the plan touches and evaluate
            # with full-scheme code.  A multi-shard deployment implies
            # an accepted scheme, so "no plan" means an uncoverable
            # target (``SchemaError``) whose answer is empty on every
            # consistent state — gather only the relations whose
            # attributes overlap the target instead of fanning out to
            # every shard, and let the same evaluation confirm it.
            self.metrics.increment("router.gather_queries")
            if names is None:
                names = sorted(
                    member.name
                    for member in self.scheme.relations
                    if member.attributes & target
                )
            fetch: dict[int, list[str]] = {}
            for name in names:
                fetch.setdefault(
                    self.map.relation_shard[name], []
                ).append(name)
            merged: dict[str, Any] = {}
            responses = self._fanout(
                {
                    index: {"op": "fetch", "relations": sorted(rels)}
                    for index, rels in fetch.items()
                }
            )
            for index in sorted(responses):
                response = responses[index]
                if response is None:
                    raise ServiceError(
                        f"shard {index} closed its pipe mid-request"
                    )
                if not response.get("ok", False):
                    raise _rebuild_error(response.get("error") or {})
                merged.update(response["relations"])
            gathered = DatabaseState(self.scheme, merged)
            return self._engine.query(gathered, target)

    # -- writes (serialized) --------------------------------------------------
    def insert(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> Any:
        """Route one insert to the shard owning its block."""
        if self._local is not None:
            return self._local.insert(relation_name, values)
        with self._write_lock, tracing(self.tracer):
            with span("shard.route"):
                self.metrics.increment("ops.insert")
                shard = self.map.relation_shard.get(relation_name)
                if shard is None:
                    # The single-process maintainer's exact complaint.
                    raise NotApplicableError(
                        f"unknown relation {relation_name!r}"
                    )
            response = self._rpc(
                shard,
                {
                    "op": "insert",
                    "relation": relation_name,
                    "values": dict(values),
                },
            )
            outcome = RouterInsertOutcome(response["outcome"])
            if not outcome.consistent:
                self.metrics.increment("store.rejects")
            return outcome

    def delete(
        self, relation_name: str, values: Mapping[str, Hashable]
    ) -> None:
        """Route one deletion (always consistency-preserving).

        Unlike the single-process server this returns nothing: the
        updated state lives on the shard, and assembling the full state
        per delete would defeat the fan-out.  Use :attr:`state` when
        the merged snapshot is actually needed."""
        if self._local is not None:
            self._local.delete(relation_name, values)
            return
        with self._write_lock, tracing(self.tracer):
            with span("shard.route"):
                self.metrics.increment("ops.delete")
                shard = self.map.relation_shard.get(relation_name)
                if shard is None:
                    # The single-process state's exact complaint.
                    raise StateError(
                        f"no relation named {relation_name!r}"
                    )
            self._rpc(
                shard,
                {
                    "op": "delete",
                    "relation": relation_name,
                    "values": dict(values),
                },
            )

    def apply_batch(self, updates: Sequence[Update]) -> Any:
        """Atomic cross-shard batch with serial-equivalent semantics.

        Global event indices are assigned before fan-out; every shard
        prepares its slice; the earliest event across shards (plus any
        unroutable update, which the serial loop would have raised or
        rejected at its own index) decides the batch exactly as
        :meth:`WeakInstanceEngine.batch` would.  Rejections are logged
        durably on the shard owning the refused tuple."""
        if self._local is not None:
            return self._local.apply_batch(updates)
        updates = list(updates)
        with self._write_lock, tracing(self.tracer):
            return self._apply_batch_sharded(updates)

    def _apply_batch_sharded(self, updates: list[Update]) -> Any:
        pre_events: list[tuple[int, Exception]] = []
        grouped: dict[int, list] = {}
        with span("shard.route") as sp:
            self.metrics.increment("ops.batch")
            for index, (operation, relation_name, values) in enumerate(
                updates
            ):
                if operation not in ("insert", "delete"):
                    pre_events.append(
                        (
                            index,
                            StateError(
                                f"unknown batch operation {operation!r}"
                            ),
                        )
                    )
                    continue
                shard = self.map.relation_shard.get(relation_name)
                if shard is None:
                    if operation == "insert":
                        error: Exception = NotApplicableError(
                            f"unknown relation {relation_name!r}"
                        )
                    else:
                        error = StateError(
                            f"no relation named {relation_name!r}"
                        )
                    pre_events.append((index, error))
                    continue
                grouped.setdefault(shard, []).append(
                    (index, operation, relation_name, values)
                )
            if sp:
                sp.add("updates", len(updates))
                sp.add("shards", len(grouped))
        payloads = {
            shard: {
                "op": "prepare",
                "operations": [
                    [index, operation, relation_name, dict(values)]
                    for index, operation, relation_name, values in ops
                ],
            }
            for shard, ops in grouped.items()
        }
        responses = self._fanout(payloads)
        prepared: list[int] = []
        events: list[tuple[int, str, Any]] = [
            (index, "error", error) for index, error in pre_events
        ]
        broken: Optional[Exception] = None
        for shard in sorted(responses):
            response = responses[shard]
            if response is None:
                broken = ServiceError(
                    f"shard {shard} closed its pipe mid-request"
                )
                continue
            if not response.get("ok", False):
                broken = _rebuild_error(response.get("error") or {})
                prepared.append(shard)  # safe: abort is a no-op there
                continue
            event = response.get("event")
            if event is None:
                prepared.append(shard)
            elif event["kind"] == "reject":
                events.append((event["index"], "reject", event["outcome"]))
            else:
                events.append((event["index"], "error", _rebuild_error(event)))
        if broken is not None:
            self._abort(prepared)
            raise broken
        if events:
            index, kind, data = min(events, key=lambda event: event[0])
            if kind == "error":
                self._abort(prepared)
                raise data
            _, relation_name, values = updates[index]
            outcome = RouterBatchOutcome(
                committed=False,
                applied=index,
                failed_index=index,
                failure=data,
            )
            owner = self.map.relation_shard[relation_name]
            self._abort(
                prepared + [owner],
                reject_shard=owner,
                reject={
                    "relation": relation_name,
                    "values": dict(values),
                    "outcome": outcome.to_dict(),
                },
            )
            self.metrics.increment("store.rejects")
            return outcome
        commit_responses = self._fanout(
            {shard: {"op": "commit"} for shard in prepared}
        )
        for shard in sorted(commit_responses):
            response = commit_responses[shard]
            if response is None or not response.get("ok", False):
                raise ServiceError(
                    f"shard {shard} failed to commit a prepared batch; "
                    "the sharded store may hold a partial batch"
                )
        self.metrics.increment("ops.batch_updates", len(updates))
        return RouterBatchOutcome(committed=True, applied=len(updates))

    def _abort(
        self,
        shards: Sequence[int],
        reject_shard: Optional[int] = None,
        reject: Optional[Mapping[str, Any]] = None,
    ) -> None:
        payloads: dict[int, dict[str, Any]] = {}
        for shard in sorted(set(shards)):
            payload: dict[str, Any] = {"op": "abort"}
            if reject is not None and shard == reject_shard:
                payload["reject"] = dict(reject)
            payloads[shard] = payload
        self._fanout(payloads)

    # -- maintenance ----------------------------------------------------------
    def snapshot(self) -> None:
        """Force a snapshot + WAL reset on every shard (durable only)."""
        if self._local is not None:
            self._local.snapshot()
            return
        if self.directory is None:
            raise ServiceError(
                "an in-memory server has nothing to snapshot"
            )
        with self._write_lock, tracing(self.tracer):
            for index in range(self.map.shards):
                self._rpc(index, {"op": "snapshot"})

    # -- reporting ------------------------------------------------------------
    def _shard_metric_kinds(self) -> list[tuple[int, dict[str, Any]]]:
        """Each live worker's metric namespaces, by shard index."""
        reports = []
        for index in range(self.map.shards):
            response = self._rpc(index, {"op": "metrics"})
            reports.append((index, response))
        return reports

    def metrics_snapshot(self) -> dict[str, Union[int, float]]:
        """Router counters plus every worker's, the latter labeled
        ``name{shard="K"}`` so shards never collide in one namespace."""
        if self._local is not None:
            return self._local.metrics_snapshot()
        merged = self.metrics.snapshot()
        for index, report in self._shard_metric_kinds():
            for kind in ("counters", "gauges", "timers"):
                for name, value in report[kind].items():
                    merged[labeled(name, shard=index)] = value
        return merged

    def stats(self) -> dict[str, object]:
        """The full observability report across the deployment."""
        if self._local is not None:
            return self._local.stats()
        shard_reports = {}
        for index in range(self.map.shards):
            response = self._rpc(index, {"op": "stats"})
            shard_reports[str(index)] = {
                "spans": response["spans"],
                "span_counters": response["span_counters"],
            }
        return {
            "metrics": self.metrics_snapshot(),
            "spans": self.tracer.span_summaries(),
            "span_counters": self.tracer.counter_snapshot(),
            "shards": shard_reports,
        }

    def prometheus(self) -> str:
        """One exposition document for the whole deployment: router
        series unlabeled, per-shard series labeled ``{shard="K"}``."""
        if self._local is not None:
            return self._local.prometheus()
        kinds = self.metrics.snapshot_by_kind()
        counters = dict(kinds["counters"])
        counters.update(kinds["timers"])
        counters.update(self.tracer.counter_snapshot())
        gauges = dict(kinds["gauges"])
        for index, report in self._shard_metric_kinds():
            for name, value in report["counters"].items():
                counters[labeled(name, shard=index)] = value
            for name, value in report["timers"].items():
                counters[labeled(name, shard=index)] = value
            for name, value in report["gauges"].items():
                gauges[labeled(name, shard=index)] = value
        return prometheus_text(
            counters=counters,
            gauges=gauges,
            histograms=self.tracer.histograms(),
        )

    # -- teardown -------------------------------------------------------------
    def close(self) -> None:
        """Shut the deployment down; safe to call more than once."""
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            local, self._local = self._local, None
            socks, self._socks = self._socks, []
            procs, self._procs = self._procs, []
        if local is not None:
            local.close()
        for index, sock in enumerate(socks):
            try:
                send_frame(sock, {"op": "shutdown"})
                recv_frame(sock)
            except (ServiceError, OSError):
                pass
        for process in procs:
            process.join(timeout=5.0)
        for process in procs:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        for sock in socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._engine.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *_: object) -> None:
        self.close()
