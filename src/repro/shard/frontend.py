"""The asyncio front door: many concurrent sessions, one router.

The single-process CLI drives a :class:`~repro.service.server
.SchemeServer` over a blocking line loop — one client at a time.  This
module replaces that accept model for sharded deployments: an
:class:`asyncio` server speaks the same length-prefixed JSON frames as
the router↔worker pipes (:mod:`repro.shard.protocol`), so thousands of
concurrent connections multiplex onto one :class:`~repro.shard.router
.ShardRouter`.

Each request runs under ``span("front.request")`` inside the router's
tracer, off the event loop in a worker thread (router calls block on
worker RPCs); the event loop itself only ever frames and unframes
bytes.  Writes stay serial through the router's write lock — the
fan-out tier, not the front door, owns ordering.

Identical concurrent reads are *coalesced*: while one ``query`` for a
target is executing, later arrivals for the same target join its
in-flight future (``span("front.coalesce")``, counted as
``front.coalesced_reads``) instead of issuing their own backend RPCs.
The coalescing key includes a write epoch the frontend bumps on every
completed write, so a read issued after a client's write can never
join an execution whose snapshot might predate that write —
read-your-writes survives coalescing.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping, Optional

from repro.foundations.attrs import attrs
from repro.foundations.errors import ReproError, ServiceError
from repro.io import state_to_dict
from repro.obs.spans import span, tracing
from repro.shard.protocol import read_frame, write_frame

#: Operations a frontend client may request.
FRONT_OPS = (
    "ping",
    "insert",
    "delete",
    "batch",
    "query",
    "state",
    "metrics",
    "stats",
    "prometheus",
    "snapshot",
    "sessions",
)


class ShardFrontend:
    """Serve a :class:`~repro.shard.router.ShardRouter` over asyncio."""

    #: Operations whose completion bumps the coalescing write epoch.
    WRITE_OPS = ("insert", "delete", "batch")

    def __init__(
        self,
        router: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        # In-flight identical reads share one execution.  Both maps are
        # only touched from the event loop, so no lock is needed.
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._write_epoch = 0

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (``port=0`` picks a free port)."""
        if self._server is not None:
            raise ServiceError("frontend already started")
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServiceError("frontend not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting and wait for in-flight connections to drain.
        Safe to call more than once; the router is left open (its owner
        closes it)."""
        server, self._server = self._server, None
        if server is None:
            return
        server.close()
        await server.wait_closed()

    # -- per-connection loop --------------------------------------------------
    async def _serve_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ServiceError:
                    break  # torn frame: drop the connection
                if request is None:
                    break  # clean EOF
                response = await self._handle(request)
                write_frame(writer, response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                # Shutdown cancels connection tasks; the writer is
                # already closing, so ending quietly is the right move.
                asyncio.CancelledError,
            ):
                pass

    async def _handle(self, request: Any) -> dict[str, Any]:
        """One request → one response, off the event loop.

        Requests from *different* connections overlap freely; the
        router's own locks serialize what must be serial.  Identical
        concurrent reads collapse onto one backend execution."""
        loop = asyncio.get_running_loop()
        op = request.get("op") if isinstance(request, Mapping) else None
        if op == "query":
            key = self._coalesce_key(request)
            if key is not None:
                leader = self._inflight.get(key)
                if leader is not None:
                    response = await leader
                    self._note_coalesced()
                    return response
                future: asyncio.Future = loop.create_future()
                self._inflight[key] = future
                try:
                    response = await loop.run_in_executor(
                        None, self._execute, request
                    )
                except BaseException as error:
                    self._inflight.pop(key, None)
                    future.set_exception(error)
                    future.exception()  # retrieved: no stray warning
                    raise
                # Pop before resolving: a read arriving from here on
                # must start fresh, never adopt a finished snapshot.
                self._inflight.pop(key, None)
                future.set_result(response)
                return response
        response = await loop.run_in_executor(None, self._execute, request)
        if op in self.WRITE_OPS:
            # Bumping on *completion* is what makes coalescing safe: a
            # client's next read sees the new epoch and cannot join an
            # execution whose snapshot may predate this write.
            self._write_epoch += 1
        return response

    def _coalesce_key(self, request: Mapping[str, Any]) -> Optional[tuple]:
        """The identity under which concurrent reads may share one
        execution — ``None`` for malformed targets (the normal path
        reports those per-request)."""
        try:
            target = tuple(sorted(attrs(request["target"])))
        except (ReproError, KeyError, TypeError):
            return None
        return (target, self._write_epoch)

    def _note_coalesced(self) -> None:
        with tracing(self.router.tracer):
            with span("front.coalesce") as sp:
                if sp:
                    sp.add("joined", 1)
        self.router.metrics.increment("front.coalesced_reads")

    # -- dispatch (worker thread) ---------------------------------------------
    def _execute(self, request: Any) -> dict[str, Any]:
        with tracing(self.router.tracer):
            with span("front.request") as sp:
                try:
                    if not isinstance(request, Mapping):
                        raise ServiceError("request frame must be an object")
                    response = self._dispatch(request)
                except ReproError as error:
                    response = {
                        "ok": False,
                        "error": {
                            "type": type(error).__name__,
                            "message": str(error),
                        },
                    }
                except Exception as error:  # noqa: BLE001 - boundary
                    response = {
                        "ok": False,
                        "error": {
                            "type": type(error).__name__,
                            "message": str(error),
                        },
                    }
                if sp:
                    sp.add("errors", 0 if response.get("ok") else 1)
        return response

    def _dispatch(self, request: Mapping[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op not in FRONT_OPS:
            raise ServiceError(f"unknown frontend operation {op!r}")
        router = self.router
        if op == "ping":
            return {"ok": True, "shards": router.shards}
        if op == "sessions":
            return {"ok": True, "sessions": router.session_names()}
        if op == "metrics":
            return {"ok": True, "metrics": router.metrics_snapshot()}
        if op == "stats":
            return {"ok": True, "stats": router.stats()}
        if op == "prometheus":
            return {"ok": True, "text": router.prometheus()}
        if op == "snapshot":
            router.snapshot()
            return {"ok": True}
        session = router.session(str(request.get("session", "default")))
        if op == "insert":
            outcome = session.insert(
                str(request["relation"]), dict(request["values"])
            )
            return {"ok": True, "outcome": outcome.to_dict()}
        if op == "delete":
            session.delete(str(request["relation"]), dict(request["values"]))
            return {"ok": True}
        if op == "batch":
            updates = [
                (str(operation), str(relation_name), dict(values))
                for operation, relation_name, values in request["updates"]
            ]
            outcome = session.apply_batch(updates)
            return {"ok": True, "outcome": outcome.to_dict()}
        if op == "query":
            rows = session.query(attrs(request["target"]))
            return {"ok": True, "rows": sorted(list(row) for row in rows)}
        assert op == "state"
        return {"ok": True, "state": state_to_dict(session.state())}


class FrontendClient:
    """A minimal async client for the frame protocol (tests, tools)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "FrontendClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def request(self, payload: Mapping[str, Any]) -> Any:
        """One round trip; raises the server-reported error type when
        the response is not ok (mirroring the router's local surface)."""
        if self._reader is None or self._writer is None:
            raise ServiceError("client not connected")
        write_frame(self._writer, dict(payload))
        await self._writer.drain()
        response = await read_frame(self._reader)
        if response is None:
            raise ServiceError("frontend closed the connection")
        if not response.get("ok", False):
            from repro.shard.router import _rebuild_error

            raise _rebuild_error(response.get("error") or {})
        return response

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "FrontendClient":
        return await self.connect()

    async def __aexit__(self, *_: object) -> None:
        await self.close()


async def serve_frontend(
    router: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: Optional[asyncio.Event] = None,
    stop: Optional[asyncio.Event] = None,
    announce: bool = False,
) -> None:
    """Run a frontend until ``stop`` is set (or forever).

    The CLI's ``serve --shards N --port P`` entry point: ``ready`` is
    set once the socket is bound (so callers can read the chosen
    port), and signal handlers set ``stop`` for a clean drain."""
    frontend = ShardFrontend(router, host=host, port=port)
    await frontend.start()
    if announce:
        print(
            json.dumps(
                {
                    "listening": list(frontend.address),
                    "shards": router.shards,
                },
                sort_keys=True,
            ),
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        if stop is None:
            await frontend.serve_forever()
        else:
            await stop.wait()
    except asyncio.CancelledError:
        pass
    finally:
        await frontend.close()
