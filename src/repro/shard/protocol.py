"""Length-prefixed JSON framing for the sharding tier.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The same wire format serves two transports:

* the router↔worker socketpairs (blocking :func:`send_frame` /
  :func:`recv_frame` over ``socket.socket``);
* the asyncio front door (:func:`write_frame` / :func:`read_frame`
  over stream reader/writer pairs).

Payloads are plain JSON objects — requests carry an ``"op"`` field,
responses an ``"ok"`` field — and are encoded with sorted keys so a
frame's bytes are a deterministic function of its content.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

from repro.foundations.errors import ServiceError

#: Frame header: payload length as an unsigned 32-bit big-endian int.
HEADER = struct.Struct(">I")

#: Refuse frames past this size — a corrupt header must not convince a
#: peer to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: Any) -> bytes:
    """The full wire bytes (header + body) for one JSON payload."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed frame body: {error}") from None


def send_frame(sock: socket.socket, payload: Any) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at a
    frame boundary, :class:`ServiceError` on a torn frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ServiceError(
                f"peer closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame header announces {length} bytes, past the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = _recv_exact(sock, length)
    if body is None and length > 0:
        raise ServiceError("peer closed between header and body")
    return decode_body(body if body is not None else b"")


def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Queue one frame on an asyncio stream (drain separately)."""
    writer.write(encode_frame(payload))


async def read_frame(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ServiceError(
            f"peer closed mid-header ({len(error.partial)} of "
            f"{HEADER.size} bytes received)"
        ) from None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame header announces {length} bytes, past the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ServiceError("peer closed between header and body") from None
    return decode_body(body)
