"""Sharded multi-process serving (PR 7).

The independence decomposition is a *sharding* certificate: no chase
rule fires across partition blocks, so each block group can own its own
process, engine, WAL and snapshots.  This package provides the three
tiers that exploit it:

* :mod:`repro.shard.protocol` — length-prefixed JSON framing shared by
  the router↔worker pipes and the asyncio front door;
* :mod:`repro.shard.worker` — the per-shard process: a full
  :class:`~repro.service.store.DurableStore` (or in-memory engine)
  over its block subset, driven by a blocking RPC loop;
* :mod:`repro.shard.router` — :class:`ShardRouter`, the block→shard
  map plus serial-equivalent fan-out (min-global-event-index batches,
  plan-aware query routing);
* :mod:`repro.shard.frontend` — an asyncio server multiplexing many
  concurrent sessions onto one router.
"""

from repro.shard.frontend import (
    FrontendClient,
    ShardFrontend,
    serve_frontend,
)
from repro.shard.protocol import (
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.shard.router import (
    RouterBatchOutcome,
    RouterInsertOutcome,
    RouterSession,
    ShardMap,
    ShardRouter,
)

__all__ = [
    "FrontendClient",
    "RouterBatchOutcome",
    "RouterInsertOutcome",
    "RouterSession",
    "ShardFrontend",
    "ShardMap",
    "ShardRouter",
    "read_frame",
    "serve_frontend",
    "recv_frame",
    "send_frame",
    "write_frame",
]
