"""repro — a reproduction of Chan & Hernández, "Independence-reducible
Database Schemes" (PODS 1988 / Waterloo CS-88-18).

The library implements the weak-instance model substrate (functional
dependencies, tableaux and the chase, hypergraph acyclicity, database
states) and the paper's contribution on top of it: key-equivalent
schemes, splitness and constant-time maintainability, independence, the
independence-reducible class, its polynomial recognition algorithm,
bounded query answering and incremental constraint enforcement.

Quickstart::

    from repro import DatabaseScheme, DatabaseState, analyze_scheme

    university = DatabaseScheme.from_spec({
        "R1": ("HRC", ["HR"]),
        "R2": ("HTR", ["HT", "HR"]),
        "R3": ("HTC", ["HT"]),
        "R4": ("CSG", ["CS"]),
        "R5": ("HSR", ["HS"]),
    })
    print(analyze_scheme(university).describe())
"""

from repro.analysis import SchemeReport, analyze_scheme
from repro.core import (
    BlockMaterializedViews,
    InsertMaintainer,
    MaterializedRepInstance,
    QueryPlan,
    RecognitionResult,
    WeakInstanceEngine,
    corresponding_state,
    algebraic_insert,
    ctm_insert,
    is_ctm,
    is_independence_reducible,
    is_independent,
    is_key_equivalent,
    is_split_free,
    key_equivalent_partition,
    key_equivalent_representative_instance,
    recognize_independence_reducible,
    split_keys,
    total_projection_plan,
    total_projection_reducible,
)
from repro.fd import FD, FDSet, candidate_keys, fd, minimal_cover, parse_fds
from repro.fd.armstrong import derive, explain_key, verify_derivation
from repro.foundations import (
    InconsistentStateError,
    NotApplicableError,
    ReproError,
    SchemaError,
    StateError,
)
from repro.schema import (
    DatabaseScheme,
    RelationScheme,
    augment,
    normalize_keys,
    reduce_scheme,
    relation,
    scheme,
)
from repro.schema.synthesis import synthesize_3nf
from repro.service import (
    DurableStore,
    MetricsRegistry,
    RecoveryReport,
    SchemeServer,
    WriteAheadLog,
)
from repro.state import (
    DatabaseState,
    Relation,
    is_consistent,
    is_locally_consistent,
    maintain_by_chase,
    representative_instance,
    state_of,
    total_projection,
    tuples_from_rows,
)

__version__ = "1.0.0"

__all__ = [
    "BlockMaterializedViews",
    "DatabaseScheme",
    "DatabaseState",
    "DurableStore",
    "MaterializedRepInstance",
    "MetricsRegistry",
    "RecoveryReport",
    "SchemeServer",
    "WriteAheadLog",
    "FD",
    "FDSet",
    "InconsistentStateError",
    "InsertMaintainer",
    "NotApplicableError",
    "QueryPlan",
    "RecognitionResult",
    "Relation",
    "RelationScheme",
    "ReproError",
    "SchemaError",
    "SchemeReport",
    "StateError",
    "WeakInstanceEngine",
    "algebraic_insert",
    "corresponding_state",
    "derive",
    "explain_key",
    "synthesize_3nf",
    "verify_derivation",
    "analyze_scheme",
    "augment",
    "candidate_keys",
    "ctm_insert",
    "fd",
    "is_consistent",
    "is_ctm",
    "is_independence_reducible",
    "is_independent",
    "is_key_equivalent",
    "is_locally_consistent",
    "is_split_free",
    "key_equivalent_partition",
    "key_equivalent_representative_instance",
    "maintain_by_chase",
    "minimal_cover",
    "normalize_keys",
    "parse_fds",
    "recognize_independence_reducible",
    "reduce_scheme",
    "relation",
    "representative_instance",
    "scheme",
    "split_keys",
    "state_of",
    "total_projection",
    "total_projection_plan",
    "total_projection_reducible",
    "tuples_from_rows",
]
